//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free-guard
//! API (`read()` / `write()` / `lock()` return guards directly instead
//! of `Result`s). Poisoning is deliberately ignored, matching
//! parking_lot's semantics: a panic while holding the lock does not
//! poison it for later readers.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(7);
        assert_eq!(*lock.read(), 7);
        *lock.write() = 9;
        assert_eq!(lock.into_inner(), 9);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
