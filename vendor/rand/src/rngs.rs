//! Concrete generators: `StdRng` (xoshiro256++) and the `SplitMix64`
//! seed expander.

use crate::{RngCore, SeedableRng};

/// SplitMix64 — used to expand a `u64` seed into xoshiro state, exactly
/// as rand does for its own `seed_from_u64` default.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's standard generator: xoshiro256++.
///
/// Not the ChaCha12 of real `rand` — streams differ — but every consumer
/// in this repo treats `StdRng` as an opaque deterministic source, so
/// only seedability and quality matter.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }
}
