//! Slice sampling helpers, mirroring `rand::seq::SliceRandom`.

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// Uniformly pick one element, or `None` if the slice is empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(0);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
