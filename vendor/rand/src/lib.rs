//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`
//! and `seq::SliceRandom::{choose, shuffle}`.
//!
//! The generator behind `StdRng` is xoshiro256++ seeded through
//! SplitMix64 — not rand's ChaCha12, but deterministic, seedable and
//! statistically far better than the workload generators need. All
//! sampling here is intentionally simple (multiply-shift range
//! reduction, 53-bit float mantissas); the workspace uses randomness
//! only to synthesize test databases and queries, never for anything
//! security-sensitive.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as in rand's default implementation.
        let mut sm = rngs::SplitMix64::new(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64_unit(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform f64 in [0, 1) using the top 53 bits.
fn f64_unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64_unit(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (f64_unit(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&v));
            let w = rng.gen_range(1..=5i64);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.0..1000.0);
            assert!((0.0..1000.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX)).count();
        assert_eq!(same, 0);
    }
}
