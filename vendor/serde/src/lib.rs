//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The repo's types carry `#[derive(Serialize, Deserialize)]` so their
//! wire format is declared at the definition site, but no code path
//! serializes yet and the build environment has no crates.io access.
//! This shim keeps the annotations compiling: the traits are marker
//! traits with blanket impls, and the derives (re-exported from the
//! sibling `serde_derive` shim) expand to nothing.
//!
//! Swapping in real serde later is a one-line change in the workspace
//! manifest; no source edits are required.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
