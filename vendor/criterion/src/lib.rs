//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Benches compile and run with the same source: `benchmark_group`,
//! `sample_size` / `warm_up_time` / `measurement_time`, `bench_function`,
//! `bench_with_input`, `Bencher::{iter, iter_batched}`, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is honest but minimal: a short warm-up, then
//! `sample_size` timed samples, reported as min/mean/max wall-clock per
//! iteration on stdout. There is no statistical analysis, no HTML
//! report and no baseline comparison — CI uses `cargo bench --no-run`
//! plus the `report --smoke` binary for rot detection, and real
//! criterion can be swapped back in via the workspace manifest when
//! statistically rigorous numbers are needed.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies a benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        Self { id }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-iteration timing loop, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    recorded: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_up_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_up_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_up_end {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Accepted for API compatibility; the shim's sampling is bounded
    /// by `sample_size` alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size.min(self.criterion.max_samples),
            warm_up: self.warm_up.min(self.criterion.max_warm_up),
            recorded: Vec::new(),
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.id), &bencher.recorded);
    }
}

/// Entry point, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    max_samples: usize,
    max_warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_SHIM_FAST caps work per benchmark so a smoke run of
        // every bench target stays in CI-friendly time.
        let fast = std::env::var_os("CRITERION_SHIM_FAST").is_some();
        Self {
            max_samples: if fast { 3 } else { usize::MAX },
            max_warm_up: if fast { Duration::from_millis(10) } else { Duration::MAX },
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100.min(self.max_samples),
            warm_up: Duration::from_secs(3).min(self.max_warm_up),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }

    /// No-op hook so `criterion_main!`-style drivers can flush state.
    pub fn final_summary(&self) {}
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{id}: [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Collects benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion { max_samples: 5, max_warm_up: Duration::ZERO };
        let mut group = c.benchmark_group("g");
        group.sample_size(5).warm_up_time(Duration::ZERO);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls >= 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion { max_samples: 4, max_warm_up: Duration::ZERO };
        let mut group = c.benchmark_group("g");
        group.sample_size(4).warm_up_time(Duration::ZERO);
        let mut setups = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
