//! The `Strategy` trait and the combinators the workspace's property
//! suites use: ranges, tuples, `Just`, `prop_map` and unions.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy maps an RNG directly to a value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values, mirroring `Strategy::prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice among boxed strategies — the engine of `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("arms", &self.arms.len()).finish()
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Erase a strategy's concrete type for storage in a [`Union`].
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}
