//! Mirror of `proptest::prelude`: the strategy vocabulary plus the
//! macros, and the crate itself under the conventional `prop` alias
//! (so `prop::collection::vec(…)` resolves).

pub use crate as prop;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
