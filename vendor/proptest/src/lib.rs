//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Implements the `proptest!` macro over a small `Strategy` trait
//! (ranges, tuples, `Just`, `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`) driven by a deterministic per-test RNG.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case panics with the generated values in
//!   the assertion message instead of a minimized counterexample;
//! * no persisted failure seeds — streams are keyed by test name, so a
//!   failure reproduces on every run rather than via a regressions file;
//! * `prop_assert!` panics (it is `assert!`) instead of returning
//!   `TestCaseError`.
//!
//! The test-facing surface is call-compatible: the two property suites
//! in `crates/query` and `crates/core` run unmodified.

#![forbid(unsafe_code)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { … } }`.
///
/// Each generated `#[test]` draws `config.cases` samples from the
/// argument strategies and runs the body once per sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                // The closure gives `prop_assume!` an early exit that
                // skips just this case; values are moved in, matching
                // proptest's ownership semantics.
                let run = move || $body;
                run();
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Assert inside a property body. Panics on failure (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in -20i64..20, u in 0usize..6) {
            prop_assert!((-20..20).contains(&v));
            prop_assert!(u < 6);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u8..3, -3i64..3).prop_map(|(a, b)| (i64::from(a), b)),
        ) {
            prop_assert!((0..3).contains(&pair.0));
            prop_assert!((-3..3).contains(&pair.1));
        }

        #[test]
        fn oneof_hits_every_arm(xs in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..40)) {
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn assume_skips_case(v in 0i64..10) {
            prop_assume!(v != 3);
            prop_assert!(v != 3);
        }
    }

    #[test]
    fn bodies_actually_run_per_case() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static RUNS: AtomicU32 = AtomicU32::new(0);
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(17))]
            #[allow(unused)]
            fn counted(_v in 0i64..10) {
                RUNS.fetch_add(1, Ordering::SeqCst);
            }
        }
        counted();
        assert_eq!(RUNS.load(Ordering::SeqCst), 17);
    }
}
