//! Collection strategies — `prop::collection::vec`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Generate a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

/// Result of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
