//! Per-test configuration and the deterministic RNG that drives
//! generation.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Mirror of `proptest::test_runner::Config` — only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default. Override per-suite with
        // `#![proptest_config(ProptestConfig::with_cases(n))]`, or at
        // run time with the PROPTEST_CASES environment variable.
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        Self { cases }
    }
}

/// Deterministic stream keyed by test name: every run of a given test
/// sees the same cases, so a failure is reproducible without a
/// persistence file.
#[derive(Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives each property its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { inner: StdRng::seed_from_u64(h) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
