//! No-op replacements for `serde_derive`'s `Serialize` / `Deserialize`
//! derive macros.
//!
//! The workspace builds in a hermetic environment with no crates.io
//! access, and nothing in-tree actually serializes yet — the derives on
//! catalog/query/constraint types exist so the wire format is ready the
//! day a real serializer is wired in. Until then the derive can expand
//! to nothing: the `serde` shim's `Serialize`/`Deserialize` traits are
//! blanket-implemented, so every annotated type already satisfies any
//! future bound.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
