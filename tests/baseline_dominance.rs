//! §4's comparison claim: the tentative algorithm's outcome is at least as
//! good as the straight-forward (immediate-application) approach, whose
//! outcome depends on the order transformations are tried.
//!
//! Comparison is on **measured** execution work, not planner estimates: the
//! straight-forward baseline happily introduces intra-class/non-indexed
//! consequents whenever the independence-assuming estimate flatters them,
//! but the paper's Table 3.2 knows better — such predicates are perfectly
//! correlated with their antecedents and only add evaluation cost. Core
//! tags them redundant; the measured numbers vindicate it.

use sqo::baseline::{ApplicationOrder, StraightforwardOptimizer};
use sqo::core::SemanticOptimizer;
use sqo::exec::{execute, plan_query, CostBasedOracle, CostModel};
use sqo::query::Query;
use sqo::workload::{paper_scenario, DbSize, PaperScenario};

const ORDERS: [ApplicationOrder; 5] = [
    ApplicationOrder::AsRetrieved,
    ApplicationOrder::IntroductionsFirst,
    ApplicationOrder::EliminationsFirst,
    ApplicationOrder::Seeded(17),
    ApplicationOrder::Seeded(99),
];

fn measured_cost(scenario: &PaperScenario, q: &Query, model: &CostModel) -> f64 {
    let plan = plan_query(&scenario.db, q, model).expect("plan");
    let (_, counters) = execute(&scenario.db, &plan).expect("execute");
    model.measured(&counters)
}

#[test]
fn tentative_algorithm_dominates_straightforward_on_measured_cost() {
    let scenario = paper_scenario(DbSize::Db3, 42);
    let model = CostModel::default();
    let oracle = CostBasedOracle::new(&scenario.db);
    let optimizer = SemanticOptimizer::new(&scenario.store);

    let mut core_total = 0.0;
    let mut sf_totals = vec![0.0f64; ORDERS.len()];
    let mut core_wins_or_ties = 0usize;
    let mut comparisons = 0usize;

    for query in &scenario.queries {
        let core_q = optimizer.optimize(query, &oracle).unwrap().query;
        let core_cost = measured_cost(&scenario, &core_q, &model);
        core_total += core_cost;
        for (oi, order) in ORDERS.iter().enumerate() {
            let sf = StraightforwardOptimizer::new(&scenario.store, *order);
            let sf_q = sf.optimize(query, &oracle).query;
            let sf_cost = measured_cost(&scenario, &sf_q, &model);
            sf_totals[oi] += sf_cost;
            comparisons += 1;
            if core_cost <= sf_cost * 1.02 + 1e-9 {
                core_wins_or_ties += 1;
            }
        }
    }
    for (oi, order) in ORDERS.iter().enumerate() {
        assert!(
            core_total <= sf_totals[oi] * 1.01,
            "core {core_total:.2} must not lose to straightforward({order:?}) {:.2}",
            sf_totals[oi]
        );
    }
    let ratio = core_wins_or_ties as f64 / comparisons as f64;
    assert!(ratio >= 0.9, "core won/tied only {core_wins_or_ties}/{comparisons} comparisons");
}

#[test]
fn straightforward_outcomes_also_preserve_answers() {
    // Sanity for the baseline itself: its physical rewrites are sound, just
    // order-dependent and estimate-driven.
    let scenario = paper_scenario(DbSize::Db1, 42);
    let model = CostModel::default();
    let oracle = CostBasedOracle::new(&scenario.db);
    for query in scenario.queries.iter().take(20) {
        let base =
            execute(&scenario.db, &plan_query(&scenario.db, query, &model).unwrap()).unwrap().0;
        for order in [ApplicationOrder::AsRetrieved, ApplicationOrder::Seeded(17)] {
            let sf = StraightforwardOptimizer::new(&scenario.store, order);
            let sf_q = sf.optimize(query, &oracle).query;
            let got =
                execute(&scenario.db, &plan_query(&scenario.db, &sf_q, &model).unwrap()).unwrap().0;
            assert!(base.same_multiset(&got), "baseline changed an answer");
        }
    }
}

#[test]
fn straightforward_is_order_dependent_somewhere() {
    // The paper's motivation: different orders give different outcomes. Over
    // 40 queries and 5 orders, at least one query must split.
    let scenario = paper_scenario(DbSize::Db1, 42);
    let oracle = CostBasedOracle::new(&scenario.db);
    let mut any_divergence = false;
    for query in &scenario.queries {
        let mut outcomes: Vec<Query> = Vec::new();
        for order in ORDERS {
            let sf = StraightforwardOptimizer::new(&scenario.store, order);
            outcomes.push(sf.optimize(query, &oracle).query.normalized());
        }
        if outcomes.windows(2).any(|w| w[0] != w[1]) {
            any_divergence = true;
            break;
        }
    }
    assert!(
        any_divergence,
        "expected at least one query where application order changes the outcome"
    );
}

#[test]
fn core_never_catastrophically_behind_on_measured_cost() {
    let scenario = paper_scenario(DbSize::Db1, 7);
    let model = CostModel::default();
    let oracle = CostBasedOracle::new(&scenario.db);
    let optimizer = SemanticOptimizer::new(&scenario.store);
    for query in &scenario.queries {
        let core_q = optimizer.optimize(query, &oracle).unwrap().query;
        let core_cost = measured_cost(&scenario, &core_q, &model);
        for order in ORDERS {
            let sf = StraightforwardOptimizer::new(&scenario.store, order);
            let sf_q = sf.optimize(query, &oracle).query;
            let sf_cost = measured_cost(&scenario, &sf_q, &model);
            // 1.5× slack: on a Db1-sized instance a redundant intra-class
            // introduction (which core rightly drops per Table 3.2, but the
            // baseline keeps) can accidentally steer the greedy planner's
            // independence-assuming estimates to a better join order, so
            // core may lose individual small queries by up to ~1.45×
            // measured. The aggregate test above still requires core to win
            // overall within 1%; this bound only guards against blowups.
            assert!(
                core_cost <= sf_cost * 1.5 + 1e-9,
                "core {core_cost:.3} fell far behind straightforward({order:?}) {sf_cost:.3}"
            );
        }
    }
}
