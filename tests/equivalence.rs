//! The central correctness contract of semantic query optimization:
//! **the optimized query returns exactly the original answer** on every
//! database instance satisfying the constraint set.
//!
//! Exercised over the full Table 4.1 workload (40 path queries per
//! instance), under all three profitability oracles.

use sqo::core::{DropAllOracle, ProfitOracle, SemanticOptimizer, StructuralOracle};
use sqo::exec::{execute, plan_query, CostBasedOracle, CostModel};
use sqo::query::QueryExt;
use sqo::workload::{paper_scenario, DbSize, PaperScenario};

fn check_scenario(scenario: &PaperScenario, oracle: &dyn ProfitOracle, label: &str) {
    let optimizer = SemanticOptimizer::new(&scenario.store);
    let model = CostModel::default();
    let mut transformed = 0usize;
    for (i, query) in scenario.queries.iter().enumerate() {
        let out = optimizer
            .optimize(query, oracle)
            .unwrap_or_else(|e| panic!("query {i} failed to optimize: {e}"));
        if out.report.changed_query() {
            transformed += 1;
        }
        let verification = sqo::core::verify_optimization(&scenario.catalog, query, &out);
        assert!(
            verification.is_ok(),
            "[{label}] query {i} failed verification: {:?}",
            verification.issues
        );
        let plan_orig = plan_query(&scenario.db, query, &model).expect("plan original");
        let plan_opt = plan_query(&scenario.db, &out.query, &model).expect("plan optimized");
        let (res_orig, _) = execute(&scenario.db, &plan_orig).expect("execute original");
        let (res_opt, _) = execute(&scenario.db, &plan_opt).expect("execute optimized");
        if out.report.provably_empty {
            // The strongest possible check: a provable-emptiness claim must
            // agree with the data.
            assert!(
                res_orig.is_empty(),
                "[{label}] query {i} claimed empty but returned {} rows",
                res_orig.len()
            );
        }
        assert!(
            res_orig.same_multiset(&res_opt),
            "[{label}] query {i} changed its answer ({} vs {} rows)\noriginal : {}\noptimized: {}",
            res_orig.len(),
            res_opt.len(),
            query.display(&scenario.catalog),
            out.query.display(&scenario.catalog),
        );
    }
    assert!(
        transformed >= 10,
        "[{label}] expected a healthy fraction of the 40 queries to be transformed, got {transformed}"
    );
}

#[test]
fn db1_structural_oracle_preserves_answers() {
    let s = paper_scenario(DbSize::Db1, 42);
    check_scenario(&s, &StructuralOracle, "db1/structural");
}

#[test]
fn db1_drop_all_oracle_preserves_answers() {
    let s = paper_scenario(DbSize::Db1, 42);
    check_scenario(&s, &DropAllOracle, "db1/drop-all");
}

#[test]
fn db1_cost_based_oracle_preserves_answers() {
    let s = paper_scenario(DbSize::Db1, 42);
    let oracle = CostBasedOracle::new(&s.db);
    check_scenario(&s, &oracle, "db1/cost-based");
}

#[test]
fn db3_cost_based_oracle_preserves_answers() {
    let s = paper_scenario(DbSize::Db3, 42);
    let oracle = CostBasedOracle::new(&s.db);
    check_scenario(&s, &oracle, "db3/cost-based");
}

#[test]
fn db4_structural_oracle_preserves_answers() {
    let s = paper_scenario(DbSize::Db4, 42);
    check_scenario(&s, &StructuralOracle, "db4/structural");
}

#[test]
fn other_seeds_also_preserve_answers() {
    for seed in [1, 7, 1991] {
        let s = paper_scenario(DbSize::Db1, seed);
        let oracle = CostBasedOracle::new(&s.db);
        check_scenario(&s, &oracle, &format!("db1/seed{seed}"));
    }
}
