//! Workspace smoke test: the facade crate's front-page doctest path as a
//! regular `#[test]`, so the end-to-end parse → optimize → formulate
//! pipeline is exercised even in runs that skip doctests
//! (`cargo test --tests`, `cargo nextest`, coverage harnesses, …).

use std::sync::Arc;

use sqo::catalog::example::figure21;
use sqo::constraints::{figure22, ConstraintStore, StoreOptions};
use sqo::core::{SemanticOptimizer, StructuralOracle};
use sqo::query::{parse_query, QueryExt};

#[test]
fn facade_front_page_pipeline() {
    // Figure 2.1 schema + Figure 2.2 constraints, exactly as in the
    // `sqo` crate-level doctest.
    let catalog = Arc::new(figure21().expect("figure 2.1 schema"));
    let store = ConstraintStore::build(
        Arc::clone(&catalog),
        figure22(&catalog).expect("figure 2.2 constraints"),
        StoreOptions::paper_defaults(),
    )
    .expect("constraint store");
    let optimizer = SemanticOptimizer::new(&store);

    // Figure 2.3's sample query, in the paper's own syntax.
    let query = parse_query(
        r#"(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
            {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
            {collects, supplies} {supplier, cargo, vehicle})"#,
        &catalog,
    )
    .expect("figure 2.3 query");
    let optimized = optimizer.optimize(&query, &StructuralOracle).expect("optimize");

    // §3.5's worked outcome: supplier is eliminated, the supplier.name
    // predicate goes with it, cargo.desc is pinned to "frozen food".
    let supplier = catalog.class_id("supplier").expect("supplier class");
    assert_eq!(optimized.report.eliminated_classes, vec![supplier]);
    let printed = optimized.query.display(&catalog).to_string();
    assert_eq!(
        printed,
        "(SELECT {vehicle.vehicle_no, cargo.desc=\"frozen food\", cargo.quantity} {} \
         {vehicle.desc = \"refrigerated truck\", cargo.desc = \"frozen food\"} \
         {collects} {cargo, vehicle})"
    );
    optimized.query.validate(&catalog).expect("formulated query validates");
}
