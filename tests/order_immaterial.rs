//! The paper's headline property: **the order of transformations is
//! immaterial**. Because transformations are tentative (tags only move down
//! the lattice), every processing order reaches the same fixpoint.
//!
//! We vary everything that could influence order — queue discipline,
//! constraint insertion order in the store, grouping policy — and require
//! identical optimized queries.

use proptest::prelude::*;
use std::sync::Arc;

use sqo::constraints::{AssignmentPolicy, ConstraintStore, StoreOptions};
use sqo::core::{OptimizerConfig, QueueDiscipline, SemanticOptimizer, StructuralOracle};
use sqo::query::Query;
use sqo::workload::{
    bench_schema::bench_catalog, generate_constraints, paper_query_set, ConstraintGenConfig,
    QueryGenConfig,
};

fn environment(
    seed: u64,
) -> (Arc<sqo::catalog::Catalog>, Vec<sqo::constraints::HornConstraint>, Vec<Query>) {
    let catalog = Arc::new(bench_catalog().unwrap());
    let generated =
        generate_constraints(&catalog, ConstraintGenConfig { seed, ..Default::default() }).unwrap();
    let queries = paper_query_set(
        &catalog,
        &generated.forcings,
        12,
        &QueryGenConfig { seed: seed.wrapping_add(1), ..Default::default() },
    );
    (catalog, generated.constraints, queries)
}

fn optimize_all(
    catalog: &Arc<sqo::catalog::Catalog>,
    constraints: Vec<sqo::constraints::HornConstraint>,
    queries: &[Query],
    policy: AssignmentPolicy,
    discipline: QueueDiscipline,
) -> Vec<Query> {
    let store = ConstraintStore::build(
        Arc::clone(catalog),
        constraints,
        StoreOptions { policy, ..StoreOptions::paper_defaults() },
    )
    .unwrap();
    let config = OptimizerConfig { queue: discipline, ..OptimizerConfig::paper() };
    let optimizer = SemanticOptimizer::with_config(&store, config);
    queries
        .iter()
        .map(|q| optimizer.optimize(q, &StructuralOracle).unwrap().query.normalized())
        .collect()
}

#[test]
fn fifo_and_priority_queues_agree() {
    let (catalog, constraints, queries) = environment(5);
    let fifo = optimize_all(
        &catalog,
        constraints.clone(),
        &queries,
        AssignmentPolicy::LeastFrequentlyAccessed,
        QueueDiscipline::Fifo,
    );
    let prio = optimize_all(
        &catalog,
        constraints,
        &queries,
        AssignmentPolicy::LeastFrequentlyAccessed,
        QueueDiscipline::Priority,
    );
    assert_eq!(fifo, prio);
}

#[test]
fn constraint_insertion_order_is_immaterial() {
    let (catalog, constraints, queries) = environment(9);
    let forward = optimize_all(
        &catalog,
        constraints.clone(),
        &queries,
        AssignmentPolicy::Arbitrary,
        QueueDiscipline::Fifo,
    );
    let mut reversed_constraints = constraints;
    reversed_constraints.reverse();
    let reversed = optimize_all(
        &catalog,
        reversed_constraints,
        &queries,
        AssignmentPolicy::Arbitrary,
        QueueDiscipline::Fifo,
    );
    assert_eq!(forward, reversed);
}

#[test]
fn grouping_policy_is_immaterial_to_outcomes() {
    let (catalog, constraints, queries) = environment(13);
    let a = optimize_all(
        &catalog,
        constraints.clone(),
        &queries,
        AssignmentPolicy::Arbitrary,
        QueueDiscipline::Fifo,
    );
    let b = optimize_all(
        &catalog,
        constraints.clone(),
        &queries,
        AssignmentPolicy::Balanced,
        QueueDiscipline::Fifo,
    );
    let c = optimize_all(
        &catalog,
        constraints,
        &queries,
        AssignmentPolicy::LeastFrequentlyAccessed,
        QueueDiscipline::Fifo,
    );
    assert_eq!(a, b);
    assert_eq!(b, c);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property form: for random constraint/query populations, every
    /// order-influencing knob yields the same fixpoint.
    #[test]
    fn order_immateriality_holds_for_random_seeds(seed in 0u64..5000) {
        let (catalog, constraints, queries) = environment(seed);
        let fifo = optimize_all(
            &catalog,
            constraints.clone(),
            &queries,
            AssignmentPolicy::Arbitrary,
            QueueDiscipline::Fifo,
        );
        let mut shuffled = constraints.clone();
        shuffled.rotate_left(constraints.len() / 2);
        let rotated = optimize_all(
            &catalog,
            shuffled,
            &queries,
            AssignmentPolicy::Balanced,
            QueueDiscipline::Priority,
        );
        prop_assert_eq!(fifo, rotated);
    }
}
