//! End-to-end reproduction of the paper's worked example (Figure 2.3 + §3.5).

use std::sync::Arc;

use sqo::catalog::example::figure21;
use sqo::constraints::{figure22, ConstraintStore, StoreOptions};
use sqo::core::{
    run_transformations, MatchPolicy, OptimizerConfig, PredicateTag, SemanticOptimizer,
    StructuralOracle, TransformationTable,
};
use sqo::query::{parse_query, QueryExt};

const FIG23_ORIGINAL: &str = r#"(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
    {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
    {collects, supplies} {supplier, cargo, vehicle})"#;

fn setup(closure: bool) -> (Arc<sqo::catalog::Catalog>, ConstraintStore) {
    let catalog = Arc::new(figure21().unwrap());
    let store = ConstraintStore::build(
        Arc::clone(&catalog),
        figure22(&catalog).unwrap(),
        StoreOptions { materialize_closure: closure, ..StoreOptions::paper_defaults() },
    )
    .unwrap();
    (catalog, store)
}

/// The final transformed query of Figure 2.3, exactly.
#[test]
fn figure23_transformed_query_matches_paper() {
    let (catalog, store) = setup(true);
    let optimizer = SemanticOptimizer::new(&store);
    let query = parse_query(FIG23_ORIGINAL, &catalog).unwrap();
    let out = optimizer.optimize(&query, &StructuralOracle).unwrap();
    assert_eq!(
        out.query.display(&catalog).to_string(),
        "(SELECT {vehicle.vehicle_no, cargo.desc=\"frozen food\", cargo.quantity} {} \
         {vehicle.desc = \"refrigerated truck\", cargo.desc = \"frozen food\"} \
         {collects} {cargo, vehicle})"
    );
}

/// §3.5 step 1: C = {c1, c2}; P = {p1, p2, p3}; T as printed in the paper.
#[test]
fn section35_initialization_state() {
    let (catalog, store) = setup(false);
    let query = parse_query(FIG23_ORIGINAL, &catalog).unwrap();
    let relevant = store.relevant_for(&query);
    let names: Vec<&str> = relevant.iter().map(|&id| store.constraint(id).name.as_str()).collect();
    assert_eq!(names.len(), 2);
    assert!(names.contains(&"c1") && names.contains(&"c2"));

    let table =
        TransformationTable::build(&catalog, &store, &relevant, &query, MatchPolicy::Implication);
    assert_eq!(table.column_count(), 3, "P = {{p1, p2, p3}}");
    // p1, p2 (query predicates) start imperative; p3 is not yet present.
    use sqo::constraints::PredId;
    assert_eq!(table.final_tag(PredId(0)), Some(PredicateTag::Imperative));
    assert_eq!(table.final_tag(PredId(1)), Some(PredicateTag::Imperative));
    assert_eq!(table.final_tag(PredId(2)), None);
}

/// §3.5 steps 2–3: after the two transformations, p1 is imperative and
/// p2, p3 are optional; supplier is eliminated at formulation.
#[test]
fn section35_final_tags() {
    let (catalog, store) = setup(false);
    let query = parse_query(FIG23_ORIGINAL, &catalog).unwrap();
    let relevant = store.relevant_for(&query);
    let config = OptimizerConfig::paper();
    let mut table =
        TransformationTable::build(&catalog, &store, &relevant, &query, config.match_policy);
    let log = run_transformations(&mut table, &config);
    assert_eq!(log.applied.len(), 2);
    use sqo::constraints::PredId;
    assert_eq!(table.final_tag(PredId(0)), Some(PredicateTag::Imperative), "p1");
    assert_eq!(table.final_tag(PredId(1)), Some(PredicateTag::Optional), "p2");
    assert_eq!(table.final_tag(PredId(2)), Some(PredicateTag::Optional), "p3");
}

/// The optimizer reaches the same Figure 2.3 outcome with and without the
/// materialized closure (the closure is a retrieval optimization, not a
/// semantics change).
#[test]
fn closure_does_not_change_the_outcome() {
    let (catalog, with) = setup(true);
    let (_, without) = setup(false);
    let query = parse_query(FIG23_ORIGINAL, &catalog).unwrap();
    let a = SemanticOptimizer::new(&with).optimize(&query, &StructuralOracle).unwrap();
    let b = SemanticOptimizer::new(&without).optimize(&query, &StructuralOracle).unwrap();
    assert_eq!(a.query.normalized(), b.query.normalized());
}

/// The paper's query format round-trips: parse → display → parse.
#[test]
fn paper_syntax_round_trip() {
    let (catalog, _) = setup(false);
    let q1 = parse_query(FIG23_ORIGINAL, &catalog).unwrap();
    let printed = q1.display(&catalog).to_string();
    let q2 = parse_query(&printed, &catalog).unwrap();
    assert_eq!(q1, q2);
}
