//! §3's grouping-scheme correctness: the group union always retrieves a
//! superset of the relevant constraints ("Thus the grouping scheme is
//! correct, though not necessarily optimal").

use proptest::prelude::*;
use std::sync::Arc;

use sqo::constraints::{AssignmentPolicy, ConstraintStore, StoreOptions};
use sqo::workload::{
    bench_schema::bench_catalog, generate_constraints, paper_query_set, ConstraintGenConfig,
    QueryGenConfig,
};

fn recall_holds(seed: u64, policy: AssignmentPolicy) {
    let catalog = Arc::new(bench_catalog().unwrap());
    let generated = generate_constraints(
        &catalog,
        ConstraintGenConfig { seed, per_class: 4, ..Default::default() },
    )
    .unwrap();
    let store = ConstraintStore::build(
        Arc::clone(&catalog),
        generated.constraints,
        StoreOptions { policy, ..StoreOptions::paper_defaults() },
    )
    .unwrap();
    let queries = paper_query_set(
        &catalog,
        &generated.forcings,
        20,
        &QueryGenConfig { seed: seed.wrapping_add(3), ..Default::default() },
    );
    for q in &queries {
        let mut grouped = store.relevant_for(q);
        let mut full = store.relevant_for_ungrouped(q);
        grouped.sort_unstable();
        full.sort_unstable();
        assert_eq!(grouped, full, "policy {policy:?} lost a relevant constraint");
    }
}

#[test]
fn recall_under_all_policies() {
    for policy in [
        AssignmentPolicy::Arbitrary,
        AssignmentPolicy::LeastFrequentlyAccessed,
        AssignmentPolicy::Balanced,
    ] {
        recall_holds(42, policy);
    }
}

#[test]
fn regrouping_preserves_recall() {
    let catalog = Arc::new(bench_catalog().unwrap());
    let generated = generate_constraints(&catalog, ConstraintGenConfig::default()).unwrap();
    let store = ConstraintStore::build(
        Arc::clone(&catalog),
        generated.constraints,
        StoreOptions {
            policy: AssignmentPolicy::LeastFrequentlyAccessed,
            ..StoreOptions::paper_defaults()
        },
    )
    .unwrap();
    let queries = paper_query_set(&catalog, &generated.forcings, 15, &QueryGenConfig::default());
    // Skew the access pattern, regroup repeatedly, and re-check recall.
    for round in 0..4 {
        for q in queries.iter().skip(round) {
            let mut grouped = store.relevant_for(q);
            let mut full = store.relevant_for_ungrouped(q);
            grouped.sort_unstable();
            full.sort_unstable();
            assert_eq!(grouped, full, "round {round}");
        }
        store.regroup();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn recall_for_random_seeds(seed in 0u64..10_000) {
        recall_holds(seed, AssignmentPolicy::LeastFrequentlyAccessed);
    }
}
