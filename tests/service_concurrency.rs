//! Serving-layer correctness under concurrency: 8 threads hammering a
//! [`sqo::service::QueryService`] with a mixed, Zipf-skewed,
//! spelling-shuffled workload must produce exactly the answers of
//! single-threaded, uncached execution — before *and* after a constraint
//! insert bumps the epoch and invalidates every cached rewrite.

use std::sync::Arc;

use sqo::core::SemanticOptimizer;
use sqo::exec::{execute, plan_query, CostBasedOracle, CostModel, ResultSet};
use sqo::query::Query;
use sqo::service::{QueryService, ServiceConfig};
use sqo::storage::Database;
use sqo::workload::{paper_scenario, service_workload, DbSize, ServiceWorkloadConfig};

/// The ground truth: one fresh optimize → plan → execute per query, no
/// service, no cache, one thread. Answers come back keyed by the canonical
/// form so any spelling can be checked against them.
fn reference_answers(
    store: &sqo::constraints::ConstraintStore,
    db: &Database,
    queries: &[Query],
) -> Vec<ResultSet> {
    let optimizer = SemanticOptimizer::new(store);
    let oracle = CostBasedOracle::new(db);
    let model = CostModel::default();
    queries
        .iter()
        .map(|q| {
            // The service canonicalizes before optimizing, so the reference
            // must too (answers are in canonical column order).
            let canonical = q.canonical();
            let out = optimizer.optimize(&canonical, &oracle).expect("optimize");
            if out.report.provably_empty {
                ResultSet::new(out.query.projections.iter().map(|p| p.attr).collect())
            } else {
                let plan = plan_query(db, &out.query, &model).expect("plan");
                execute(db, &plan).expect("execute").0
            }
        })
        .collect()
}

#[test]
fn eight_threads_match_single_threaded_execution_across_epochs() {
    let scenario = paper_scenario(DbSize::Db1, 42);
    let workload = service_workload(
        &scenario.queries,
        &ServiceWorkloadConfig { seed: 7, distinct: 12, requests: 240, ..Default::default() },
    );
    let store = Arc::new(scenario.store);
    let db = Arc::new(scenario.db);
    let service = QueryService::with_config(
        Arc::clone(&store),
        Arc::clone(&db),
        ServiceConfig { shards: 8, ..Default::default() },
    );

    // Epoch 0: concurrent cached answers == sequential uncached answers.
    let reference = reference_answers(&store, &db, &workload.distinct);
    let responses = service.run_batch(&workload.requests, 8);
    for ((response, &i), request) in responses.iter().zip(&workload.indices).zip(&workload.requests)
    {
        let response = response.as_ref().expect("request must succeed");
        assert!(
            response.results.same_multiset(&reference[i]),
            "request {request:?} diverged from single-threaded execution"
        );
        assert_eq!(response.epoch, 0);
    }
    // Concurrent first requests for the same query may stampede (each
    // misser optimizes once before the first insert lands). At most all 8
    // workers can race on one key before its entry lands, so the provable
    // ceiling is distinct × workers — in practice it stays near `distinct`,
    // but asserting the loose bound keeps the test deterministic.
    let miss_ceiling = (workload.distinct.len() * 8) as u64;
    let stats = service.stats();
    assert_eq!(stats.requests, 240);
    assert!(
        stats.cache.misses <= miss_ceiling,
        "repeated spellings must be served from the cache: {stats:?}"
    );
    assert!(
        stats.cache.hits + stats.cache.misses == 240,
        "every request consults the cache exactly once: {stats:?}"
    );
    assert!(stats.optimizations <= miss_ceiling, "optimization only happens on a miss: {stats:?}");

    // Bump the epoch with a (sound) constraint insert: a duplicate of an
    // existing constraint changes no semantics, so answers must not move —
    // but every cached rewrite whose class set overlaps the constraint's
    // must be re-derived under the new epoch, while disjoint entries are
    // revalidated in place (class-overlap invalidation).
    let dup = service.store().constraint(sqo::constraints::ConstraintId(0)).clone();
    let touched = dup.classes.clone();
    let entries_before = service.stats().cache.entries;
    let invalidations_before = service.stats().cache.invalidations;
    let overlapping =
        workload.distinct.iter().filter(|q| q.classes.iter().any(|c| touched.contains(c))).count();
    assert!(overlapping >= 1, "c1's classes are hot in every workload");
    let new_epoch = service.add_constraint(dup);
    assert!(new_epoch > 0);
    let mid = service.stats();
    assert_eq!(
        mid.cache.invalidations - invalidations_before,
        overlapping as u64,
        "exactly the overlapping entries are purged: {mid:?}"
    );
    assert_eq!(
        mid.cache.entries,
        entries_before - overlapping,
        "disjoint entries survive the insert: {mid:?}"
    );

    let new_store = service.store();
    let reference2 = reference_answers(&new_store, &db, &workload.distinct);
    let optimizations_before = mid.optimizations;
    let responses = service.run_batch(&workload.requests, 8);
    for (response, &i) in responses.iter().zip(&workload.indices) {
        let response = response.as_ref().expect("request must succeed");
        assert!(response.results.same_multiset(&reference2[i]), "post-epoch answer diverged");
        assert!(
            response.results.same_multiset(&reference[i]),
            "duplicate constraint moved answers"
        );
        assert_eq!(response.epoch, new_epoch);
    }
    let after = service.stats();
    assert!(
        after.optimizations > optimizations_before,
        "epoch bump must force re-optimization of overlapping queries: {after:?}"
    );
    assert!(
        after.optimizations - optimizations_before <= (overlapping * 8) as u64,
        "re-optimization happens once per *invalidated* distinct query (modulo \
         stampedes); revalidated entries keep serving: {after:?}"
    );
}

#[test]
fn concurrent_mixed_readers_and_an_epoch_writer_stay_consistent() {
    // Harsher interleaving: the epoch bump lands *while* 8 reader threads
    // are mid-batch. Every response must be internally consistent (match
    // the reference for whatever epoch answered it) even as the store swaps.
    let scenario = paper_scenario(DbSize::Db1, 11);
    let workload = service_workload(
        &scenario.queries,
        &ServiceWorkloadConfig { seed: 3, distinct: 8, requests: 400, ..Default::default() },
    );
    let store = Arc::new(scenario.store);
    let db = Arc::new(scenario.db);
    let service = QueryService::new(Arc::clone(&store), Arc::clone(&db));
    let reference = reference_answers(&store, &db, &workload.distinct);

    std::thread::scope(|scope| {
        let service = &service;
        let writer = scope.spawn(move || {
            for _ in 0..5 {
                let dup = service.store().constraint(sqo::constraints::ConstraintId(0)).clone();
                service.add_constraint(dup);
                std::thread::yield_now();
            }
        });
        let requests = &workload.requests;
        let indices = &workload.indices;
        let reference = &reference;
        let readers: Vec<_> = (0..8)
            .map(|r| {
                scope.spawn(move || {
                    for (request, &i) in requests.iter().zip(indices).skip(r).step_by(8) {
                        let response = service.run(request).expect("run");
                        assert!(
                            response.results.same_multiset(&reference[i]),
                            "reader {r} got a wrong answer mid-swap"
                        );
                    }
                })
            })
            .collect();
        writer.join().expect("writer");
        for reader in readers {
            reader.join().expect("reader");
        }
    });
    assert_eq!(service.epoch(), 5);
}
