//! Quickstart: optimize the paper's Figure 2.3 query in ten lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use sqo::catalog::example::figure21;
use sqo::constraints::{figure22, ConstraintStore, StoreOptions};
use sqo::core::{SemanticOptimizer, StructuralOracle};
use sqo::query::{parse_query, QueryExt};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's schema (Figure 2.1) and constraints (Figure 2.2).
    let catalog = Arc::new(figure21()?);
    let store = ConstraintStore::build(
        Arc::clone(&catalog),
        figure22(&catalog)?,
        StoreOptions::paper_defaults(),
    )?;

    // 2. The sample query, written in the paper's own syntax: vehicles and
    //    cargo descriptions for refrigerated trucks sent to SFI.
    let query = parse_query(
        r#"(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
            {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
            {collects, supplies} {supplier, cargo, vehicle})"#,
        &catalog,
    )?;

    // 3. Optimize. The StructuralOracle keeps every optional predicate and
    //    performs every sound class elimination; swap in
    //    `sqo::exec::CostBasedOracle` for cost-based decisions.
    let optimizer = SemanticOptimizer::new(&store);
    let optimized = optimizer.optimize(&query, &StructuralOracle)?;

    println!("original :\n  {}", query.display(&catalog));
    println!("optimized:\n  {}", optimized.query.display(&catalog));
    println!();
    println!("{}", optimized.report.render(&catalog));
    Ok(())
}
