//! Fleet analytics over the Table 4.1 benchmark environment.
//!
//! Provisions the paper's DB3-scale scenario (5 classes, 6 relationships,
//! ~3 constraints per class, 40 random path queries), runs every query with
//! and without semantic optimization, and prints a per-query cost summary —
//! a miniature of the paper's Table 4.2 experiment.
//!
//! ```sh
//! cargo run --release --example fleet_analytics
//! ```

use sqo::core::SemanticOptimizer;
use sqo::exec::{execute, plan_query, CostBasedOracle, CostModel};
use sqo::query::QueryExt;
use sqo::workload::{paper_scenario, DbSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = paper_scenario(DbSize::Db3, 42);
    let catalog = &scenario.catalog;
    println!(
        "scenario: {} — {} constraints ({} derived by closure), {} queries",
        scenario.db_size.name(),
        scenario.store.len(),
        scenario.store.derived_count,
        scenario.queries.len()
    );

    let optimizer = SemanticOptimizer::new(&scenario.store);
    let oracle = CostBasedOracle::new(&scenario.db);
    let model = CostModel::default();

    let mut improved = 0usize;
    let mut unchanged = 0usize;
    let mut regressed = 0usize;
    let mut total_ratio = 0.0;

    println!("\n  # cls prd   orig cost    opt cost  ratio  transformations");
    for (i, query) in scenario.queries.iter().enumerate() {
        let out = optimizer.optimize(query, &oracle)?;
        let plan_orig = plan_query(&scenario.db, query, &model)?;
        let plan_opt = plan_query(&scenario.db, &out.query, &model)?;
        let (res_orig, c_orig) = execute(&scenario.db, &plan_orig)?;
        let (res_opt, c_opt) = execute(&scenario.db, &plan_opt)?;
        assert!(
            res_orig.same_multiset(&res_opt),
            "query {i} changed its answer:\n{}\n{}",
            query.display(catalog),
            out.query.display(catalog)
        );
        let cost_orig = model.measured(&c_orig).max(1e-9);
        let cost_opt = model.measured(&c_opt);
        let ratio = cost_opt / cost_orig;
        total_ratio += ratio;
        if ratio < 0.999 {
            improved += 1;
        } else if ratio <= 1.001 {
            unchanged += 1;
        } else {
            regressed += 1;
        }
        println!(
            "{i:>3} {:>3} {:>3} {:>11.2} {:>11.2} {:>6.2}  {}",
            query.classes.len(),
            query.predicate_count(),
            cost_orig,
            cost_opt,
            ratio,
            out.report.transformations.applied.len(),
        );
    }
    println!(
        "\nsummary: {improved} improved, {unchanged} unchanged, {regressed} regressed; \
         mean cost ratio {:.3}",
        total_ratio / scenario.queries.len() as f64
    );
    println!(
        "constraint retrieval waste (grouping scheme): {:.1}%",
        scenario.store.metrics().waste_ratio() * 100.0
    );
    Ok(())
}
