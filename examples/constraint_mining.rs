//! Constraint management deep-dive: transitive closures, grouping policies
//! and Siegel-style dynamic rules.
//!
//! Demonstrates the §3 machinery in isolation: what the closure derives,
//! how much each grouping policy over-fetches, and how a dynamic (current
//! database state) rule slots in next to declared integrity constraints.
//!
//! ```sh
//! cargo run --example constraint_mining
//! ```

use std::sync::Arc;

use sqo::catalog::example::figure21;
use sqo::constraints::{
    figure22, AssignmentPolicy, ConstraintBuilder, ConstraintStore, Origin, StoreOptions,
};
use sqo::query::{CompOp, QueryBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Arc::new(figure21()?);
    let mut constraints = figure22(&catalog)?;

    // A Siegel-style dynamic rule: *currently* every cargo in the database
    // weighs less than 100 units. True of the current state, not of all
    // states — tagged Dynamic so it can be invalidated on update.
    constraints.push(
        ConstraintBuilder::new(&catalog, "d1")
            .scope("cargo")
            .then("cargo.quantity", CompOp::Lt, 100i64)
            .dynamic()
            .build()?,
    );

    // Closure materialization (§3): c1 (truck -> frozen food) chains with
    // c2 (frozen food -> SFI) into a derived constraint.
    let store = ConstraintStore::build(
        Arc::clone(&catalog),
        constraints.clone(),
        StoreOptions::paper_defaults(),
    )?;
    println!("declared constraints: {}", constraints.len());
    println!("after closure       : {} ({} derived)", store.len(), store.derived_count);
    for (_, c) in store.constraints() {
        let marker = match c.origin {
            Origin::Declared => " ",
            Origin::Derived => "+",
            Origin::Dynamic => "~",
        };
        println!("  {marker} {}", c.display(&catalog));
    }

    // Grouping policies (§3): how many irrelevant constraints ride along?
    let probe_queries = vec![
        QueryBuilder::new(&catalog)
            .select("cargo.desc")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .via("collects")
            .build()?,
        QueryBuilder::new(&catalog).select("driver.name").via("drives").build()?,
        QueryBuilder::new(&catalog)
            .select("employee.name")
            .filter("department.name", CompOp::Eq, "development")
            .via("belongs_to")
            .build()?,
    ];
    println!("\ngrouping policy comparison ({} probe queries):", probe_queries.len());
    for policy in [
        AssignmentPolicy::Arbitrary,
        AssignmentPolicy::LeastFrequentlyAccessed,
        AssignmentPolicy::Balanced,
    ] {
        let s = ConstraintStore::build(
            Arc::clone(&catalog),
            constraints.clone(),
            StoreOptions { policy, ..StoreOptions::paper_defaults() },
        )?;
        for q in &probe_queries {
            let _ = s.relevant_for(q);
        }
        println!(
            "  {:?}: retrieved {}, relevant {}, waste {:.1}%",
            policy,
            s.metrics().retrieved.load(std::sync::atomic::Ordering::Relaxed),
            s.metrics().relevant.load(std::sync::atomic::Ordering::Relaxed),
            s.metrics().waste_ratio() * 100.0
        );
    }
    Ok(())
}
