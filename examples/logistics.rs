//! The full Figure 2.3 walkthrough on real data.
//!
//! Builds a logistics database over the Figure 2.1 schema that satisfies
//! constraints c1–c5, optimizes the sample query with the *cost-based*
//! oracle, executes both versions, and verifies they return identical
//! answers while reporting the measured work.
//!
//! ```sh
//! cargo run --example logistics
//! ```

use std::sync::Arc;

use sqo::catalog::example::figure21;
use sqo::constraints::{figure22, ConstraintStore, StoreOptions};
use sqo::core::{SemanticOptimizer, StructuralOracle};
use sqo::exec::{execute, plan_query, CostBasedOracle, CostModel};
use sqo::query::{parse_query, QueryExt};
use sqo::workload::{logistics_database, LogisticsConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Arc::new(figure21()?);
    let constraints = figure22(&catalog)?;
    println!("Constraints (Figure 2.2):");
    for c in &constraints {
        println!("  {}", c.display(&catalog));
    }

    let db = logistics_database(
        Arc::clone(&catalog),
        &LogisticsConfig { cargoes: 400, vehicles: 60, suppliers: 40, ..Default::default() },
    )?;
    let store =
        ConstraintStore::build(Arc::clone(&catalog), constraints, StoreOptions::paper_defaults())?;

    let query = parse_query(
        r#"(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
            {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
            {collects, supplies} {supplier, cargo, vehicle})"#,
        &catalog,
    )?;
    println!("\nSample query:\n  {}", query.display(&catalog));

    // Optimize twice: once with the paper-style structural decisions, once
    // with the plan-cost oracle.
    let optimizer = SemanticOptimizer::new(&store);
    let structural = optimizer.optimize(&query, &StructuralOracle)?;
    let oracle = CostBasedOracle::new(&db);
    let costed = optimizer.optimize(&query, &oracle)?;

    println!("\nStructural optimization (Figure 2.3's outcome):");
    println!("  {}", structural.query.display(&catalog));
    println!("\nCost-based optimization on this instance:");
    println!("  {}", costed.query.display(&catalog));

    // Execute and compare.
    let model = CostModel::default();
    for (label, q) in
        [("original", &query), ("structural", &structural.query), ("cost-based", &costed.query)]
    {
        let plan = plan_query(&db, q, &model)?;
        let (result, counters) = execute(&db, &plan)?;
        println!(
            "\n[{label}] rows={} cost={:.2} work units ({counters})",
            result.len(),
            model.measured(&counters),
        );
    }

    // Safety check: identical answers.
    let base = execute(&db, &plan_query(&db, &query, &model)?)?.0;
    for q in [&structural.query, &costed.query] {
        let got = execute(&db, &plan_query(&db, q, &model)?)?.0;
        assert!(base.same_multiset(&got), "optimization changed the answer!");
    }
    println!("\nAll three queries return the same {} rows. ✓", base.len());
    Ok(())
}
