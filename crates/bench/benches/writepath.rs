//! Microbenchmarks of the copy-on-write write path: applying a batch via
//! the incremental `Arc` clone-and-patch ([`Database::with_writes`]) vs the
//! from-scratch rebuild oracle ([`Database::with_writes_full`]), and the
//! statistics side in isolation — per-touched-class delta folding (driven
//! through an update-only batch, whose cost is dominated by the one-class
//! stats recompute) vs the full rescan ([`Database::rebuild_statistics`]).
//!
//! Quick mode: set `SQO_BENCH_SMOKE=1` (the CI bench-smoke job does) to run
//! every benchmark at minimal sample counts — same code paths, a fraction
//! of the wall clock.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sqo_catalog::AttrId;
use sqo_storage::{DataWrite, Database, ObjectId};
use sqo_workload::{copyable_rels, dup_insert, paper_scenario, DbSize};

fn smoke() -> bool {
    std::env::var_os("SQO_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn tune<'c>(c: &'c mut Criterion, name: &str) -> criterion::BenchmarkGroup<'c> {
    let mut group = c.benchmark_group(name);
    if smoke() {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(20))
            .measurement_time(Duration::from_millis(100));
    } else {
        group
            .sample_size(60)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1));
    }
    group
}

/// An E11-style duplicate-insert batch touching one class.
fn dup_batch(db: &Database, size: usize) -> Vec<DataWrite> {
    let catalog = db.catalog();
    let cargo = catalog.class_id("cargo").expect("bench schema");
    let rels = copyable_rels(catalog, cargo);
    (0..size).map(|i| dup_insert(db, cargo, i as u32, &rels)).collect()
}

/// Batch apply, incremental vs full rebuild, on the DB2 instance.
fn bench_batch_apply(c: &mut Criterion) {
    let db = paper_scenario(DbSize::Db2, 42).db;
    let batch = dup_batch(&db, 8);
    let mut group = tune(c, "writepath_apply");
    group.bench_function("incremental", |b| {
        b.iter(|| std::hint::black_box(db.with_writes(&batch, None).expect("apply")));
    });
    group.bench_function("full_rebuild", |b| {
        b.iter(|| std::hint::black_box(db.with_writes_full(&batch, None).expect("apply")));
    });
    group.finish();
}

/// The statistics side in isolation: a one-attribute in-place update folds
/// exactly one class's stats (plus the extent/index patch, which is tiny
/// next to the per-class rescan), vs recomputing every class from scratch.
fn bench_stats(c: &mut Criterion) {
    let db = paper_scenario(DbSize::Db2, 42).db;
    let catalog = db.catalog();
    let cargo = catalog.class_id("cargo").expect("bench schema");
    let touch = vec![DataWrite::Update {
        class: cargo,
        object: ObjectId(0),
        attr: AttrId(0),
        value: db.tuple(cargo, ObjectId(0)).unwrap()[0].clone(),
    }];
    let mut group = tune(c, "writepath_stats");
    group.bench_function("delta_fold_one_class", |b| {
        b.iter(|| std::hint::black_box(db.with_writes(&touch, None).expect("apply")));
    });
    group.bench_function("full_rescan", |b| {
        b.iter(|| std::hint::black_box(db.rebuild_statistics()));
    });
    group.finish();
}

criterion_group!(benches, bench_batch_apply, bench_stats);
criterion_main!(benches);
