//! Figure 4.1 — query transformation time as a function of the number of
//! object classes in the query and the number of constraints.
//!
//! The paper's claim: "query transformation time is clearly proportional to
//! both the number of object classes in the query and, to a lesser extent,
//! the number of relevant constraints." Criterion measures exactly the
//! optimizer call (retrieval + table + transformations + formulation).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqo_constraints::{ConstraintStore, StoreOptions};
use sqo_core::{SemanticOptimizer, StructuralOracle};
use sqo_query::Query;
use sqo_workload::{
    bench_schema::bench_catalog, generate_constraints, paper_query_set, ConstraintGenConfig,
    QueryGenConfig,
};

fn bench_fig41(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig41_transformation_time");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let catalog = Arc::new(bench_catalog().expect("schema"));
    for per_class in [1usize, 5, 9] {
        let generated = generate_constraints(
            &catalog,
            ConstraintGenConfig { per_class, seed: 42, ..Default::default() },
        )
        .expect("constraints");
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            generated.constraints,
            StoreOptions::paper_defaults(),
        )
        .expect("store");
        let optimizer = SemanticOptimizer::new(&store);
        let queries = paper_query_set(
            &catalog,
            &generated.forcings,
            40,
            &QueryGenConfig { seed: 43, ..Default::default() },
        );
        for classes in 2..=5usize {
            let subset: Vec<Query> =
                queries.iter().filter(|q| q.classes.len() == classes).cloned().collect();
            if subset.is_empty() {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("{per_class}_constraints_per_class"), classes),
                &subset,
                |b, subset| {
                    b.iter(|| {
                        for q in subset {
                            std::hint::black_box(
                                optimizer.optimize(q, &StructuralOracle).expect("optimize"),
                            );
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig41);
criterion_main!(benches);
