//! Ablation benches for the design choices DESIGN.md calls out:
//! grouping policy (E6), closure materialization (E8), transformation
//! budget (E7), and matching/tag policy variants.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqo_constraints::{AssignmentPolicy, ConstraintStore, StoreOptions};
use sqo_core::{MatchPolicy, OptimizerConfig, SemanticOptimizer, StructuralOracle, TagPolicy};
use sqo_query::Query;
use sqo_workload::{
    bench_schema::bench_catalog, generate_constraints, paper_query_set, ConstraintGenConfig,
    QueryGenConfig,
};

struct Env {
    catalog: Arc<sqo_catalog::Catalog>,
    constraints: Vec<sqo_constraints::HornConstraint>,
    queries: Vec<Query>,
}

fn env() -> Env {
    let catalog = Arc::new(bench_catalog().expect("schema"));
    let generated = generate_constraints(
        &catalog,
        ConstraintGenConfig { per_class: 4, chain_fraction: 0.3, seed: 42, ..Default::default() },
    )
    .expect("constraints");
    let queries = paper_query_set(
        &catalog,
        &generated.forcings,
        40,
        &QueryGenConfig { seed: 43, ..Default::default() },
    );
    Env { catalog, constraints: generated.constraints, queries }
}

fn store_with(env: &Env, options: StoreOptions) -> ConstraintStore {
    ConstraintStore::build(Arc::clone(&env.catalog), env.constraints.clone(), options)
        .expect("store")
}

fn bench_grouping(c: &mut Criterion) {
    let e = env();
    let mut group = c.benchmark_group("ablation_grouping_retrieval");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for policy in [
        AssignmentPolicy::Arbitrary,
        AssignmentPolicy::LeastFrequentlyAccessed,
        AssignmentPolicy::Balanced,
    ] {
        let store = store_with(&e, StoreOptions { policy, ..StoreOptions::paper_defaults() });
        group.bench_function(BenchmarkId::from_parameter(format!("{policy:?}")), |b| {
            b.iter(|| {
                for q in &e.queries {
                    std::hint::black_box(store.relevant_for(q));
                }
            })
        });
    }
    // The ungrouped full scan the paper's scheme avoids.
    let store = store_with(&e, StoreOptions::paper_defaults());
    group.bench_function("UngroupedScan", |b| {
        b.iter(|| {
            for q in &e.queries {
                std::hint::black_box(store.relevant_for_ungrouped(q));
            }
        })
    });
    group.finish();
}

fn bench_closure(c: &mut Criterion) {
    let e = env();
    let mut group = c.benchmark_group("ablation_closure");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for materialize in [false, true] {
        let store = store_with(
            &e,
            StoreOptions { materialize_closure: materialize, ..StoreOptions::paper_defaults() },
        );
        let optimizer = SemanticOptimizer::new(&store);
        let name = if materialize { "materialized" } else { "raw" };
        group.bench_function(BenchmarkId::new("optimize_40_queries", name), |b| {
            b.iter(|| {
                for q in &e.queries {
                    std::hint::black_box(
                        optimizer.optimize(q, &StructuralOracle).expect("optimize"),
                    );
                }
            })
        });
    }
    group.finish();
}

fn bench_budget(c: &mut Criterion) {
    let e = env();
    let store = store_with(&e, StoreOptions::paper_defaults());
    let mut group = c.benchmark_group("ablation_budget");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for budget in [0usize, 2, 8] {
        let optimizer = SemanticOptimizer::with_config(&store, OptimizerConfig::budgeted(budget));
        group.bench_function(BenchmarkId::from_parameter(budget), |b| {
            b.iter(|| {
                for q in &e.queries {
                    std::hint::black_box(
                        optimizer.optimize(q, &StructuralOracle).expect("optimize"),
                    );
                }
            })
        });
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let e = env();
    let store = store_with(&e, StoreOptions::paper_defaults());
    let mut group = c.benchmark_group("ablation_match_and_tag_policy");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, config) in [
        ("implication_tables", OptimizerConfig::paper()),
        (
            "syntactic_tables",
            OptimizerConfig { match_policy: MatchPolicy::Syntactic, ..OptimizerConfig::paper() },
        ),
        (
            "implication_pseudocode",
            OptimizerConfig { tag_policy: TagPolicy::Pseudocode, ..OptimizerConfig::paper() },
        ),
    ] {
        let optimizer = SemanticOptimizer::with_config(&store, config);
        group.bench_function(name, |b| {
            b.iter(|| {
                for q in &e.queries {
                    std::hint::black_box(
                        optimizer.optimize(q, &StructuralOracle).expect("optimize"),
                    );
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grouping, bench_closure, bench_budget, bench_policies);
criterion_main!(benches);
