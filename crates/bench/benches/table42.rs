//! Table 4.2 — execution cost of original vs. semantically optimized
//! queries on each of the four database instances.
//!
//! The criterion series measure the *execution* side of the ratio; the
//! `report` binary produces the full bucketed table with transformation
//! cost folded in.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqo_core::SemanticOptimizer;
use sqo_exec::{execute, plan_query, CostBasedOracle, CostModel};
use sqo_query::Query;
use sqo_workload::{paper_scenario, DbSize};

fn bench_table42(c: &mut Criterion) {
    let mut group = c.benchmark_group("table42_execution");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let model = CostModel::default();
    for size in [DbSize::Db1, DbSize::Db4] {
        let scenario = paper_scenario(size, 42);
        let oracle = CostBasedOracle::new(&scenario.db);
        let optimizer = SemanticOptimizer::new(&scenario.store);
        // The full 40-query workload, original vs optimized.
        let originals: Vec<Query> = scenario.queries.clone();
        let optimized: Vec<(Query, bool)> = originals
            .iter()
            .map(|q| {
                let out = optimizer.optimize(q, &oracle).expect("optimize");
                (out.query, out.report.provably_empty)
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("original", size.name()), &originals, |b, qs| {
            b.iter(|| {
                for q in qs {
                    let plan = plan_query(&scenario.db, q, &model).expect("plan");
                    std::hint::black_box(execute(&scenario.db, &plan).expect("execute"));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("optimized", size.name()), &optimized, |b, qs| {
            b.iter(|| {
                for (q, empty) in qs {
                    if *empty {
                        continue; // answered without touching the database
                    }
                    let plan = plan_query(&scenario.db, q, &model).expect("plan");
                    std::hint::black_box(execute(&scenario.db, &plan).expect("execute"));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table42);
criterion_main!(benches);
