//! Microbenchmarks of the cold-path hot loops this repo optimizes: the
//! transitive-closure fixpoint, transformation-table construction (fresh
//! vs. recycled buffers), indexed constraint retrieval, and plan execution
//! (fresh vs. recycled traversal buffers).
//!
//! Quick mode: set `SQO_BENCH_SMOKE=1` (the CI bench-smoke job does) to run
//! every benchmark at minimal sample counts — same code paths, a fraction
//! of the wall clock.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sqo_constraints::{transitive_closure, ClosureOptions, RetrievalScratch};
use sqo_core::{
    run_transformations_with, MatchPolicy, OptimizerConfig, TableBuffers, TransformScratch,
    TransformationTable,
};
use sqo_exec::{execute, execute_with, plan_query, CostModel, ExecScratch};
use sqo_workload::{
    bench_schema::bench_catalog, generate_constraints, paper_scenario, ConstraintGenConfig, DbSize,
};

fn smoke() -> bool {
    std::env::var_os("SQO_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn tune<'c>(c: &'c mut Criterion, name: &str) -> criterion::BenchmarkGroup<'c> {
    let mut group = c.benchmark_group(name);
    if smoke() {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(20))
            .measurement_time(Duration::from_millis(100));
    } else {
        group
            .sample_size(60)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1));
    }
    group
}

/// The closure fixpoint over a chain-heavy generated constraint population —
/// the workload where attribute-keyed resolution probing pays off.
fn bench_closure(c: &mut Criterion) {
    let catalog = Arc::new(bench_catalog().expect("schema"));
    let per_class = if smoke() { 3 } else { 6 };
    let generated = generate_constraints(
        &catalog,
        ConstraintGenConfig { seed: 42, per_class, chain_fraction: 0.6, ..Default::default() },
    )
    .expect("constraints");
    let mut group = tune(c, "coldpath_closure");
    group.bench_function("transitive_closure", |b| {
        b.iter_batched(
            || generated.constraints.clone(),
            |cs| {
                std::hint::black_box(
                    transitive_closure(&catalog, cs, ClosureOptions::default()).expect("closure"),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Transformation-table construction and the fixpoint loop on a DB1
/// scenario query, fresh allocations vs. recycled scratch.
fn bench_table(c: &mut Criterion) {
    let scenario = paper_scenario(DbSize::Db1, 42);
    let catalog = Arc::clone(&scenario.catalog);
    let store = &scenario.store;
    let query = scenario.queries[0].clone();
    let mut retrieval = RetrievalScratch::new();
    let mut relevant = Vec::new();
    store.relevant_into(&query, &mut retrieval, &mut relevant);
    let config = OptimizerConfig::paper();

    let mut group = tune(c, "coldpath_table");
    group.bench_function("retrieval_indexed", |b| {
        b.iter(|| {
            let mut out = std::mem::take(&mut relevant);
            store.relevant_into(&query, &mut retrieval, &mut out);
            relevant = out;
            std::hint::black_box(relevant.len())
        })
    });
    group.bench_function("build_fresh", |b| {
        b.iter(|| {
            std::hint::black_box(TransformationTable::build(
                &catalog,
                store,
                &relevant,
                &query,
                MatchPolicy::Implication,
            ))
        })
    });
    group.bench_function("build_recycled", |b| {
        let mut buf = TableBuffers::default();
        b.iter(|| {
            let table = TransformationTable::build_with(
                &catalog,
                store,
                &relevant,
                &query,
                MatchPolicy::Implication,
                &mut buf,
            );
            let cols = table.column_count();
            table.recycle(&mut buf);
            std::hint::black_box(cols)
        })
    });
    group.bench_function("transform_recycled", |b| {
        let mut buf = TableBuffers::default();
        let mut scratch = TransformScratch::new();
        b.iter(|| {
            let mut table = TransformationTable::build_with(
                &catalog,
                store,
                &relevant,
                &query,
                MatchPolicy::Implication,
                &mut buf,
            );
            let log = run_transformations_with(&mut table, &config, &mut scratch);
            let n = log.applied.len();
            table.recycle(&mut buf);
            std::hint::black_box(n)
        })
    });
    group.finish();
}

/// Plan execution on the DB1 instance, fresh vs. recycled traversal
/// buffers.
fn bench_execute(c: &mut Criterion) {
    let scenario = paper_scenario(DbSize::Db1, 42);
    let model = CostModel::default();
    let plan = plan_query(&scenario.db, &scenario.queries[0], &model).expect("plan");
    let mut group = tune(c, "coldpath_execute");
    group.bench_function("execute_fresh", |b| {
        b.iter(|| std::hint::black_box(execute(&scenario.db, &plan).expect("execute").1))
    });
    group.bench_function("execute_recycled", |b| {
        let mut scratch = ExecScratch::new();
        b.iter(|| {
            std::hint::black_box(
                execute_with(&scenario.db, &plan, &mut scratch).expect("execute").1,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_closure, bench_table, bench_execute);
criterion_main!(benches);
