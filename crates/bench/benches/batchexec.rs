//! Microbenchmarks of the batch execution tier: interleaved K-wide batches
//! vs. K sequential executions of the same plan, at widths 1/4/8/16, for
//! both probe shapes (`AsPlanned` warm groups and `RootSet` re-keyed
//! parameterized batches). Every width's batched output is cross-checked
//! against the sequential path before the timed runs.
//!
//! Quick mode: set `SQO_BENCH_SMOKE=1` (the CI bench-smoke job does) to run
//! every benchmark at minimal sample counts — same code paths, a fraction
//! of the wall clock.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sqo_catalog::Value;
use sqo_exec::{
    execute_batch_with, execute_with, plan_query, BatchExecScratch, CostModel, ExecScratch,
    ProbeBinding,
};
use sqo_query::{CompOp, QueryBuilder, ValueSet};
use sqo_storage::Database;
use sqo_workload::{paper_scenario, DbSize};

const WIDTHS: [usize; 4] = [1, 4, 8, 16];

fn smoke() -> bool {
    std::env::var_os("SQO_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn tune<'c>(c: &'c mut Criterion, name: &str) -> criterion::BenchmarkGroup<'c> {
    let mut group = c.benchmark_group(name);
    if smoke() {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(20))
            .measurement_time(Duration::from_millis(100));
    } else {
        group
            .sample_size(60)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1));
    }
    group
}

fn check_equivalence(db: &Database, plan: &sqo_exec::PhysicalPlan, probes: &[ProbeBinding]) {
    let batched =
        execute_batch_with(db, plan, probes, &mut BatchExecScratch::new()).expect("batch");
    for (probe, (rows, counters)) in probes.iter().zip(&batched) {
        let solo = probe.apply(plan).expect("standalone plan");
        let (want, want_counters) =
            execute_with(db, &solo, &mut ExecScratch::new()).expect("sequential");
        assert_eq!(rows.rows, want.rows, "batched must match sequential");
        assert_eq!(counters, &want_counters);
    }
}

/// Warm-group shape: K `AsPlanned` probes of one DB1 scenario plan,
/// batched-interleaved vs. K back-to-back sequential executions.
fn bench_warm_groups(c: &mut Criterion) {
    let scenario = paper_scenario(DbSize::Db1, 42);
    let model = CostModel::default();
    let plan = plan_query(&scenario.db, &scenario.queries[0], &model).expect("plan");
    let mut group = tune(c, "batchexec_warm");
    for width in WIDTHS {
        let probes = vec![ProbeBinding::AsPlanned; width];
        check_equivalence(&scenario.db, &plan, &probes);
        group.bench_function(format!("batched_w{width}"), |b| {
            let mut scratch = BatchExecScratch::new();
            b.iter(|| {
                let out =
                    execute_batch_with(&scenario.db, &plan, &probes, &mut scratch).expect("batch");
                std::hint::black_box(out.len())
            })
        });
        group.bench_function(format!("sequential_w{width}"), |b| {
            let mut scratch = ExecScratch::new();
            b.iter(|| {
                let mut n = 0;
                for _ in 0..width {
                    let (rows, _) =
                        execute_with(&scenario.db, &plan, &mut scratch).expect("execute");
                    n += rows.rows.len();
                }
                std::hint::black_box(n)
            })
        });
    }
    group.finish();
}

/// Parameterized-batch shape: one index-rooted plan skeleton, K distinct
/// `RootSet` keys per batch, vs. K sequential re-keyed plans.
fn bench_rekeyed(c: &mut Criterion) {
    // A 2 000-supplier figure-2.1 instance: large enough that the planner
    // roots the probe query at the supplier-name hash index.
    let catalog = Arc::new(sqo_catalog::example::figure21().expect("schema"));
    let mut b = Database::builder(Arc::clone(&catalog));
    let supplier = catalog.class_id("supplier").expect("class");
    for i in 0..2_000 {
        b.insert(supplier, vec![Value::str(format!("s{i}")), Value::str("x")]).expect("insert");
    }
    let db = b
        .finalize(sqo_storage::IntegrityOptions {
            enforce_total_participation: false,
            enforce_multiplicity: true,
        })
        .expect("finalize");
    let query = QueryBuilder::new(&catalog)
        .select("supplier.address")
        .filter("supplier.name", CompOp::Eq, "s1")
        .build()
        .expect("probe query");
    let model = CostModel::default();
    let plan = plan_query(&db, &query, &model).expect("plan");
    let mut group = tune(c, "batchexec_rekeyed");
    for width in WIDTHS {
        let probes: Vec<ProbeBinding> = (0..width)
            .map(|i| ProbeBinding::RootSet(ValueSet::point(Value::str(format!("s{}", i * 97)))))
            .collect();
        check_equivalence(&db, &plan, &probes);
        group.bench_function(format!("batched_w{width}"), |b| {
            let mut scratch = BatchExecScratch::new();
            b.iter(|| {
                let out = execute_batch_with(&db, &plan, &probes, &mut scratch).expect("batch");
                std::hint::black_box(out.len())
            })
        });
        group.bench_function(format!("sequential_w{width}"), |b| {
            let mut scratch = ExecScratch::new();
            let solos: Vec<_> =
                probes.iter().map(|p| p.apply(&plan).expect("standalone plan")).collect();
            b.iter(|| {
                let mut n = 0;
                for solo in &solos {
                    let (rows, _) = execute_with(&db, solo, &mut scratch).expect("execute");
                    n += rows.rows.len();
                }
                std::hint::black_box(n)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_warm_groups, bench_rekeyed);
criterion_main!(benches);
