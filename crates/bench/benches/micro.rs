//! Microbenchmarks of the algorithm's phases on the paper's own Figure 2.3
//! example: table initialization, the transformation loop, and formulation.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sqo_catalog::example::figure21;
use sqo_constraints::{
    figure22, transitive_closure, ClosureOptions, ConstraintStore, StoreOptions,
};
use sqo_core::{
    formulate, run_transformations, OptimizerConfig, StructuralOracle, TransformationTable,
};
use sqo_query::parse_query;

fn bench_phases(c: &mut Criterion) {
    let catalog = Arc::new(figure21().expect("schema"));
    let store = ConstraintStore::build(
        Arc::clone(&catalog),
        figure22(&catalog).expect("constraints"),
        StoreOptions::paper_defaults(),
    )
    .expect("store");
    let query = parse_query(
        r#"(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
            {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
            {collects, supplies} {supplier, cargo, vehicle})"#,
        &catalog,
    )
    .expect("query");
    let relevant = store.relevant_for(&query);
    let config = OptimizerConfig::paper();

    let mut group = c.benchmark_group("micro_phases");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("initialization", |b| {
        b.iter(|| {
            std::hint::black_box(TransformationTable::build(
                &catalog,
                &store,
                &relevant,
                &query,
                config.match_policy,
            ))
        })
    });
    group.bench_function("transformation", |b| {
        b.iter_batched(
            || TransformationTable::build(&catalog, &store, &relevant, &query, config.match_policy),
            |mut table| std::hint::black_box(run_transformations(&mut table, &config)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("formulation", |b| {
        let mut table =
            TransformationTable::build(&catalog, &store, &relevant, &query, config.match_policy);
        run_transformations(&mut table, &config);
        b.iter(|| {
            std::hint::black_box(formulate(&catalog, &query, &table, &config, &StructuralOracle))
        })
    });
    group.bench_function("constraint_retrieval", |b| {
        b.iter(|| std::hint::black_box(store.relevant_for(&query)))
    });
    group.bench_function("closure_figure22", |b| {
        let constraints = figure22(&catalog).expect("constraints");
        b.iter_batched(
            || constraints.clone(),
            |cs| {
                std::hint::black_box(
                    transitive_closure(&catalog, cs, ClosureOptions::default()).expect("closure"),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
