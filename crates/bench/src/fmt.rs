//! Minimal fixed-width table rendering for the experiment reports.

/// A text table with a header row.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |row: &[String], out: &mut String| {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                // Right-align numerics, left-align text.
                if cell.chars().next().map(|c| c.is_ascii_digit() || c == '-').unwrap_or(false) {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(cell);
                } else {
                    out.push_str(cell);
                    out.push_str(&" ".repeat(pad));
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "10000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("alpha"));
        assert!(lines[3].contains("10000"));
    }

    #[test]
    fn empty_table_has_header_only() {
        let t = TextTable::new(vec!["x"]);
        assert_eq!(t.render().lines().count(), 2);
    }
}
