//! `report` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```sh
//! cargo run --release -p sqo-bench --bin report             # everything
//! cargo run --release -p sqo-bench --bin report -- table42  # one experiment
//! cargo run --release -p sqo-bench --bin report -- fig41 --seed 7
//! cargo run --release -p sqo-bench --bin report -- --smoke --json out.json
//! ```

use std::env;
use std::sync::Arc;

use sqo_bench::Headline;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut smoke = false;
    let mut json_path: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--smoke" => smoke = true,
            "--json" => {
                json_path =
                    Some(it.next().cloned().unwrap_or_else(|| die("--json needs a file path")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: report [e1|table41|fig41|table42|e5|grouping|budget|closure|e9|e10|\
                     e11|e12|e13|e14|e15|all]* [--seed N] [--smoke] [--json PATH]\n\n\
                     --smoke      run every experiment at minimal repetition counts; exercises\n\
                     \x20            the full harness in well under a second so CI catches rot\n\
                     --json PATH  also write every experiment's headline numbers as JSON"
                );
                return;
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = [
            "e1", "table41", "fig41", "table42", "e5", "grouping", "budget", "closure", "e9",
            "e10", "e11", "e12", "e13", "e14", "e15",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    // Figure 4.1's timing repetitions dominate the run; the smoke path
    // keeps every driver on its real code path but minimizes repetition.
    let fig41_reps = if smoke { 2 } else { 20 };
    println!(
        "sqo experiment report — Pang, Lu & Ooi, ICDE 1991 (seed {seed}{})\n\
         ================================================================\n",
        if smoke { ", smoke" } else { "" }
    );
    let mut headlines: Vec<Headline> = Vec::new();
    for exp in &selected {
        match exp.as_str() {
            "e1" => e1(),
            "table41" => {
                let (h, s) = sqo_bench::table41(seed);
                headlines.extend(h);
                println!("{s}");
            }
            "fig41" => {
                let (points, s) = sqo_bench::figure41(seed, fig41_reps);
                headlines.extend(sqo_bench::fig41_headlines(&points));
                println!("{s}");
            }
            "table42" => {
                let (rows, s) = sqo_bench::table42(seed);
                headlines.extend(sqo_bench::table42_headlines(&rows));
                println!("{s}");
            }
            "e5" => {
                let (h, s) = sqo_bench::baseline_comparison(seed);
                headlines.extend(h);
                println!("{s}");
            }
            "grouping" => {
                let (h, s) = sqo_bench::grouping(seed);
                headlines.extend(h);
                println!("{s}");
            }
            "budget" => {
                let (h, s) = sqo_bench::budget_sweep(seed);
                headlines.extend(h);
                println!("{s}");
            }
            "closure" => {
                let (h, s) = sqo_bench::closure_ablation(seed);
                headlines.extend(h);
                println!("{s}");
            }
            "e9" | "service" => {
                let (rows, s) = sqo_bench::service_throughput(seed, smoke);
                headlines.extend(sqo_bench::e9_headlines(&rows));
                println!("{s}");
            }
            "e10" | "coldpath" => {
                let (row, s) = sqo_bench::cold_path_latency(seed, smoke);
                headlines.extend(sqo_bench::e10_headlines(&row));
                println!("{s}");
            }
            "e11" | "mutable" => {
                let (rows, s) = sqo_bench::mutable_serving(seed, smoke);
                headlines.extend(sqo_bench::e11_headlines(&rows));
                println!("{s}");
            }
            "e12" | "writepath" => {
                let (h, s) = sqo_bench::write_path_scaling(seed, smoke);
                headlines.extend(h);
                println!("{s}");
            }
            "e13" | "warmstart" => {
                let (h, s) = sqo_bench::warm_start_boot(seed, smoke);
                headlines.extend(h);
                println!("{s}");
            }
            "e14" | "frontend" => {
                let (h, s) = sqo_bench::frontend_open_loop(seed, smoke);
                headlines.extend(h);
                println!("{s}");
            }
            "e15" | "batch" => {
                let (h, s) = sqo_bench::batch_execution(seed, smoke);
                headlines.extend(h);
                println!("{s}");
            }
            other => die(&format!("unknown experiment `{other}`")),
        }
    }
    if let Some(path) = json_path {
        let json = sqo_bench::render_json(seed, smoke, &headlines);
        if let Err(e) = std::fs::write(&path, json) {
            die(&format!("cannot write {path}: {e}"));
        }
        println!("headlines: wrote {} metric(s) to {path}", headlines.len());
    }
    if smoke {
        println!("smoke: {} experiment(s) completed", selected.len());
    }
}

/// E1: the Figure 2.3 / §3.5 worked example, step by step.
fn e1() {
    use sqo_catalog::example::figure21;
    use sqo_constraints::{figure22, ConstraintStore, StoreOptions};
    use sqo_core::{
        run_transformations, OptimizerConfig, SemanticOptimizer, StructuralOracle,
        TransformationTable,
    };
    use sqo_query::{parse_query, QueryExt};

    let catalog = Arc::new(figure21().expect("schema"));
    let store = ConstraintStore::build(
        Arc::clone(&catalog),
        figure22(&catalog).expect("constraints"),
        StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
    )
    .expect("store");
    let query = parse_query(
        r#"(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
            {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
            {collects, supplies} {supplier, cargo, vehicle})"#,
        &catalog,
    )
    .expect("query");
    println!("E1: the §3.5 worked example");
    println!("sample query:\n  {}\n", query.display(&catalog));
    let relevant = store.relevant_for(&query);
    let config = OptimizerConfig::paper();
    let mut table =
        TransformationTable::build(&catalog, &store, &relevant, &query, config.match_policy);
    println!("Step 1 — initialization:\n{}", table.render(&catalog, &store));
    let log = run_transformations(&mut table, &config);
    println!("Step 2 — transformations:");
    for t in &log.applied {
        println!("  [{:?}] {} -> {}", t.kind, t.predicate.display(&catalog), t.to);
    }
    println!("\nfinal table:\n{}", table.render(&catalog, &store));
    let optimizer = SemanticOptimizer::new(&store);
    let out = optimizer.optimize(&query, &StructuralOracle).expect("optimize");
    println!("Step 3 — formulated query:\n  {}\n", out.query.display(&catalog));
}

fn die(msg: &str) -> ! {
    eprintln!("report: {msg}");
    std::process::exit(2)
}
