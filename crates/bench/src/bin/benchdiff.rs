//! `benchdiff` — compare two `report --json` headline documents and fail
//! on regression. CI's bench-smoke job runs it against the committed
//! `BENCH_<n>.json` baseline so the perf trajectory is enforced, not just
//! recorded.
//!
//! ```sh
//! cargo run -p sqo-bench --bin benchdiff -- BENCH_3.json bench-headlines.json
//! ```
//!
//! Tolerances are deliberately generous — CI machines are noisy and the
//! baseline may come from different hardware:
//!
//! * **timing metrics** (`*qps*`, `*_us`, `*_ms`, `*p50*`, `*p99*`, `*speedup*`)
//!   may regress up to `--timing-factor` (default 8×) before failing;
//! * **everything else** (cost ratios, waste percentages, counts — all
//!   machine-independent) may regress up to `--ratio-slack` (default +50%
//!   relative, with a small absolute floor).
//!
//! Direction matters: `qps`/`speedup`/`improved_fraction` are
//! better-when-higher, everything else better-when-lower.
//!
//! Asymmetric set handling — the growth-friendly contract:
//!
//! * metrics present in the baseline but **removed** from the current run
//!   fail the diff (an experiment silently dropping out of `report` is
//!   itself a regression);
//! * metrics **missing from the committed baseline** (i.e. new in the
//!   current run) are *informational only*: a PR adding a new experiment
//!   must be able to pass bench-smoke *before* its baseline lands, so new
//!   metrics are listed as `NEW` with their values and never fail CI. They
//!   become enforced the moment the next `BENCH_<n>.json` is committed.

use std::process::exit;

use sqo_bench::{parse_headlines, Headline};

#[derive(Debug, Clone, Copy)]
struct Tolerances {
    timing_factor: f64,
    ratio_slack: f64,
}

fn is_timing(metric: &str) -> bool {
    ["qps", "_us", "_ms", "p50", "p99", "speedup"].iter().any(|k| metric.contains(k))
}

fn higher_is_better(metric: &str) -> bool {
    ["qps", "speedup", "improved_fraction", "hit_rate"].iter().any(|k| metric.contains(k))
}

/// `Some(reason)` if `current` regresses from `baseline` beyond tolerance.
fn regression(metric: &str, baseline: f64, current: f64, tol: Tolerances) -> Option<String> {
    if !baseline.is_finite() {
        return None; // a null baseline carries no signal to regress from
    }
    if !current.is_finite() {
        // A finite baseline degrading to null/NaN is a broken experiment,
        // not a pass — treat like a missing metric.
        return Some(format!("metric {metric}: became non-finite (baseline {baseline:.4})"));
    }
    let higher_better = higher_is_better(metric);
    if is_timing(metric) {
        let (worse, allowed) = if higher_better {
            (
                current < baseline / tol.timing_factor,
                format!("≥ {:.3}", baseline / tol.timing_factor),
            )
        } else {
            (
                current > baseline * tol.timing_factor,
                format!("≤ {:.3}", baseline * tol.timing_factor),
            )
        };
        return worse.then(|| {
            format!("timing {metric}: {current:.3} vs baseline {baseline:.3} (allowed {allowed})")
        });
    }
    // Machine-independent metric: relative slack plus a small absolute
    // floor so near-zero baselines don't trip on rounding.
    let slack = baseline.abs() * tol.ratio_slack + 0.05;
    let worse = if higher_better { current < baseline - slack } else { current > baseline + slack };
    worse.then(|| {
        format!("metric {metric}: {current:.4} vs baseline {baseline:.4} (slack ±{slack:.4})")
    })
}

fn load(path: &str) -> Vec<Headline> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("benchdiff: cannot read {path}: {e}");
        exit(2);
    });
    parse_headlines(&text).unwrap_or_else(|e| {
        eprintln!("benchdiff: cannot parse {path}: {e}");
        exit(2);
    })
}

/// Outcome of comparing a current headline document against a baseline.
#[derive(Debug, Default)]
struct Diff {
    compared: usize,
    /// Baseline metrics that regressed beyond tolerance (fail).
    regressions: Vec<String>,
    /// Baseline metrics absent from the current run (fail).
    removed: Vec<String>,
    /// Current metrics absent from the baseline (informational: `NEW`).
    new: Vec<String>,
}

impl Diff {
    fn failed(&self) -> bool {
        !self.removed.is_empty() || !self.regressions.is_empty()
    }
}

fn diff(baseline: &[Headline], current: &[Headline], tol: Tolerances) -> Diff {
    let mut out = Diff::default();
    for b in baseline {
        match current.iter().find(|c| c.experiment == b.experiment && c.metric == b.metric) {
            None => out.removed.push(format!("{}/{}", b.experiment, b.metric)),
            Some(c) => {
                out.compared += 1;
                if let Some(reason) = regression(&b.metric, b.value, c.value, tol) {
                    out.regressions.push(format!("{}/{}", b.experiment, reason));
                }
            }
        }
    }
    out.new = current
        .iter()
        .filter(|c| !baseline.iter().any(|b| b.experiment == c.experiment && b.metric == c.metric))
        .map(|c| format!("{}/{} = {:.4}", c.experiment, c.metric, c.value))
        .collect();
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tol = Tolerances { timing_factor: 8.0, ratio_slack: 0.5 };
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timing-factor" => {
                tol.timing_factor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--timing-factor needs a number"));
            }
            "--ratio-slack" => {
                tol.ratio_slack = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--ratio-slack needs a number"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: benchdiff BASELINE.json CURRENT.json \
                     [--timing-factor F] [--ratio-slack S]"
                );
                return;
            }
            p => paths.push(p.to_string()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        die("expected exactly two paths: BASELINE.json CURRENT.json");
    };
    let baseline = load(baseline_path);
    let current = load(current_path);
    let d = diff(&baseline, &current, tol);

    println!(
        "benchdiff: {} metric(s) compared, {} removed, {} new (informational), {} regression(s)",
        d.compared,
        d.removed.len(),
        d.new.len(),
        d.regressions.len()
    );
    for m in &d.new {
        println!("  NEW       {m}");
    }
    for m in &d.removed {
        println!("  REMOVED   {m}");
    }
    for r in &d.regressions {
        println!("  REGRESSED {r}");
    }
    if d.failed() {
        exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("benchdiff: {msg}");
    exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(experiment: &'static str, metric: &str, value: f64) -> Headline {
        Headline::new(experiment, metric, value)
    }

    const TOL: Tolerances = Tolerances { timing_factor: 8.0, ratio_slack: 0.5 };

    #[test]
    fn new_metrics_are_informational_not_failures() {
        // The E11 scenario: a PR adds an experiment whose metrics the
        // committed baseline does not know yet. bench-smoke must pass.
        let baseline = vec![h("e9", "warm_qps_t1", 1000.0)];
        let current = vec![
            h("e9", "warm_qps_t1", 1000.0),
            h("e11", "qps_w5_t1", 800.0),
            h("e11", "p99_us_w5_t1", 30.0),
        ];
        let d = diff(&baseline, &current, TOL);
        assert_eq!(d.compared, 1);
        assert_eq!(d.new.len(), 2);
        assert!(d.removed.is_empty() && d.regressions.is_empty());
        assert!(!d.failed(), "baseline-missing metrics must never fail CI: {d:?}");
    }

    #[test]
    fn removed_metrics_still_fail() {
        let baseline = vec![h("e9", "warm_qps_t1", 1000.0), h("e10", "optimize_plan_p50_us", 14.0)];
        let current = vec![h("e9", "warm_qps_t1", 1000.0)];
        let d = diff(&baseline, &current, TOL);
        assert_eq!(d.removed, vec!["e10/optimize_plan_p50_us".to_string()]);
        assert!(d.failed(), "a silently-dropped experiment is a regression");
    }

    #[test]
    fn regressions_fail_within_set_intersection() {
        let baseline = vec![h("e9", "warm_qps_t1", 1000.0)];
        let current = vec![h("e9", "warm_qps_t1", 10.0), h("e11", "qps_w1_t1", 1.0)];
        let d = diff(&baseline, &current, TOL);
        assert_eq!(d.regressions.len(), 1, "{d:?}");
        assert_eq!(d.new.len(), 1);
        assert!(d.failed());
    }

    #[test]
    fn timing_and_ratio_tolerances_hold() {
        // 8x timing slack: a 7x qps drop passes, a 9x drop fails.
        assert!(regression("warm_qps_t1", 800.0, 800.0 / 7.0, TOL).is_none());
        assert!(regression("warm_qps_t1", 800.0, 800.0 / 9.0, TOL).is_some());
        // Better-when-lower timing (p99).
        assert!(regression("p99_us_w5_t4", 10.0, 70.0, TOL).is_none());
        assert!(regression("p99_us_w5_t4", 10.0, 90.0, TOL).is_some());
        // Machine-independent ratio: ±50% + 0.05 floor.
        assert!(regression("plan_hit_rate_w5", 0.9, 0.5, TOL).is_none());
        assert!(regression("db1_mean_ratio", 0.8, 1.3, TOL).is_some());
        // Non-finite current for a finite baseline is a broken experiment.
        assert!(regression("db1_mean_ratio", 0.8, f64::NAN, TOL).is_some());
    }
}
