//! `benchdiff` — compare two `report --json` headline documents and fail
//! on regression. CI's bench-smoke job runs it against the committed
//! `BENCH_<n>.json` baseline so the perf trajectory is enforced, not just
//! recorded.
//!
//! ```sh
//! cargo run -p sqo-bench --bin benchdiff -- BENCH_3.json bench-headlines.json
//! ```
//!
//! Tolerances are deliberately generous — CI machines are noisy and the
//! baseline may come from different hardware:
//!
//! * **timing metrics** (`*qps*`, `*_us`, `*p50*`, `*p99*`, `*speedup*`)
//!   may regress up to `--timing-factor` (default 8×) before failing;
//! * **everything else** (cost ratios, waste percentages, counts — all
//!   machine-independent) may regress up to `--ratio-slack` (default +50%
//!   relative, with a small absolute floor).
//!
//! Direction matters: `qps`/`speedup`/`improved_fraction` are
//! better-when-higher, everything else better-when-lower. Metrics present
//! in the baseline but missing from the current run fail the diff (an
//! experiment silently dropping out of `report` is itself a regression);
//! extra metrics in the current run are reported but fine.

use std::process::exit;

use sqo_bench::{parse_headlines, Headline};

#[derive(Debug, Clone, Copy)]
struct Tolerances {
    timing_factor: f64,
    ratio_slack: f64,
}

fn is_timing(metric: &str) -> bool {
    ["qps", "_us", "p50", "p99", "speedup"].iter().any(|k| metric.contains(k))
}

fn higher_is_better(metric: &str) -> bool {
    ["qps", "speedup", "improved_fraction"].iter().any(|k| metric.contains(k))
}

/// `Some(reason)` if `current` regresses from `baseline` beyond tolerance.
fn regression(metric: &str, baseline: f64, current: f64, tol: Tolerances) -> Option<String> {
    if !baseline.is_finite() {
        return None; // a null baseline carries no signal to regress from
    }
    if !current.is_finite() {
        // A finite baseline degrading to null/NaN is a broken experiment,
        // not a pass — treat like a missing metric.
        return Some(format!("metric {metric}: became non-finite (baseline {baseline:.4})"));
    }
    let higher_better = higher_is_better(metric);
    if is_timing(metric) {
        let (worse, allowed) = if higher_better {
            (
                current < baseline / tol.timing_factor,
                format!("≥ {:.3}", baseline / tol.timing_factor),
            )
        } else {
            (
                current > baseline * tol.timing_factor,
                format!("≤ {:.3}", baseline * tol.timing_factor),
            )
        };
        return worse.then(|| {
            format!("timing {metric}: {current:.3} vs baseline {baseline:.3} (allowed {allowed})")
        });
    }
    // Machine-independent metric: relative slack plus a small absolute
    // floor so near-zero baselines don't trip on rounding.
    let slack = baseline.abs() * tol.ratio_slack + 0.05;
    let worse = if higher_better { current < baseline - slack } else { current > baseline + slack };
    worse.then(|| {
        format!("metric {metric}: {current:.4} vs baseline {baseline:.4} (slack ±{slack:.4})")
    })
}

fn load(path: &str) -> Vec<Headline> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("benchdiff: cannot read {path}: {e}");
        exit(2);
    });
    parse_headlines(&text).unwrap_or_else(|e| {
        eprintln!("benchdiff: cannot parse {path}: {e}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tol = Tolerances { timing_factor: 8.0, ratio_slack: 0.5 };
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timing-factor" => {
                tol.timing_factor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--timing-factor needs a number"));
            }
            "--ratio-slack" => {
                tol.ratio_slack = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--ratio-slack needs a number"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: benchdiff BASELINE.json CURRENT.json \
                     [--timing-factor F] [--ratio-slack S]"
                );
                return;
            }
            p => paths.push(p.to_string()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        die("expected exactly two paths: BASELINE.json CURRENT.json");
    };
    let baseline = load(baseline_path);
    let current = load(current_path);

    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    let mut compared = 0usize;
    for b in &baseline {
        match current.iter().find(|c| c.experiment == b.experiment && c.metric == b.metric) {
            None => missing.push(format!("{}/{}", b.experiment, b.metric)),
            Some(c) => {
                compared += 1;
                if let Some(reason) = regression(&b.metric, b.value, c.value, tol) {
                    regressions.push(format!("{}/{}", b.experiment, reason));
                }
            }
        }
    }
    let extra = current
        .iter()
        .filter(|c| !baseline.iter().any(|b| b.experiment == c.experiment && b.metric == c.metric))
        .count();

    println!(
        "benchdiff: {compared} metric(s) compared, {} missing, {extra} new, {} regression(s)",
        missing.len(),
        regressions.len()
    );
    for m in &missing {
        println!("  MISSING   {m}");
    }
    for r in &regressions {
        println!("  REGRESSED {r}");
    }
    if !missing.is_empty() || !regressions.is_empty() {
        exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("benchdiff: {msg}");
    exit(2)
}
