//! # sqo-bench
//!
//! Experiment drivers regenerating every table and figure of the paper's
//! evaluation (§4), plus the DESIGN.md ablations:
//!
//! | id | artifact | driver |
//! |----|----------|--------|
//! | E1 | Fig 2.3 / §3.5 worked example | `examples/logistics.rs` + `report --exp e1` |
//! | E2 | Table 4.1 (database sizes) | [`experiments::table41`] |
//! | E3 | Figure 4.1 (transformation time) | [`experiments::figure41`] |
//! | E4 | Table 4.2 (cost-ratio distribution) | [`experiments::table42`] |
//! | E5 | straight-forward baseline comparison | [`experiments::baseline_comparison`] |
//! | E6 | grouping policies | [`experiments::grouping`] |
//! | E7 | priority-queue budget | [`experiments::budget_sweep`] |
//! | E8 | closure materialization | [`experiments::closure_ablation`] |
//! | E9 | serving-layer throughput (plan cache) | [`experiments::service_throughput`] |
//! | E10 | cold-path optimize+plan latency (p50/p99) | [`experiments::cold_path_latency`] |
//! | E11 | mutable-data serving (mixed read/write) | [`experiments::mutable_serving`] |
//! | E12 | write-batch latency (O(touched) claim) | [`experiments::write_path_scaling`] |
//! | E13 | warm start (snapshot load vs cold boot) | [`experiments::warm_start_boot`] |
//! | E14 | open-loop frontend (dedup, admission, shedding) | [`experiments::frontend_open_loop`] |
//! | E15 | batched execution (gather windows, batched costing) | [`experiments::batch_execution`] |
//!
//! The `report` binary prints any subset (and emits machine-readable
//! headline numbers with `--json <path>`); the Criterion benches under
//! `benches/` measure the same code paths with statistical rigor. The
//! `benchdiff` binary compares two `--json` documents and fails on
//! regression — CI runs it against the committed `BENCH_<n>.json`
//! baseline.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod fmt;
pub mod json;

pub use experiments::{
    baseline_comparison, batch_execution, budget_sweep, calibrate_units_per_second,
    closure_ablation, cold_path_latency, e10_headlines, e11_headlines, e9_headlines,
    fig41_headlines, figure41, frontend_open_loop, grouping, mutable_serving, service_throughput,
    table41, table42, table42_headlines, warm_start_boot, write_path_scaling, E10Row, E11Row,
    E9Row, Fig41Point, Table42Row,
};
pub use json::{parse_headlines, render_json, Headline};
