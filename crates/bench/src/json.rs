//! Machine-readable experiment headlines.
//!
//! `report --json <path>` writes one small JSON document per run so the
//! perf trajectory (`BENCH_*.json`) can be tracked across commits without
//! scraping the human-oriented text tables. The emitter is hand-rolled —
//! the workspace has no JSON dependency, and the payload is just grouped
//! `metric: number` pairs.

/// One headline number of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Headline {
    /// Experiment id (`"table42"`, `"e9"`, …).
    pub experiment: &'static str,
    /// Metric name within the experiment (`"db1_mean_ratio"`, …).
    pub metric: String,
    pub value: f64,
}

impl Headline {
    pub fn new(experiment: &'static str, metric: impl Into<String>, value: f64) -> Self {
        Self { experiment, metric: metric.into(), value }
    }
}

/// Renders the run's headlines as a JSON object:
///
/// ```json
/// { "seed": 42, "smoke": false,
///   "experiments": { "table41": { "avg_class_cardinality_db1": 52.0 } } }
/// ```
///
/// Experiments and metrics keep their insertion order; non-finite values
/// become `null` (JSON has no NaN/inf).
pub fn render_json(seed: u64, smoke: bool, headlines: &[Headline]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"seed\": {seed},\n  \"smoke\": {smoke},\n"));
    out.push_str("  \"experiments\": {");
    let mut experiments: Vec<&'static str> = Vec::new();
    for h in headlines {
        if !experiments.contains(&h.experiment) {
            experiments.push(h.experiment);
        }
    }
    for (ei, exp) in experiments.iter().enumerate() {
        if ei > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {{", escape(exp)));
        let metrics: Vec<&Headline> = headlines.iter().filter(|h| h.experiment == *exp).collect();
        for (mi, h) in metrics.iter().enumerate() {
            if mi > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n      {}: {}", escape(&h.metric), number(h.value)));
        }
        out.push_str("\n    }");
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Parses a headline document produced by [`render_json`] back into
/// [`Headline`]s (experiment names are leaked to `'static` — the parser
/// serves the one-shot `benchdiff` binary, not a long-running process).
///
/// The grammar accepted is exactly the emitter's output shape: a top-level
/// object with an `"experiments"` object of objects of numbers. Returns a
/// readable error for anything else.
pub fn parse_headlines(text: &str) -> Result<Vec<Headline>, String> {
    let experiments_key = "\"experiments\"";
    let start =
        text.find(experiments_key).ok_or_else(|| "no \"experiments\" object found".to_string())?;
    let rest = &text[start + experiments_key.len()..];
    let brace = rest.find('{').ok_or_else(|| "\"experiments\" is not an object".to_string())?;
    let mut out = Vec::new();
    let mut chars = rest[brace + 1..].char_indices().peekable();
    let body = &rest[brace + 1..];
    let mut current_exp: Option<&'static str> = None;
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                let key_start = i + 1;
                let mut key_end = None;
                for (j, cj) in chars.by_ref() {
                    if cj == '"' {
                        key_end = Some(j);
                        break;
                    }
                }
                let key_end = key_end.ok_or_else(|| "unterminated string".to_string())?;
                let key = &body[key_start..key_end];
                // What follows decides whether this key names an experiment
                // (`: {`) or a metric (`: <number>`).
                let mut after = String::new();
                for (_, cj) in chars.by_ref() {
                    if cj == ':' {
                        continue;
                    }
                    if cj.is_whitespace() {
                        continue;
                    }
                    after.push(cj);
                    break;
                }
                match after.chars().next() {
                    Some('{') => current_exp = Some(Box::leak(key.to_string().into_boxed_str())),
                    Some(first) => {
                        let exp = current_exp
                            .ok_or_else(|| format!("metric {key:?} outside an experiment"))?;
                        let mut num = String::new();
                        num.push(first);
                        while let Some(&(_, cj)) = chars.peek() {
                            if cj == ',' || cj == '}' || cj.is_whitespace() {
                                break;
                            }
                            num.push(cj);
                            chars.next();
                        }
                        let value = if num == "null" {
                            f64::NAN
                        } else {
                            num.parse::<f64>()
                                .map_err(|e| format!("bad number {num:?} for {key:?}: {e}"))?
                        };
                        out.push(Headline::new(exp, key, value));
                    }
                    None => return Err(format!("truncated document after key {key:?}")),
                }
            }
            '}' if current_exp.is_some() => current_exp = None,
            '}' => break, // end of the experiments object
            _ => {}
        }
    }
    Ok(out)
}

fn number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    // Round-trippable but compact: integers stay integral.
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v}");
        debug_assert!(s.parse::<f64>().is_ok());
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_grouped_and_ordered() {
        let hs = vec![
            Headline::new("e9", "speedup_t1", 7.25),
            Headline::new("table41", "avg_class_cardinality_db1", 52.0),
            Headline::new("e9", "warm_qps_t8", 120000.0),
        ];
        let json = render_json(42, true, &hs);
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains("\"smoke\": true"));
        let e9 = json.find("\"e9\"").unwrap();
        let t41 = json.find("\"table41\"").unwrap();
        assert!(e9 < t41, "insertion order preserved:\n{json}");
        assert!(json.contains("\"speedup_t1\": 7.25"));
        assert!(json.contains("\"warm_qps_t8\": 120000"));
    }

    #[test]
    fn non_finite_becomes_null_and_strings_escape() {
        let hs = vec![Headline::new("x", "a\"b", f64::NAN)];
        let json = render_json(0, false, &hs);
        assert!(json.contains("\"a\\\"b\": null"));
    }

    #[test]
    fn numbers_round_trip() {
        assert_eq!(number(52.0), "52");
        assert_eq!(number(0.125), "0.125");
        assert_eq!(number(f64::INFINITY), "null");
        assert!(number(1.0e18).parse::<f64>().is_ok());
    }

    #[test]
    fn parse_inverts_render() {
        let hs = vec![
            Headline::new("e9", "speedup_t1", 7.25),
            Headline::new("e9", "warm_qps_t8", 120000.0),
            Headline::new("table41", "avg_class_cardinality_db1", 52.0),
            Headline::new("e10", "optimize_plan_p50_us", 12.875),
        ];
        let parsed = parse_headlines(&render_json(42, false, &hs)).unwrap();
        assert_eq!(parsed.len(), hs.len());
        for (p, h) in parsed.iter().zip(&hs) {
            assert_eq!(p.experiment, h.experiment);
            assert_eq!(p.metric, h.metric);
            assert!((p.value - h.value).abs() < 1e-12, "{p:?} vs {h:?}");
        }
    }

    #[test]
    fn parse_handles_null_and_rejects_garbage() {
        let hs = vec![Headline::new("x", "nan_metric", f64::NAN)];
        let parsed = parse_headlines(&render_json(0, true, &hs)).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(parsed[0].value.is_nan());
        assert!(parse_headlines("not json at all").is_err());
        assert!(parse_headlines("{\"experiments\": {\"e\": {\"m\": abc}}}").is_err());
    }
}
