//! Experiment drivers: one function per table/figure of the paper plus the
//! DESIGN.md ablations (E5–E8). Each returns structured data *and* renders a
//! report section, so both the `report` binary and the Criterion benches can
//! reuse them.

use std::time::{Duration, Instant};

use sqo_baseline::{ApplicationOrder, StraightforwardOptimizer};
use sqo_constraints::{AssignmentPolicy, ConstraintStore, StoreOptions};
use sqo_core::{OptimizerConfig, OptimizerScratch, SemanticOptimizer, StructuralOracle};
use sqo_exec::{execute, plan_query, CostBasedOracle, CostModel};
use sqo_query::Query;
use sqo_service::{QueryService, ServiceConfig};
use sqo_workload::{
    bench_schema::bench_catalog, generate_constraints, generate_database, paper_query_set,
    paper_scenario, service_workload, ConstraintGenConfig, DbSize, PaperScenario, QueryGenConfig,
    ServiceWorkloadConfig,
};
use std::sync::Arc;

use crate::fmt::TextTable;
use crate::json::Headline;

/// Measured work units per second of wall time, used to fold transformation
/// time into Table 4.2's cost ratios the way the paper folds its
/// transformation seconds into DBMS cost.
pub fn calibrate_units_per_second(scenario: &PaperScenario) -> f64 {
    let model = CostModel::default();
    let query = &scenario.queries[0];
    let plan = plan_query(&scenario.db, query, &model).expect("plan");
    // Warm up, then measure a batch.
    let _ = execute(&scenario.db, &plan).expect("execute");
    let mut units = 0.0;
    let start = Instant::now();
    let reps = 50;
    for _ in 0..reps {
        let (_, counters) = execute(&scenario.db, &plan).expect("execute");
        units += model.measured(&counters);
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    units / secs
}

// ---------------------------------------------------------------------------
// E2 — Table 4.1: the four database instances.
// ---------------------------------------------------------------------------

pub fn table41(seed: u64) -> (Vec<Headline>, String) {
    let mut t = TextTable::new(vec!["", "DB1", "DB2", "DB3", "DB4"]);
    let scenarios: Vec<PaperScenario> =
        DbSize::ALL.iter().map(|&s| paper_scenario(s, seed)).collect();
    t.row(vec!["# object class".to_string(), "5".into(), "5".into(), "5".into(), "5".into()]);
    let card: Vec<u64> = scenarios
        .iter()
        .map(|s| {
            let cargo = s.catalog.class_id("cargo").expect("cargo");
            s.db.cardinality(cargo) as u64
        })
        .collect();
    t.row(vec![
        "avg. class cardinality".to_string(),
        card[0].to_string(),
        card[1].to_string(),
        card[2].to_string(),
        card[3].to_string(),
    ]);
    t.row(vec!["# relationships".to_string(), "6".into(), "6".into(), "6".into(), "6".into()]);
    let rels: Vec<u64> = scenarios
        .iter()
        .map(|s| {
            let total: u64 =
                s.catalog.relationships().map(|(rid, _)| s.db.links(rid).link_count()).sum();
            total / s.catalog.relationship_count() as u64
        })
        .collect();
    t.row(vec![
        "avg. relationship cardinality".to_string(),
        rels[0].to_string(),
        rels[1].to_string(),
        rels[2].to_string(),
        rels[3].to_string(),
    ]);
    let mut headlines = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        let db = s.db_size.name().to_lowercase();
        headlines.push(Headline::new("table41", format!("class_cardinality_{db}"), card[i] as f64));
        headlines.push(Headline::new("table41", format!("rel_cardinality_{db}"), rels[i] as f64));
    }
    (
        headlines,
        format!("Table 4.1: Database Sizes (measured from generated instances)\n{}", t.render()),
    )
}

/// Headline numbers of Figure 4.1: per-series transformation time at the
/// largest query size (the paper's rightmost points).
pub fn fig41_headlines(points: &[Fig41Point]) -> Vec<Headline> {
    let mut out = Vec::new();
    for p in points {
        out.push(Headline::new(
            "fig41",
            format!("transform_us_c{}_q{}", p.constraints_per_class, p.query_classes),
            p.avg_transform.as_nanos() as f64 / 1000.0,
        ));
    }
    out
}

/// Headline numbers of Table 4.2: mean cost ratio and improved fraction
/// per database instance.
pub fn table42_headlines(rows: &[Table42Row]) -> Vec<Headline> {
    let mut out = Vec::new();
    for row in rows {
        let db = row.db.name().to_lowercase();
        let mean = row.ratios.iter().sum::<f64>() / row.ratios.len().max(1) as f64;
        let improved = row.ratios.iter().filter(|&&r| r < 0.999).count() as f64
            / row.ratios.len().max(1) as f64;
        out.push(Headline::new("table42", format!("{db}_mean_ratio"), mean));
        out.push(Headline::new("table42", format!("{db}_improved_fraction"), improved));
    }
    out
}

// ---------------------------------------------------------------------------
// E3 — Figure 4.1: query transformation time vs #classes, by #constraints.
// ---------------------------------------------------------------------------

/// One measurement point of Figure 4.1.
#[derive(Debug, Clone, Copy)]
pub struct Fig41Point {
    pub constraints_per_class: usize,
    pub query_classes: usize,
    pub avg_relevant: f64,
    pub avg_transform: Duration,
}

pub fn figure41(seed: u64, reps: usize) -> (Vec<Fig41Point>, String) {
    let catalog = Arc::new(bench_catalog().expect("schema"));
    let mut points = Vec::new();
    for per_class in [1usize, 5, 9] {
        let generated = generate_constraints(
            &catalog,
            ConstraintGenConfig { per_class, seed, ..Default::default() },
        )
        .expect("constraints");
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            generated.constraints,
            StoreOptions::paper_defaults(),
        )
        .expect("store");
        let optimizer = SemanticOptimizer::new(&store);
        let queries = paper_query_set(
            &catalog,
            &generated.forcings,
            40,
            &QueryGenConfig { seed: seed.wrapping_add(1), ..Default::default() },
        );
        for classes in 2..=5usize {
            let subset: Vec<&Query> =
                queries.iter().filter(|q| q.classes.len() == classes).collect();
            if subset.is_empty() {
                continue;
            }
            let mut total = Duration::ZERO;
            let mut relevant = 0usize;
            let mut n = 0usize;
            for q in &subset {
                for _ in 0..reps {
                    let out = optimizer.optimize(q, &StructuralOracle).expect("optimize");
                    total += out.report.timings.excluding_retrieval();
                    relevant += out.report.relevant_constraints;
                    n += 1;
                }
            }
            points.push(Fig41Point {
                constraints_per_class: per_class,
                query_classes: classes,
                avg_relevant: relevant as f64 / n as f64,
                avg_transform: total / n as u32,
            });
        }
    }
    let mut t = TextTable::new(vec![
        "constraints/class",
        "classes in query",
        "avg relevant constraints",
        "avg transformation time (µs)",
    ]);
    for p in &points {
        t.row(vec![
            p.constraints_per_class.to_string(),
            p.query_classes.to_string(),
            format!("{:.1}", p.avg_relevant),
            format!("{:.1}", p.avg_transform.as_nanos() as f64 / 1000.0),
        ]);
    }
    (
        points,
        format!(
            "Figure 4.1: Query Transformation Time \
             (series = constraint population; paper's y-axis was seconds on a SUN-3/160)\n{}",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E4 — Table 4.2: optimized/original cost-ratio distribution per instance.
// ---------------------------------------------------------------------------

/// Ratio distribution for one database instance.
#[derive(Debug, Clone)]
pub struct Table42Row {
    pub db: DbSize,
    pub ratios: Vec<f64>,
    /// Histogram over 10%-wide buckets `[0,10) … [110,∞)` as percentages.
    pub buckets: Vec<f64>,
}

/// Transformation cost in the same simulated work units as execution.
///
/// The paper's transformation cost (0.1–0.4 s against 1–2 s DB1 queries on a
/// SUN-3/160) was dominated by constraint-group I/O plus table work; folding
/// our *2026 wall-clock* through a calibration constant would misstate those
/// 1991 proportions by orders of magnitude, so the harness charges the
/// deterministic equivalents instead: half a page per constraint-group fetch
/// (one group per query class, buffer-softened), a dash of CPU per relevant
/// constraint (the table row) and per applied transformation. Raw wall-clock
/// transformation time is what Figure 4.1 reports separately.
pub fn transformation_work_units(report: &sqo_core::OptimizationReport) -> f64 {
    // Calibrated against the paper's own proportions: on DB1 the regressed
    // queries lost *about 10%* to optimization overhead (their 0.1–0.4 s
    // against 1–2 s queries). A typical 4-class query here costs ~4 work
    // units, so the charge lands around 0.3 units.
    report.query_classes as f64 * 0.05
        + report.relevant_constraints as f64 * 0.015
        + report.transformations.applied.len() as f64 * 0.01
}

pub fn table42(seed: u64) -> (Vec<Table42Row>, String) {
    let model = CostModel::default();
    let mut rows = Vec::new();
    for &size in &DbSize::ALL {
        let scenario = paper_scenario(size, seed);
        let oracle = CostBasedOracle::new(&scenario.db);
        let optimizer = SemanticOptimizer::new(&scenario.store);
        let mut ratios = Vec::with_capacity(scenario.queries.len());
        for query in &scenario.queries {
            // Paper: "cost of optimized query (including query
            // transformation time)".
            let out = optimizer.optimize(query, &oracle).expect("optimize");
            let transform_units = transformation_work_units(&out.report);
            let (_, c_orig) =
                execute(&scenario.db, &plan_query(&scenario.db, query, &model).expect("plan"))
                    .expect("execute");
            // A provably-empty query is answered without touching the
            // database — only the transformation cost remains.
            let opt_exec = if out.report.provably_empty {
                0.0
            } else {
                let (_, c_opt) = execute(
                    &scenario.db,
                    &plan_query(&scenario.db, &out.query, &model).expect("plan"),
                )
                .expect("execute");
                model.measured(&c_opt)
            };
            let orig = model.measured(&c_orig).max(1e-9);
            ratios.push((opt_exec + transform_units) / orig);
        }
        let mut buckets = vec![0.0f64; 12];
        for &r in &ratios {
            let b = ((r * 10.0).floor() as usize).min(11);
            buckets[b] += 1.0;
        }
        for b in buckets.iter_mut() {
            *b = *b * 100.0 / ratios.len() as f64;
        }
        rows.push(Table42Row { db: size, ratios, buckets });
    }
    let mut t = TextTable::new(vec![
        "", "0%", "10%", "20%", "30%", "40%", "50%", "60%", "70%", "80%", "90%", "100%", ">110%",
    ]);
    for row in &rows {
        let mut cells = vec![row.db.name().to_string()];
        cells.extend(row.buckets.iter().map(|b| {
            if *b == 0.0 {
                "--".to_string()
            } else {
                format!("{b:.0}")
            }
        }));
        t.row(cells);
    }
    let mut summary = String::new();
    for row in &rows {
        let improved = row.ratios.iter().filter(|&&r| r < 0.999).count();
        let regressed = row.ratios.iter().filter(|&&r| r > 1.001).count();
        summary.push_str(&format!(
            "  {}: {}% faster after optimization, {}% regressed (worst ratio {:.2})\n",
            row.db.name(),
            improved * 100 / row.ratios.len(),
            regressed * 100 / row.ratios.len(),
            row.ratios.iter().cloned().fold(0.0, f64::max),
        ));
    }
    (
        rows,
        format!(
            "Table 4.2: Ratio of Optimized Cost (incl. transformation) to Original Cost\n\
             (cell = % of the 40 queries whose ratio falls in the bucket)\n{}\n{summary}",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E5 — baseline comparison (order dependence + dominance).
// ---------------------------------------------------------------------------

pub fn baseline_comparison(seed: u64) -> (Vec<Headline>, String) {
    let scenario = paper_scenario(DbSize::Db3, seed);
    let model = CostModel::default();
    let oracle = CostBasedOracle::new(&scenario.db);
    let optimizer = SemanticOptimizer::new(&scenario.store);
    let orders = [
        ApplicationOrder::AsRetrieved,
        ApplicationOrder::IntroductionsFirst,
        ApplicationOrder::EliminationsFirst,
        ApplicationOrder::Seeded(17),
    ];
    let mut core_total = 0.0;
    let mut sf_total = vec![0.0f64; orders.len()];
    let mut divergent = 0usize;
    for query in &scenario.queries {
        let core_q = optimizer.optimize(query, &oracle).expect("optimize").query;
        let (_, c) =
            execute(&scenario.db, &plan_query(&scenario.db, &core_q, &model).expect("plan"))
                .expect("execute");
        core_total += model.measured(&c);
        let mut outcomes = Vec::new();
        for (oi, order) in orders.iter().enumerate() {
            let sf = StraightforwardOptimizer::new(&scenario.store, *order);
            let q = sf.optimize(query, &oracle).query;
            let (_, c) =
                execute(&scenario.db, &plan_query(&scenario.db, &q, &model).expect("plan"))
                    .expect("execute");
            sf_total[oi] += model.measured(&c);
            outcomes.push(q.normalized());
        }
        if outcomes.windows(2).any(|w| w[0] != w[1]) {
            divergent += 1;
        }
    }
    let mut t = TextTable::new(vec!["optimizer", "total measured cost (40 queries)"]);
    t.row(vec!["tentative (this paper)".to_string(), format!("{core_total:.1}")]);
    for (oi, order) in orders.iter().enumerate() {
        t.row(vec![format!("straight-forward {order:?}"), format!("{:.1}", sf_total[oi])]);
    }
    let best_sf = sf_total.iter().cloned().fold(f64::INFINITY, f64::min);
    let headlines = vec![
        Headline::new("e5", "tentative_total_cost", core_total),
        Headline::new("e5", "straightforward_best_total_cost", best_sf),
        Headline::new("e5", "order_dependent_queries", divergent as f64),
    ];
    (
        headlines,
        format!(
            "E5: Tentative vs straight-forward application (DB3)\n{}\n\
             order-dependent outcomes on {divergent}/40 queries\n",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E6 — grouping-scheme effectiveness by assignment policy.
// ---------------------------------------------------------------------------

pub fn grouping(seed: u64) -> (Vec<Headline>, String) {
    let catalog = Arc::new(bench_catalog().expect("schema"));
    let generated = generate_constraints(
        &catalog,
        ConstraintGenConfig { seed, per_class: 4, ..Default::default() },
    )
    .expect("constraints");
    let queries = paper_query_set(
        &catalog,
        &generated.forcings,
        40,
        &QueryGenConfig { seed: seed.wrapping_add(1), ..Default::default() },
    );
    let mut t = TextTable::new(vec!["policy", "retrieved", "relevant", "waste %", "scan baseline"]);
    let mut headlines = Vec::new();
    for policy in [
        AssignmentPolicy::Arbitrary,
        AssignmentPolicy::LeastFrequentlyAccessed,
        AssignmentPolicy::Balanced,
    ] {
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            generated.constraints.clone(),
            StoreOptions { policy, ..StoreOptions::paper_defaults() },
        )
        .expect("store");
        let mut scanned = 0usize;
        for q in &queries {
            let _ = store.relevant_for(q);
            scanned += store.len(); // what the ungrouped baseline would touch
        }
        let m = store.metrics();
        // ordering: post-run metric reads; the single-threaded driver
        // already synchronized with the store via `relevant_for` returns.
        let retrieved = m.retrieved.load(std::sync::atomic::Ordering::Relaxed);
        let relevant = m.relevant.load(std::sync::atomic::Ordering::Relaxed); // ordering: see above
        t.row(vec![
            format!("{policy:?}"),
            retrieved.to_string(),
            relevant.to_string(),
            format!("{:.1}", m.waste_ratio() * 100.0),
            scanned.to_string(),
        ]);
        headlines.push(Headline::new(
            "e6",
            format!("waste_pct_{policy:?}").to_lowercase(),
            m.waste_ratio() * 100.0,
        ));
    }
    (
        headlines,
        format!("E6: Constraint grouping (40 queries; lower waste = better)\n{}", t.render()),
    )
}

// ---------------------------------------------------------------------------
// E7 — the §4 priority-queue budget extension.
// ---------------------------------------------------------------------------

pub fn budget_sweep(seed: u64) -> (Vec<Headline>, String) {
    let scenario = paper_scenario(DbSize::Db3, seed);
    let model = CostModel::default();
    let oracle = CostBasedOracle::new(&scenario.db);
    let budgets: Vec<Option<usize>> = vec![Some(0), Some(1), Some(2), Some(4), Some(8), None];
    let mut t =
        TextTable::new(vec!["budget", "mean cost ratio vs unoptimized", "transformations applied"]);
    let mut headlines = Vec::new();
    for budget in budgets {
        let config = match budget {
            Some(b) => OptimizerConfig::budgeted(b),
            None => OptimizerConfig::paper(),
        };
        let optimizer = SemanticOptimizer::with_config(&scenario.store, config);
        let mut ratio_sum = 0.0;
        let mut applied = 0usize;
        for query in &scenario.queries {
            let out = optimizer.optimize(query, &oracle).expect("optimize");
            applied += out.report.transformations.applied.len();
            let (_, c_orig) =
                execute(&scenario.db, &plan_query(&scenario.db, query, &model).expect("plan"))
                    .expect("execute");
            let (_, c_opt) =
                execute(&scenario.db, &plan_query(&scenario.db, &out.query, &model).expect("plan"))
                    .expect("execute");
            ratio_sum += model.measured(&c_opt) / model.measured(&c_orig).max(1e-9);
        }
        let label = budget.map(|b| b.to_string()).unwrap_or_else(|| "unlimited".into());
        t.row(vec![
            label.clone(),
            format!("{:.3}", ratio_sum / scenario.queries.len() as f64),
            applied.to_string(),
        ]);
        headlines.push(Headline::new(
            "e7",
            format!("ratio_budget_{label}"),
            ratio_sum / scenario.queries.len() as f64,
        ));
    }
    (headlines, format!("E7: Priority queue under a transformation budget (DB3)\n{}", t.render()))
}

// ---------------------------------------------------------------------------
// E8 — transitive-closure materialization.
// ---------------------------------------------------------------------------

pub fn closure_ablation(seed: u64) -> (Vec<Headline>, String) {
    let catalog = Arc::new(bench_catalog().expect("schema"));
    let generated = generate_constraints(
        &catalog,
        ConstraintGenConfig { seed, chain_fraction: 0.5, ..Default::default() },
    )
    .expect("constraints");
    let db =
        generate_database(Arc::clone(&catalog), &DbSize::Db2.config(seed), &generated.forcings)
            .expect("database");
    let queries = paper_query_set(
        &catalog,
        &generated.forcings,
        40,
        &QueryGenConfig { seed: seed.wrapping_add(1), ..Default::default() },
    );
    let model = CostModel::default();
    let mut t = TextTable::new(vec![
        "closure",
        "stored constraints",
        "transformations",
        "mean cost ratio",
        "mean transform µs",
    ]);
    let mut headlines = Vec::new();
    for materialize in [false, true] {
        let t0 = Instant::now();
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            generated.constraints.clone(),
            StoreOptions { materialize_closure: materialize, ..StoreOptions::paper_defaults() },
        )
        .expect("store");
        let _build = t0.elapsed();
        let oracle = CostBasedOracle::new(&db);
        let optimizer = SemanticOptimizer::new(&store);
        let mut applied = 0usize;
        let mut ratio_sum = 0.0;
        let mut micros = 0.0;
        for query in &queries {
            let out = optimizer.optimize(query, &oracle).expect("optimize");
            applied += out.report.transformations.applied.len();
            micros += out.report.timings.total().as_secs_f64() * 1e6;
            let (_, c_orig) =
                execute(&db, &plan_query(&db, query, &model).expect("plan")).expect("execute");
            let (_, c_opt) =
                execute(&db, &plan_query(&db, &out.query, &model).expect("plan")).expect("execute");
            ratio_sum += model.measured(&c_opt) / model.measured(&c_orig).max(1e-9);
        }
        let label = if materialize { "materialized" } else { "off" };
        t.row(vec![
            label.to_string(),
            store.len().to_string(),
            applied.to_string(),
            format!("{:.3}", ratio_sum / queries.len() as f64),
            format!("{:.1}", micros / queries.len() as f64),
        ]);
        headlines.push(Headline::new(
            "e8",
            format!("ratio_{label}"),
            ratio_sum / queries.len() as f64,
        ));
        headlines.push(Headline::new(
            "e8",
            format!("transform_us_{label}"),
            micros / queries.len() as f64,
        ));
    }
    (
        headlines,
        format!(
            "E8: Transitive-closure materialization (chain-heavy constraints, DB2)\n{}",
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E9 — serving-layer throughput: cold vs. warm plan cache, 1/2/4/8 threads.
// ---------------------------------------------------------------------------

/// One thread-count measurement of the E9 throughput experiment.
#[derive(Debug, Clone, Copy)]
pub struct E9Row {
    pub threads: usize,
    pub requests: usize,
    /// Requests/s with the cache bypassed (every request re-optimizes,
    /// re-plans and re-executes).
    pub cold_qps: f64,
    /// Requests/s with a pre-warmed sharded plan/result cache.
    pub warm_qps: f64,
    /// `warm_qps / cold_qps`.
    pub speedup: f64,
    /// Cache hit rate over the measured warm batch (warm-up excluded).
    pub warm_hit_rate: f64,
}

/// E9: closed-loop throughput of [`QueryService`] on a Zipf-skewed
/// repeated-query stream (shuffled spellings), cold path vs. warm cache.
///
/// The cold service runs the full ICDE'91 pipeline per request; the warm
/// service answers from the `(fingerprint, epoch)`-keyed cache. Result
/// equality between the two paths is asserted per request at one thread.
pub fn service_throughput(seed: u64, smoke: bool) -> (Vec<E9Row>, String) {
    let scenario = paper_scenario(DbSize::Db1, seed);
    let store = Arc::new(scenario.store);
    let db = Arc::new(scenario.db);
    let workload = service_workload(
        &scenario.queries,
        &ServiceWorkloadConfig {
            seed: seed.wrapping_add(90),
            requests: if smoke { 96 } else { 1536 },
            ..Default::default()
        },
    );
    let mut rows = Vec::new();
    let mut cold_fingerprints: Vec<u64> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let cold = QueryService::with_config(
            Arc::clone(&store),
            Arc::clone(&db),
            ServiceConfig { bypass_cache: true, ..Default::default() },
        );
        let t0 = Instant::now();
        let cold_responses = cold.run_batch(&workload.requests, threads);
        let cold_secs = t0.elapsed().as_secs_f64().max(1e-9);

        let warm = QueryService::new(Arc::clone(&store), Arc::clone(&db));
        for q in &workload.distinct {
            warm.run(q).expect("warm-up");
        }
        let before = warm.stats().cache;
        let t1 = Instant::now();
        let warm_responses = warm.run_batch(&workload.requests, threads);
        let warm_secs = t1.elapsed().as_secs_f64().max(1e-9);
        let after = warm.stats().cache;
        let lookups = (after.hits + after.misses) - (before.hits + before.misses);
        let batch_hit_rate =
            if lookups == 0 { 0.0 } else { (after.hits - before.hits) as f64 / lookups as f64 };

        if threads == 1 {
            // Correctness cross-check: the cached path answers exactly like
            // the uncached one, request by request.
            cold_fingerprints = cold_responses
                .iter()
                .map(|r| r.as_ref().expect("cold request answered").results.fingerprint())
                .collect();
        }
        for (i, r) in warm_responses.iter().enumerate() {
            let fp = r.as_ref().expect("warm request answered").results.fingerprint();
            assert_eq!(fp, cold_fingerprints[i], "warm answer diverged on request {i}");
        }

        let n = workload.requests.len();
        rows.push(E9Row {
            threads,
            requests: n,
            cold_qps: n as f64 / cold_secs,
            warm_qps: n as f64 / warm_secs,
            speedup: cold_secs / warm_secs,
            warm_hit_rate: batch_hit_rate,
        });
    }
    let mut t = TextTable::new(vec![
        "threads",
        "cold qps (no cache)",
        "warm qps (cached)",
        "speedup",
        "warm hit rate",
    ]);
    for r in &rows {
        t.row(vec![
            r.threads.to_string(),
            format!("{:.0}", r.cold_qps),
            format!("{:.0}", r.warm_qps),
            format!("{:.1}x", r.speedup),
            format!("{:.1}%", r.warm_hit_rate * 100.0),
        ]);
    }
    let min_speedup = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
    (
        rows.clone(),
        format!(
            "E9: Serving-layer throughput ({} Zipf-skewed requests over {} distinct queries,\n\
             shuffled spellings; warm answers verified identical to the cold path)\n{}\n\
             minimum warm/cold speedup across thread counts: {min_speedup:.1}x\n",
            rows[0].requests,
            workload.distinct.len(),
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E10 — cold-path latency: optimize+plan wall clock, p50/p99.
// ---------------------------------------------------------------------------

/// Latency distribution of the cold path (the work a [`QueryService`] does
/// on every cache miss and after every epoch bump): semantic optimization
/// plus conventional planning, excluding execution.
#[derive(Debug, Clone, Copy)]
pub struct E10Row {
    /// Samples behind the percentiles.
    pub samples: usize,
    pub optimize_plan_p50_us: f64,
    pub optimize_plan_p99_us: f64,
    pub optimize_plan_mean_us: f64,
    /// Mean share of the optimize+plan time spent in each optimizer phase
    /// (constraint retrieval / table init / transformation / formulation),
    /// the remainder being the conventional planner.
    pub retrieval_us: f64,
    pub init_us: f64,
    pub transform_us: f64,
    pub formulate_us: f64,
    pub plan_us: f64,
}

fn percentile_us(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)].as_nanos() as f64 / 1000.0
}

/// E10: cold-path optimize+plan latency over the E9 distinct-query set.
///
/// Every sample runs the full miss pipeline — grouped-index constraint
/// retrieval, transformation-table fixpoint, formulation with the
/// cost-based oracle, then conventional planning — against the DB1
/// scenario, exactly what `QueryService` pays per cache miss.
pub fn cold_path_latency(seed: u64, smoke: bool) -> (E10Row, String) {
    let scenario = paper_scenario(DbSize::Db1, seed);
    let store = Arc::new(scenario.store);
    let db = Arc::new(scenario.db);
    let workload = service_workload(
        &scenario.queries,
        &ServiceWorkloadConfig { seed: seed.wrapping_add(90), requests: 16, ..Default::default() },
    );
    let optimizer = SemanticOptimizer::shared(Arc::clone(&store));
    let oracle = CostBasedOracle::new(&db);
    let model = CostModel::default();
    let mut scratch = OptimizerScratch::new();

    let reps = if smoke { 8 } else { 400 };
    // Warm-up: fault in per-query state once, outside the measurement.
    for q in &workload.distinct {
        let out = optimizer.optimize_with(q, &oracle, &mut scratch).expect("optimize");
        let _ = plan_query(&db, &out.query, &model);
    }
    let mut lat: Vec<Duration> = Vec::with_capacity(reps * workload.distinct.len());
    let (mut retr, mut init, mut tran, mut form, mut plan_t) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for _ in 0..reps {
        for q in &workload.distinct {
            let t0 = Instant::now();
            let out = optimizer.optimize_with(q, &oracle, &mut scratch).expect("optimize");
            let t1 = Instant::now();
            let plan_elapsed = if out.report.provably_empty {
                Duration::ZERO
            } else {
                std::hint::black_box(plan_query(&db, &out.query, &model).expect("plan"));
                t1.elapsed()
            };
            lat.push(t0.elapsed());
            let t = &out.report.timings;
            retr += t.retrieval.as_nanos() as f64 / 1000.0;
            init += t.initialization.as_nanos() as f64 / 1000.0;
            tran += t.transformation.as_nanos() as f64 / 1000.0;
            form += t.formulation.as_nanos() as f64 / 1000.0;
            plan_t += plan_elapsed.as_nanos() as f64 / 1000.0;
        }
    }
    lat.sort_unstable();
    let n = lat.len() as f64;
    let row = E10Row {
        samples: lat.len(),
        optimize_plan_p50_us: percentile_us(&lat, 0.50),
        optimize_plan_p99_us: percentile_us(&lat, 0.99),
        optimize_plan_mean_us: lat.iter().map(|d| d.as_nanos() as f64 / 1000.0).sum::<f64>() / n,
        retrieval_us: retr / n,
        init_us: init / n,
        transform_us: tran / n,
        formulate_us: form / n,
        plan_us: plan_t / n,
    };
    let mut t = TextTable::new(vec!["metric", "µs"]);
    t.row(vec!["optimize+plan p50".into(), format!("{:.2}", row.optimize_plan_p50_us)]);
    t.row(vec!["optimize+plan p99".into(), format!("{:.2}", row.optimize_plan_p99_us)]);
    t.row(vec!["optimize+plan mean".into(), format!("{:.2}", row.optimize_plan_mean_us)]);
    t.row(vec!["  constraint retrieval (mean)".into(), format!("{:.2}", row.retrieval_us)]);
    t.row(vec!["  table initialization (mean)".into(), format!("{:.2}", row.init_us)]);
    t.row(vec!["  transformation (mean)".into(), format!("{:.2}", row.transform_us)]);
    t.row(vec!["  formulation (mean)".into(), format!("{:.2}", row.formulate_us)]);
    t.row(vec!["  conventional planning (mean)".into(), format!("{:.2}", row.plan_us)]);
    (
        row,
        format!(
            "E10: Cold-path optimize+plan latency ({} samples over {} distinct DB1 queries)\n{}",
            row.samples,
            workload.distinct.len(),
            t.render()
        ),
    )
}

// ---------------------------------------------------------------------------
// E11 — mutable-data serving: throughput/p99 under mixed read/write traffic.
// ---------------------------------------------------------------------------

/// One `(write ratio, thread count)` cell of the E11 experiment.
#[derive(Debug, Clone, Copy)]
pub struct E11Row {
    /// Write percentage of the request stream (1, 5 or 20).
    pub write_pct: usize,
    pub threads: usize,
    pub requests: usize,
    /// Requests/s over the whole mixed stream (reads + writes).
    pub qps: f64,
    /// p99 per-request latency (reads and writes alike), µs.
    pub p99_us: f64,
    /// Plan-cache hit rate over the measured batch — stays high under pure
    /// data writes because plans are never invalidated by them.
    pub plan_hit_rate: f64,
    /// Committed write batches.
    pub writes: u64,
    /// Final data epoch (== writes: one epoch per batch).
    pub data_epoch: u64,
}

/// E11: warm-cache throughput and tail latency of [`QueryService`] on a
/// Zipf-skewed mixed read/write stream at 1/5/20% writes and 1–8 threads.
///
/// Writes are constraint- and integrity-preserving duplicate inserts and
/// LIFO deletes ([`sqo_workload::mixed_workload`]), applied through the
/// service's versioned write path with integrity enforcement on. Before the
/// timed cells, every write ratio runs one **cross-check pass**: a
/// single-threaded replay where, after every write, each cached answer is
/// compared request-by-request against an uncached, freshly-optimized
/// reference service sharing the same evolving database — and the plan
/// cache must keep hitting (plans survive data writes; memoized results do
/// not).
pub fn mutable_serving(seed: u64, smoke: bool) -> (Vec<E11Row>, String) {
    use std::sync::Mutex;

    use sqo_storage::{IntegrityOptions, VersionedDatabase};
    use sqo_workload::{mixed_workload, MixedApplier, MixedOp, MixedWorkloadConfig};

    let scenario = paper_scenario(DbSize::Db1, seed);
    let store = Arc::new(scenario.store);
    let db = Arc::new(scenario.db);
    let requests = if smoke { 96 } else { 1024 };
    let mut rows = Vec::new();
    for write_pct in [1usize, 5, 20] {
        let workload = mixed_workload(
            &scenario.queries,
            &scenario.catalog,
            &MixedWorkloadConfig {
                seed: seed.wrapping_add(91),
                requests,
                write_ratio: write_pct as f64 / 100.0,
                ..Default::default()
            },
        );

        // Cross-check pass (unmeasured): cached vs uncached answers must
        // agree after every write.
        {
            let handle = Arc::new(VersionedDatabase::with_integrity(
                Arc::clone(&db),
                IntegrityOptions::default(),
            ));
            let warm = QueryService::with_versioned_db(
                Arc::clone(&store),
                Arc::clone(&handle),
                ServiceConfig::default(),
            );
            let cold = QueryService::with_versioned_db(
                Arc::clone(&store),
                Arc::clone(&handle),
                ServiceConfig { bypass_cache: true, ..Default::default() },
            );
            let mut applier = MixedApplier::new(&warm.db());
            for op in &workload.ops {
                match op {
                    MixedOp::Write(kind) => {
                        let snapshot = warm.db();
                        let (class, victim, batch) = applier.resolve(&snapshot, kind);
                        let outcome = warm.write(&batch).expect("safe write rejected");
                        applier.confirm(class, victim, &outcome.receipt);
                    }
                    MixedOp::Read { query, .. } => {
                        let a = warm.run(query).expect("warm");
                        let b = cold.run(query).expect("cold reference");
                        assert_eq!(
                            a.results.fingerprint(),
                            b.results.fingerprint(),
                            "cached answer diverged from the uncached reference \
                             at {write_pct}% writes, data epoch {}",
                            a.data_epoch
                        );
                    }
                }
            }
            let stats = warm.stats();
            assert!(
                workload.writes == 0 || stats.cache.hit_rate() > 0.0,
                "plans must survive data writes: {stats:?}"
            );
        }

        // Timed cells.
        for threads in [1usize, 2, 4, 8] {
            let handle = Arc::new(VersionedDatabase::with_integrity(
                Arc::clone(&db),
                IntegrityOptions::default(),
            ));
            let service = QueryService::with_versioned_db(
                Arc::clone(&store),
                Arc::clone(&handle),
                ServiceConfig::default(),
            );
            for q in &workload.distinct {
                service.run(q).expect("warm-up");
            }
            let before = service.stats().cache;
            let applier = Mutex::new(MixedApplier::new(&service.db()));
            let next = std::sync::atomic::AtomicUsize::new(0);
            let t0 = Instant::now();
            let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let service = &service;
                        let applier = &applier;
                        let next = &next;
                        let ops = &workload.ops;
                        scope.spawn(move || {
                            let mut lat = Vec::with_capacity(ops.len() / threads + 1);
                            loop {
                                // ordering: work-stealing ticket; each index is claimed
                                // exactly once by RMW atomicity, no payload to publish.
                                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                let Some(op) = ops.get(i) else { break };
                                let t = Instant::now();
                                match op {
                                    MixedOp::Read { query, .. } => {
                                        service.run(query).expect("run");
                                    }
                                    MixedOp::Write(kind) => {
                                        let mut applier = applier.lock().expect("applier poisoned");
                                        let snapshot = service.db();
                                        let (class, victim, batch) =
                                            applier.resolve(&snapshot, kind);
                                        let outcome =
                                            service.write(&batch).expect("safe write rejected");
                                        applier.confirm(class, victim, &outcome.receipt);
                                    }
                                }
                                lat.push(t.elapsed());
                            }
                            lat
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("worker")).collect()
            });
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            latencies.sort_unstable();
            let after = service.stats();
            let lookups = (after.cache.hits + after.cache.misses) - (before.hits + before.misses);
            let hit_rate = if lookups == 0 {
                0.0
            } else {
                (after.cache.hits - before.hits) as f64 / lookups as f64
            };
            rows.push(E11Row {
                write_pct,
                threads,
                requests: workload.ops.len(),
                qps: workload.ops.len() as f64 / secs,
                p99_us: percentile_us(&latencies, 0.99),
                plan_hit_rate: hit_rate,
                writes: after.writes,
                data_epoch: after.data_epoch,
            });
        }
    }
    let mut t = TextTable::new(vec![
        "writes %",
        "threads",
        "qps (mixed)",
        "p99 (µs)",
        "plan hit rate",
        "data epochs",
    ]);
    for r in &rows {
        t.row(vec![
            r.write_pct.to_string(),
            r.threads.to_string(),
            format!("{:.0}", r.qps),
            format!("{:.1}", r.p99_us),
            format!("{:.1}%", r.plan_hit_rate * 100.0),
            r.data_epoch.to_string(),
        ]);
    }
    let min_hit = rows.iter().map(|r| r.plan_hit_rate).fold(f64::INFINITY, f64::min);
    (
        rows.clone(),
        format!(
            "E11: Mutable-data serving ({requests} Zipf-skewed requests over 16 distinct \
             queries;\nwrites = integrity-preserving duplicate inserts/deletes; every ratio \
             cross-checked\nrequest-by-request against an uncached reference after every \
             write)\n{}\nminimum plan-cache hit rate across cells: {:.1}% — plans survive \
             data writes,\nmemoized results are recomputed per data epoch\n",
            t.render(),
            min_hit * 100.0
        ),
    )
}

// ---------------------------------------------------------------------------
// E12 — write-batch latency: O(touched classes), not O(database).
// ---------------------------------------------------------------------------

/// E12: isolates the cost of [`sqo_storage::Database::with_writes`]
/// (incremental `Arc` clone-and-patch) against
/// [`sqo_storage::Database::with_writes_full`] (the from-scratch rebuild
/// oracle) along the three axes of the O(touched) claim:
///
/// 1. **batch size** (DB4, one touched class): both paths grow with the
///    batch, the incremental path from a far smaller base;
/// 2. **touched-class count** (DB4, fixed 60-write batch spread round-robin
///    over 1/2/5 classes): incremental latency grows with the classes
///    touched while the full rebuild stays flat — it always pays for all 5;
/// 3. **database size** (one-write batch, DB1→DB4): the full rebuild grows
///    with the database, the incremental path only with the touched class.
///
/// Writes are the constraint-preserving duplicate inserts of the E11
/// workload, so every measured batch is a realistic serving-path batch.
pub fn write_path_scaling(seed: u64, smoke: bool) -> (Vec<Headline>, String) {
    use sqo_storage::{DataWrite, Database};
    use sqo_workload::{copyable_rels, dup_insert, dup_safe_classes};

    /// A `size`-write batch spread round-robin over the first `classes`
    /// dup-safe classes of `db`.
    fn batch(db: &Database, classes: usize, size: usize) -> Vec<DataWrite> {
        let safe = dup_safe_classes(db.catalog());
        (0..size)
            .map(|i| {
                let class = safe[i % classes.min(safe.len())];
                dup_insert(db, class, i as u32, &copyable_rels(db.catalog(), class))
            })
            .collect()
    }

    fn median_us(db: &Database, writes: &[DataWrite], reps: usize, full: bool) -> f64 {
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            let out =
                if full { db.with_writes_full(writes, None) } else { db.with_writes(writes, None) };
            std::hint::black_box(out.expect("write batch applies"));
            samples.push(t0.elapsed());
        }
        samples.sort_unstable();
        samples[samples.len() / 2].as_nanos() as f64 / 1000.0
    }

    let reps = if smoke { 5 } else { 60 };
    let mut headlines = Vec::new();
    let mut out = String::from(
        "E12: Write-batch latency — incremental clone-and-patch vs full rebuild\n\
         (µs per batch, median; writes are E11-style duplicate inserts)\n\n",
    );

    let db4 = paper_scenario(DbSize::Db4, seed).db;
    let mut t = TextTable::new(vec!["batch size (DB4, 1 class)", "incremental µs", "full µs", "x"]);
    for size in [1usize, 4, 16, 64] {
        let writes = batch(&db4, 1, size);
        let inc = median_us(&db4, &writes, reps, false);
        let full = median_us(&db4, &writes, reps, true);
        t.row(vec![
            size.to_string(),
            format!("{inc:.1}"),
            format!("{full:.1}"),
            format!("{:.1}x", full / inc.max(1e-9)),
        ]);
        headlines.push(Headline::new("e12", format!("inc_us_b{size}"), inc));
        headlines.push(Headline::new("e12", format!("full_us_b{size}"), full));
    }
    out.push_str(&t.render());

    let mut t =
        TextTable::new(vec!["classes touched (DB4, 60 writes)", "incremental µs", "full µs", "x"]);
    for classes in [1usize, 2, 5] {
        let writes = batch(&db4, classes, 60);
        let inc = median_us(&db4, &writes, reps, false);
        let full = median_us(&db4, &writes, reps, true);
        t.row(vec![
            classes.to_string(),
            format!("{inc:.1}"),
            format!("{full:.1}"),
            format!("{:.1}x", full / inc.max(1e-9)),
        ]);
        headlines.push(Headline::new("e12", format!("inc_us_c{classes}"), inc));
        headlines.push(Headline::new("e12", format!("full_us_c{classes}"), full));
    }
    out.push('\n');
    out.push_str(&t.render());

    let mut t = TextTable::new(vec!["database (1-write batch)", "incremental µs", "full µs", "x"]);
    for size in DbSize::ALL {
        let db = paper_scenario(size, seed).db;
        let writes = batch(&db, 1, 1);
        let inc = median_us(&db, &writes, reps, false);
        let full = median_us(&db, &writes, reps, true);
        let name = size.name().to_lowercase();
        t.row(vec![
            size.name().to_string(),
            format!("{inc:.1}"),
            format!("{full:.1}"),
            format!("{:.1}x", full / inc.max(1e-9)),
        ]);
        headlines.push(Headline::new("e12", format!("inc_us_{name}"), inc));
        headlines.push(Headline::new("e12", format!("full_us_{name}"), full));
        headlines.push(Headline::new("e12", format!("speedup_{name}"), full / inc.max(1e-9)));
    }
    out.push('\n');
    out.push_str(&t.render());
    out.push_str(
        "\nreading: the full rebuild's cost tracks the database; the incremental path's\n\
         tracks the touched classes and their incident links (the O(touched) claim).\n",
    );
    (headlines, out)
}

// ---------------------------------------------------------------------------
// E13 — warm start: validated snapshot load vs cold boot.
// ---------------------------------------------------------------------------

/// E13: what the persistent `.sqos` snapshot (docs/FORMAT.md) buys at boot.
///
/// Both paths are timed to the *same serving state*: database assembled,
/// constraint store compiled, and the plan cache holding the first 16
/// distinct paper queries. The **cold** path pays for all of it — populate
/// the database (the stand-in for loading from the source of record),
/// assemble extents/links/indexes, fold statistics, materialize the
/// constraint closure, compile the store, then push the 16 queries through
/// the full optimize+plan pipeline. The **warm** path reads the snapshot
/// the cold service saved and validates it at Standard — the persisted
/// plan seeds restore the warmed cache directly, so it is ready the moment
/// the load returns. Every warm answer is asserted to be a plan-cache hit
/// and cross-checked against the cold service's answer.
///
/// Wall times are medians over repeated boots (the cold generator and the
/// warm loader both re-run from scratch each round). The Strict and Audit
/// load times quantify the validation ladder of docs/VALIDATION.md on the
/// same fixture.
pub fn warm_start_boot(seed: u64, smoke: bool) -> (Vec<Headline>, String) {
    use sqo_snapshot::ValidationLevel;

    fn med(mut v: Vec<f64>) -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    }

    // Smoke keeps both sizes (the committed baseline's metric set must be a
    // subset of every smoke run's, or benchdiff reports removals) and trims
    // rounds instead.
    let sizes: &[DbSize] = &[DbSize::Db1, DbSize::Db4];
    let rounds = if smoke { 2 } else { 7 };
    let first_n = 16usize;
    let mut headlines = Vec::new();
    let mut t = TextTable::new(vec![
        "",
        "cold to ready ms",
        "warm boot ms",
        "boot x",
        "cold 1st-16 p50 µs",
        "warm 1st-16 p50 µs",
        "strict ms",
        "audit ms",
        "snapshot KiB",
    ]);
    for &size in sizes {
        let name = size.name().to_lowercase();
        let path = std::env::temp_dir().join(format!("sqo_e13_{name}_{seed}.sqos"));

        // One untimed round on each side first: the very first boot of
        // either kind pays one-off process costs (lazy allocator growth,
        // page faults, branch training) that are not the cold/warm
        // difference under measurement.
        let warmup = {
            let s = paper_scenario(size, seed);
            let cold = QueryService::new(Arc::new(s.store), Arc::new(s.db));
            for q in s.queries.iter().take(first_n) {
                cold.run(q).expect("cold request answers");
            }
            cold.save_snapshot(&path).expect("snapshot writes");
            QueryService::warm_start(&path, ValidationLevel::Standard, ServiceConfig::default())
                .expect("warm start succeeds")
        };
        std::hint::black_box(&warmup);
        drop(warmup);

        // Cold boots: generate + assemble + closure + compile + wire up,
        // then warm the plan cache the hard way (16 optimize+plan runs).
        let mut cold_ready = Vec::with_capacity(rounds);
        let mut cold_lat: Vec<Duration> = Vec::with_capacity(rounds * first_n);
        let mut queries: Vec<Query> = Vec::new();
        let mut cold_answers = Vec::new();
        let mut bytes = Vec::new();
        for round in 0..rounds {
            let t0 = Instant::now();
            let s = paper_scenario(size, seed);
            let cold = QueryService::new(Arc::new(s.store), Arc::new(s.db));
            let mut lat = Vec::with_capacity(first_n);
            let mut answers = Vec::with_capacity(first_n);
            for q in s.queries.iter().take(first_n) {
                let tq = Instant::now();
                let r = cold.run(q).expect("cold request answers");
                lat.push(tq.elapsed());
                answers.push(r.results);
            }
            cold_ready.push(t0.elapsed().as_secs_f64() * 1e3);
            cold_lat.extend(&lat);
            if round == 0 {
                cold.save_snapshot(&path).expect("snapshot writes");
                bytes = std::fs::read(&path).expect("snapshot reads back");
                queries = s.queries.iter().take(first_n).cloned().collect();
                cold_answers = answers;
            }
        }

        // Warm boots: read + parse + Standard validation + store rebuild +
        // cache seed — the serving state arrives with the load.
        let mut warm_boot = Vec::with_capacity(rounds);
        let mut warm_lat: Vec<Duration> = Vec::with_capacity(rounds * first_n);
        for _ in 0..rounds {
            let t0 = Instant::now();
            let warm = QueryService::warm_start(
                &path,
                ValidationLevel::Standard,
                ServiceConfig::default(),
            )
            .expect("warm start succeeds");
            warm_boot.push(t0.elapsed().as_secs_f64() * 1e3);
            for (q, want) in queries.iter().zip(&cold_answers) {
                let tq = Instant::now();
                let r = warm.run(q).expect("warm request answers");
                warm_lat.push(tq.elapsed());
                assert!(r.cache_hit, "warm start must seed the plan cache");
                assert!(r.results.same_multiset(want), "warm answer matches cold");
            }
            assert_eq!(warm.stats().optimizations, 0, "no re-optimization after warm start");
        }

        let load_ms = |level: ValidationLevel| {
            let samples = (0..rounds)
                .map(|_| {
                    let t0 = Instant::now();
                    let svc =
                        QueryService::from_snapshot_bytes(&bytes, level, ServiceConfig::default())
                            .expect("validated load succeeds");
                    std::hint::black_box(&svc);
                    t0.elapsed().as_secs_f64() * 1e3
                })
                .collect();
            med(samples)
        };
        let strict_ms = load_ms(ValidationLevel::Strict);
        let audit_ms = load_ms(ValidationLevel::Audit);
        let _ = std::fs::remove_file(&path);

        cold_lat.sort_unstable();
        warm_lat.sort_unstable();
        let cold_p50 = percentile_us(&cold_lat, 0.50);
        let warm_p50 = percentile_us(&warm_lat, 0.50);
        let cold_ready_ms = med(cold_ready);
        let warm_boot_ms = med(warm_boot);
        let speedup = cold_ready_ms / warm_boot_ms.max(1e-9);
        let kib = bytes.len() as f64 / 1024.0;
        t.row(vec![
            size.name().to_string(),
            format!("{cold_ready_ms:.2}"),
            format!("{warm_boot_ms:.2}"),
            format!("{speedup:.1}x"),
            format!("{cold_p50:.1}"),
            format!("{warm_p50:.1}"),
            format!("{strict_ms:.2}"),
            format!("{audit_ms:.2}"),
            format!("{kib:.1}"),
        ]);
        headlines.push(Headline::new("e13", format!("cold_boot_ms_{name}"), cold_ready_ms));
        headlines.push(Headline::new("e13", format!("warm_boot_ms_{name}"), warm_boot_ms));
        headlines.push(Headline::new("e13", format!("boot_speedup_{name}"), speedup));
        headlines.push(Headline::new("e13", format!("cold_first_p50_us_{name}"), cold_p50));
        headlines.push(Headline::new("e13", format!("warm_first_p50_us_{name}"), warm_p50));
        headlines.push(Headline::new("e13", format!("load_strict_ms_{name}"), strict_ms));
        headlines.push(Headline::new("e13", format!("load_audit_ms_{name}"), audit_ms));
        headlines.push(Headline::new("e13", format!("snapshot_kib_{name}"), kib));
    }
    let out = format!(
        "E13: Warm start — cold boot vs validated `.sqos` snapshot load\n\
         (both sides timed to the same serving state: database + compiled store + the\n\
         first 16 distinct paper queries resident in the plan cache; cold pays the\n\
         generator, assembly, closure and 16 optimize+plan runs, warm pays one\n\
         Standard-validated load; medians over repeated boots; the strict/audit\n\
         columns price the deeper levels of docs/VALIDATION.md on the same file)\n\n{}\n\
         reading: the warm path skips data generation, index/link assembly, statistics\n\
         folding and closure materialization, and arrives with the plan cache already\n\
         seeded — its first queries never touch the optimizer (asserted, and every\n\
         answer is cross-checked against the cold service's).\n",
        t.render()
    );
    (headlines, out)
}

// ---------------------------------------------------------------------------
// E14: open-loop frontend — singleflight dedup, admission, load shedding.
// ---------------------------------------------------------------------------

/// E14: offered concurrency in the thousands through the `sqo-frontend`
/// reactor.
///
/// **Part A — cold-burst dedup.** A Zipf-skewed open-loop burst of
/// thousands of logical clients hits a *cold* service at once: every
/// distinct query's first arrivals all miss together, and singleflight
/// must collapse each stampede onto one optimization. Reported as
/// `dedup_hit_rate` = 1 − optimizations/completed (> 0.9 means the burst
/// shared optimizations instead of paying one each).
///
/// **Part B — overload shedding.** The same traffic shape against a small
/// admission queue, offered well beyond it: the frontend must shed the
/// marginal arrivals with a typed `Overload` and keep the accepted tail
/// bounded (work-in-queue is capped by the depth) instead of collapsing
/// every client together.
///
/// Every accepted response in both parts is cross-checked against an
/// uncached (`bypass_cache`) reference service sharing the same store and
/// database, at the epochs the response recorded.
pub fn frontend_open_loop(seed: u64, smoke: bool) -> (Vec<Headline>, String) {
    use sqo_frontend::{Frontend, FrontendConfig, Overload};
    use sqo_workload::{open_loop_schedule, OpenLoopConfig};

    let workers = std::thread::available_parallelism().map_or(2, |n| n.get()).min(8);
    let distinct = 16usize;
    let mut headlines = Vec::new();

    // Shared cross-check harness: replay each accepted response against an
    // uncached reference at the epochs it recorded (no writes in E14, so
    // one reference answer per distinct query covers every response).
    let cross_check = |service: &Arc<QueryService>,
                       schedule: &sqo_workload::OpenLoopSchedule,
                       accepted: &[(usize, sqo_service::ServiceResponse)]| {
        let reference = QueryService::with_versioned_db(
            service.store(),
            Arc::clone(service.versioned_db()),
            ServiceConfig { bypass_cache: true, ..ServiceConfig::default() },
        );
        let wanted: Vec<_> = schedule
            .distinct
            .iter()
            .map(|q| reference.run(q).expect("reference answers"))
            .collect();
        for (index, response) in accepted {
            let want = &wanted[*index];
            assert_eq!(response.epoch, want.epoch, "responses recorded the serving epoch");
            assert_eq!(response.data_epoch, want.data_epoch, "and the serving data epoch");
            assert!(
                response.results.same_multiset(&want.results),
                "accepted answer must match the uncached reference at its epochs"
            );
        }
    };

    // -- Part A: cold burst, queue sized to admit everything. --
    // Same sweep points in smoke and full mode: the committed baseline is
    // a full run and benchdiff treats baseline metrics absent from the
    // smoke run as removals, so the metric name sets must coincide (the
    // warm-start experiment documents the same constraint).
    let offered_list: &[usize] = &[1024, 4096];
    let mut ta = TextTable::new(vec![
        "offered",
        "goodput qps",
        "p50 µs",
        "p99 µs",
        "optimizations",
        "dedup hit rate",
        "sf leaders",
        "sf followers",
    ]);
    for &offered in offered_list {
        let s = paper_scenario(DbSize::Db1, seed);
        let pool = s.queries.clone();
        let service = Arc::new(QueryService::new(Arc::new(s.store), Arc::new(s.db)));
        let frontend = Frontend::new(
            Arc::clone(&service),
            FrontendConfig { workers, queue_depth: offered, p99_bound_us: None },
        );
        let schedule = open_loop_schedule(
            &pool,
            &OpenLoopConfig {
                seed,
                arrivals: offered,
                distinct,
                zipf_s: 1.2,
                ..OpenLoopConfig::default()
            },
        );
        let t0 = Instant::now();
        let handles: Vec<_> = schedule
            .arrivals
            .iter()
            .map(|a| (a.distinct_index, frontend.submit(&a.query).expect("queue admits the burst")))
            .collect();
        let mut latencies: Vec<Duration> = Vec::with_capacity(handles.len());
        let mut accepted = Vec::with_capacity(handles.len());
        for (index, handle) in handles {
            let done = handle.wait();
            latencies.push(Duration::from_micros(done.latency_us));
            accepted.push((index, done.result.expect("burst requests answer")));
        }
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        frontend.shutdown();
        cross_check(&service, &schedule, &accepted);

        let svc = service.stats();
        let completed = accepted.len() as f64;
        let goodput = completed / wall;
        let dedup = 1.0 - svc.optimizations as f64 / completed;
        latencies.sort_unstable();
        let p50 = percentile_us(&latencies, 0.50);
        let p99 = percentile_us(&latencies, 0.99);
        ta.row(vec![
            offered.to_string(),
            format!("{goodput:.0}"),
            format!("{p50:.1}"),
            format!("{p99:.1}"),
            svc.optimizations.to_string(),
            format!("{dedup:.4}"),
            svc.singleflight_leaders.to_string(),
            svc.singleflight_followers.to_string(),
        ]);
        headlines.push(Headline::new("e14", format!("dedup_hit_rate_o{offered}"), dedup));
        headlines.push(Headline::new("e14", format!("goodput_qps_o{offered}"), goodput));
        headlines.push(Headline::new("e14", format!("burst_p50_us_o{offered}"), p50));
        headlines.push(Headline::new("e14", format!("burst_p99_us_o{offered}"), p99));
        assert!(
            dedup > 0.9,
            "a {offered}-client cold burst over {distinct} distinct queries must share \
             optimizations (got {dedup:.4} from {} optimizations)",
            svc.optimizations
        );
    }

    // -- Part B: offered load far beyond a small admission queue. --
    let depth = if smoke { 64 } else { 256 };
    let offered = depth * 4;
    let s = paper_scenario(DbSize::Db1, seed);
    let pool = s.queries.clone();
    let service = Arc::new(QueryService::new(Arc::new(s.store), Arc::new(s.db)));
    let schedule = open_loop_schedule(
        &pool,
        &OpenLoopConfig {
            seed: seed ^ 0x5eed,
            arrivals: offered,
            distinct,
            zipf_s: 1.2,
            ..OpenLoopConfig::default()
        },
    );
    // Warm the distinct set first: Part B measures steady-state admission
    // behavior, not cold-miss cost.
    for q in &schedule.distinct {
        service.run(q).expect("warmup answers");
    }
    let frontend = Frontend::new(
        Arc::clone(&service),
        FrontendConfig { workers, queue_depth: depth, p99_bound_us: None },
    );
    let t0 = Instant::now();
    let mut shed = 0u64;
    let mut handles = Vec::new();
    for a in &schedule.arrivals {
        match frontend.submit(&a.query) {
            Ok(handle) => handles.push((a.distinct_index, handle)),
            Err(Overload::QueueFull) => shed += 1,
            Err(other) => panic!("unexpected shed reason {other:?}"),
        }
    }
    let mut latencies: Vec<Duration> = Vec::with_capacity(handles.len());
    let mut accepted = Vec::with_capacity(handles.len());
    for (index, handle) in handles {
        let done = handle.wait();
        latencies.push(Duration::from_micros(done.latency_us));
        accepted.push((index, done.result.expect("admitted requests answer")));
    }
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let stats = frontend.shutdown();
    cross_check(&service, &schedule, &accepted);
    assert_eq!(stats.completed, stats.admitted, "admitted requests are never abandoned");

    let shed_rate = shed as f64 / offered as f64;
    let goodput = accepted.len() as f64 / wall;
    latencies.sort_unstable();
    let p50 = percentile_us(&latencies, 0.50);
    let p99 = percentile_us(&latencies, 0.99);
    let mut tb = TextTable::new(vec![
        "offered",
        "queue depth",
        "accepted",
        "shed",
        "shed rate",
        "goodput qps",
        "accepted p50 µs",
        "accepted p99 µs",
    ]);
    tb.row(vec![
        offered.to_string(),
        depth.to_string(),
        accepted.len().to_string(),
        shed.to_string(),
        format!("{shed_rate:.3}"),
        format!("{goodput:.0}"),
        format!("{p50:.1}"),
        format!("{p99:.1}"),
    ]);
    headlines.push(Headline::new("e14", "overload_shed_rate", shed_rate));
    headlines.push(Headline::new("e14", "overload_goodput_qps", goodput));
    headlines.push(Headline::new("e14", "overload_p99_us", p99));

    let out = format!(
        "E14: Open-loop frontend — singleflight dedup, admission control, load shedding\n\
         ({workers} reactor workers; Zipf(s=1.2) traffic over {distinct} distinct queries,\n\
         shuffled spellings; every accepted response cross-checked against an uncached\n\
         reference at its recorded epochs)\n\n\
         Part A — cold burst, everything admitted (dedup hit rate = 1 − optimizations/completed;\n\
         how the dedup splits between singleflight flights and post-publication cache hits\n\
         is scheduling-dependent, the shared-optimization count is not):\n{}\n\
         Part B — offered load {offered} against an admission queue of {depth} (reject-newest;\n\
         accepted work is bounded by the queue depth, so the accepted tail stays bounded\n\
         while the marginal arrivals shed with a typed Overload):\n{}",
        ta.render(),
        tb.render()
    );
    (headlines, out)
}

// ---------------------------------------------------------------------------
// E15 — batched vectorized execution: grouped warm batches + batched costing.
// ---------------------------------------------------------------------------

/// E15: the batch execution tier under a duplicate-heavy warm stream.
///
/// **Part A** sweeps the explicit gather window (`batch_window` 1/4/8/16)
/// over a single-threaded [`QueryService::run_batch`] replay of a
/// Zipf(s=1.6) stream over 6 distinct queries (shuffled spellings), with
/// result memoization **off** so every un-grouped request pays a real plan
/// execution. Grouping is the only variable, and the per-width execution
/// counts are deterministic, so the ≥1.3× sharing bound at windows 8/16 is
/// asserted on execution counts; wall-clock throughput is reported as
/// headlines. Every batched answer is cross-checked against an uncached
/// sequential reference.
///
/// **Part B** measures cold optimize+plan latency over the distinct set —
/// the pipeline whose per-candidate costing now runs off one shared
/// statistics view per [`plan_query`] call (selectivities and fanouts
/// resolved once, reused across every candidate plan).
pub fn batch_execution(seed: u64, smoke: bool) -> (Vec<Headline>, String) {
    let widths: &[usize] = &[1, 4, 8, 16];
    let requests = if smoke { 256 } else { 4096 };
    let scenario = paper_scenario(DbSize::Db1, seed);
    let store = Arc::new(scenario.store);
    let db = Arc::new(scenario.db);
    let workload = service_workload(
        &scenario.queries,
        &ServiceWorkloadConfig {
            seed: seed.wrapping_add(150),
            requests,
            ..ServiceWorkloadConfig::duplicate_heavy()
        },
    );

    // Sequential uncached reference, one answer per distinct query: E15
    // performs no writes, so these cover every request at every width.
    let reference = QueryService::with_config(
        Arc::clone(&store),
        Arc::clone(&db),
        ServiceConfig { bypass_cache: true, ..ServiceConfig::default() },
    );
    let wanted: Vec<_> =
        workload.distinct.iter().map(|q| reference.run(q).expect("reference answers")).collect();

    let mut headlines = Vec::new();
    let mut ta = TextTable::new(vec![
        "window",
        "warm qps",
        "executions",
        "groups",
        "mean width",
        "exec sharing",
        "qps speedup vs w1",
    ]);
    let (mut exec_w1, mut qps_w1) = (0u64, 0.0f64);
    for &width in widths {
        let service = QueryService::with_config(
            Arc::clone(&store),
            Arc::clone(&db),
            ServiceConfig { cache_results: false, batch_window: width, ..ServiceConfig::default() },
        );
        // Warm the plan cache (results are never memoized here).
        for q in &workload.distinct {
            service.run(q).expect("warmup answers");
        }
        let exec0 = service.stats().executions;
        let t0 = Instant::now();
        let out = service.run_batch(&workload.requests, 1);
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        for (r, &i) in out.iter().zip(&workload.indices) {
            let r = r.as_ref().expect("warm requests answer");
            let want = &wanted[i];
            assert_eq!(r.data_epoch, want.data_epoch, "no writes: one data epoch");
            assert!(
                r.results.same_multiset(&want.results),
                "batched answer at window {width} must match the sequential reference"
            );
        }
        let stats = service.stats();
        let executions = stats.executions - exec0;
        let qps = requests as f64 / wall;
        if width == 1 {
            // Provably-empty distinct queries answer without executing (at
            // every width), so the ungrouped baseline is one execution per
            // *non-empty* request, not per request.
            assert!(
                executions > requests as u64 / 2,
                "most warm requests execute ungrouped (got {executions}/{requests})"
            );
            assert_eq!(stats.batch_groups, 0, "window 1 disables the gather pass");
            (exec_w1, qps_w1) = (executions, qps);
        }
        let sharing = exec_w1 as f64 / executions.max(1) as f64;
        let mean_width = if stats.batch_groups == 0 {
            1.0
        } else {
            stats.batch_size as f64 / stats.batch_groups as f64
        };
        let speedup = qps / qps_w1.max(1e-9);
        if width >= 8 {
            assert!(
                sharing >= 1.3,
                "window {width} must share ≥1.3× executions on the duplicate-heavy stream \
                 (got {sharing:.2} = {exec_w1}/{executions})"
            );
        }
        ta.row(vec![
            width.to_string(),
            format!("{qps:.0}"),
            executions.to_string(),
            stats.batch_groups.to_string(),
            format!("{mean_width:.2}"),
            format!("{sharing:.2}"),
            format!("{speedup:.2}"),
        ]);
        headlines.push(Headline::new("e15", format!("warm_qps_w{width}"), qps));
        headlines.push(Headline::new("e15", format!("exec_sharing_w{width}"), sharing));
        headlines.push(Headline::new("e15", format!("mean_group_w{width}"), mean_width));
    }

    // -- Part B: cold optimize+plan over the distinct set. --
    let optimizer = SemanticOptimizer::shared(Arc::clone(&store));
    let oracle = CostBasedOracle::new(&db);
    let model = CostModel::default();
    let mut scratch = OptimizerScratch::new();
    let reps = if smoke { 8 } else { 200 };
    for q in &workload.distinct {
        let out = optimizer.optimize_with(q, &oracle, &mut scratch).expect("optimize");
        let _ = plan_query(&db, &out.query, &model);
    }
    let mut lat: Vec<Duration> = Vec::with_capacity(reps * workload.distinct.len());
    for _ in 0..reps {
        for q in &workload.distinct {
            let t0 = Instant::now();
            let out = optimizer.optimize_with(q, &oracle, &mut scratch).expect("optimize");
            if !out.report.provably_empty {
                std::hint::black_box(plan_query(&db, &out.query, &model).expect("plan"));
            }
            lat.push(t0.elapsed());
        }
    }
    lat.sort_unstable();
    let p50 = percentile_us(&lat, 0.50);
    let p99 = percentile_us(&lat, 0.99);
    headlines.push(Headline::new("e15", "cold_optimize_plan_p50_us", p50));
    headlines.push(Headline::new("e15", "cold_optimize_plan_p99_us", p99));
    let mut tb = TextTable::new(vec!["metric", "µs"]);
    tb.row(vec!["cold optimize+plan p50".into(), format!("{p50:.2}")]);
    tb.row(vec!["cold optimize+plan p99".into(), format!("{p99:.2}")]);

    let out = format!(
        "E15: Batched vectorized execution ({requests} warm requests, Zipf(s=1.6) over {} \
         distinct DB1 queries, shuffled spellings; single-threaded replay, result memo off;\n\
         every batched answer cross-checked against an uncached sequential reference)\n\n\
         Part A — explicit gather window sweep (exec sharing = executions at window 1 / \
         executions at this window; deterministic, asserted ≥1.3 at windows 8/16):\n{}\n\
         Part B — cold optimize+plan latency over the distinct set ({} samples; candidate \
         costing batched over one shared statistics view per plan_query call):\n{}",
        workload.distinct.len(),
        ta.render(),
        lat.len(),
        tb.render()
    );
    (headlines, out)
}

/// Headline numbers of E11.
pub fn e11_headlines(rows: &[E11Row]) -> Vec<Headline> {
    let mut out = Vec::new();
    for r in rows {
        out.push(Headline::new("e11", format!("qps_w{}_t{}", r.write_pct, r.threads), r.qps));
        out.push(Headline::new("e11", format!("p99_us_w{}_t{}", r.write_pct, r.threads), r.p99_us));
    }
    // Hit rate is machine-independent only at one thread (no stampedes):
    // emit the deterministic cell per ratio.
    for r in rows.iter().filter(|r| r.threads == 1) {
        out.push(Headline::new("e11", format!("plan_hit_rate_w{}", r.write_pct), r.plan_hit_rate));
    }
    out
}

/// Headline numbers of E10.
pub fn e10_headlines(row: &E10Row) -> Vec<Headline> {
    vec![
        Headline::new("e10", "optimize_plan_p50_us", row.optimize_plan_p50_us),
        Headline::new("e10", "optimize_plan_p99_us", row.optimize_plan_p99_us),
        Headline::new("e10", "optimize_plan_mean_us", row.optimize_plan_mean_us),
    ]
}

/// Headline numbers of E9.
pub fn e9_headlines(rows: &[E9Row]) -> Vec<Headline> {
    let mut out = Vec::new();
    for r in rows {
        out.push(Headline::new("e9", format!("cold_qps_t{}", r.threads), r.cold_qps));
        out.push(Headline::new("e9", format!("warm_qps_t{}", r.threads), r.warm_qps));
        out.push(Headline::new("e9", format!("speedup_t{}", r.threads), r.speedup));
    }
    let min_speedup = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
    out.push(Headline::new("e9", "min_speedup", min_speedup));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table41_reports_paper_cardinalities() {
        let (headlines, s) = table41(42);
        assert!(s.contains("52"), "{s}");
        assert!(s.contains("208"), "{s}");
        assert!(s.contains("# object class"), "{s}");
        assert!(headlines.iter().any(|h| h.metric == "class_cardinality_db1" && h.value == 52.0));
        assert_eq!(headlines.len(), 8);
    }

    #[test]
    fn figure41_produces_all_series() {
        let (points, rendered) = figure41(42, 1);
        let series: std::collections::HashSet<usize> =
            points.iter().map(|p| p.constraints_per_class).collect();
        assert_eq!(series.len(), 3, "{rendered}");
        // Monotone trend check: within a series, more classes should not make
        // transformation dramatically cheaper (averaged noise tolerance).
        for per_class in [1usize, 5, 9] {
            let times: Vec<f64> = points
                .iter()
                .filter(|p| p.constraints_per_class == per_class)
                .map(|p| p.avg_transform.as_nanos() as f64)
                .collect();
            assert!(times.len() >= 2);
        }
    }

    #[test]
    fn table42_buckets_sum_to_hundred() {
        let (rows, rendered) = table42(42);
        assert_eq!(rows.len(), 4, "{rendered}");
        for row in &rows {
            let sum: f64 = row.buckets.iter().sum();
            assert!((sum - 100.0).abs() < 1e-6, "{} sums to {sum}", row.db.name());
            assert_eq!(row.ratios.len(), 40);
        }
    }

    #[test]
    fn grouping_report_renders() {
        let (headlines, s) = grouping(42);
        assert!(s.contains("Arbitrary"), "{s}");
        assert!(s.contains("waste"), "{s}");
        assert_eq!(headlines.len(), 3);
        assert!(headlines.iter().all(|h| h.metric.starts_with("waste_pct_")));
    }

    #[test]
    fn e9_smoke_shows_substantial_warm_speedup() {
        let (rows, rendered) = service_throughput(42, true);
        assert_eq!(rows.len(), 4, "{rendered}");
        assert_eq!(rows.iter().map(|r| r.threads).collect::<Vec<_>>(), vec![1, 2, 4, 8]);
        for r in &rows {
            // Deterministic structural claims only: the warm batch is fully
            // cache-served (warm-up covers every distinct query). The
            // *magnitude* of the speedup is wall-clock and belongs to the
            // release-mode report run, not a debug-mode unit test on a
            // possibly loaded CI machine — here we only require the warm
            // path not to lose.
            assert!(r.warm_hit_rate > 0.99, "warm batch must be fully cache-served: {r:?}");
            assert!(
                r.speedup > 1.0,
                "the cached path should never be slower than re-optimizing: {r:?}\n{rendered}"
            );
        }
        let headlines = e9_headlines(&rows);
        assert!(headlines.iter().any(|h| h.metric == "min_speedup"));
    }

    #[test]
    fn e12_smoke_measures_both_write_paths() {
        let (headlines, rendered) = write_path_scaling(42, true);
        for metric in ["inc_us_b1", "full_us_b64", "inc_us_c5", "inc_us_db1", "speedup_db4"] {
            assert!(
                headlines.iter().any(|h| h.experiment == "e12" && h.metric == metric),
                "missing {metric}\n{rendered}"
            );
        }
        // Structural claim only (magnitudes belong to the release report
        // run): on the largest instance a one-class batch must be cheaper
        // to apply incrementally than by rebuilding the whole database.
        let speedup = headlines.iter().find(|h| h.metric == "speedup_db4").unwrap().value;
        assert!(speedup > 1.0, "incremental write path lost to the full rebuild\n{rendered}");
    }

    #[test]
    fn e11_smoke_serves_correctly_under_writes() {
        // The driver itself cross-checks every cached answer against an
        // uncached reference after every write; this test additionally pins
        // the structural claims the acceptance criteria name.
        let (rows, rendered) = mutable_serving(42, true);
        assert_eq!(rows.len(), 12, "3 write ratios × 4 thread counts\n{rendered}");
        for r in &rows {
            assert!(
                r.plan_hit_rate > 0.0,
                "plans must survive data writes (hit rate > 0): {r:?}\n{rendered}"
            );
            assert!(r.writes > 0, "every ratio commits writes: {r:?}");
            assert_eq!(r.data_epoch, r.writes, "one data epoch per committed batch");
        }
        let headlines = e11_headlines(&rows);
        assert_eq!(headlines.len(), 12 * 2 + 3);
        assert!(headlines.iter().any(|h| h.metric == "plan_hit_rate_w20"));
    }

    #[test]
    fn e14_smoke_dedups_and_sheds() {
        // The driver itself asserts dedup > 0.9 and cross-checks every
        // accepted response against an uncached reference; here we pin
        // the headline shape and the shedding claims.
        let (headlines, rendered) = frontend_open_loop(42, true);
        let dedup = headlines
            .iter()
            .find(|h| h.experiment == "e14" && h.metric == "dedup_hit_rate_o1024")
            .unwrap_or_else(|| panic!("missing dedup headline\n{rendered}"));
        assert!(dedup.value > 0.9, "cold burst must share optimizations\n{rendered}");
        let shed = headlines
            .iter()
            .find(|h| h.metric == "overload_shed_rate")
            .unwrap_or_else(|| panic!("missing shed headline\n{rendered}"));
        assert!(
            shed.value > 0.0 && shed.value < 1.0,
            "offered load 4x the queue depth must shed some but not all\n{rendered}"
        );
        assert!(headlines.iter().any(|h| h.metric == "overload_p99_us"));
        assert!(headlines.iter().any(|h| h.metric == "overload_goodput_qps"));
    }

    #[test]
    fn e15_smoke_shares_executions_across_widths() {
        // The driver itself cross-checks every batched answer against the
        // sequential reference and asserts ≥1.3× execution sharing at
        // windows 8/16; here we pin the headline shape and monotonicity.
        let (headlines, rendered) = batch_execution(42, true);
        for width in [1usize, 4, 8, 16] {
            for metric in ["warm_qps", "exec_sharing", "mean_group"] {
                assert!(
                    headlines.iter().any(|h| h.metric == format!("{metric}_w{width}")),
                    "missing {metric}_w{width}\n{rendered}"
                );
            }
        }
        let sharing = |w: usize| {
            headlines
                .iter()
                .find(|h| h.metric == format!("exec_sharing_w{w}"))
                .map(|h| h.value)
                .unwrap()
        };
        assert_eq!(sharing(1), 1.0, "{rendered}");
        assert!(sharing(16) >= sharing(8) * 0.99, "wider windows share at least as much");
        assert!(headlines.iter().any(|h| h.metric == "cold_optimize_plan_p50_us"));
        assert!(headlines.iter().any(|h| h.metric == "cold_optimize_plan_p99_us"));
    }
}
