//! Byte codecs for the shared schema/query vocabulary.
//!
//! Tag values mirror the stable `QueryFingerprint` hash in
//! `sqo-query::canonical` wherever both speak about the same enum (value
//! type tags, comparison operators), so the fingerprint recorded in a
//! snapshot and the bytes that encode its query can never drift apart.
//! `docs/FORMAT.md` §3 specifies every tag normatively.

use sqo_catalog::{
    AttrId, AttrRef, AttrStats, ClassId, ClassStats, DataType, Finite, IndexKind, Multiplicity,
    RelId, RelStats, RelationshipEnd, StatsSnapshot, Value,
};
use sqo_query::{
    Bound, CompOp, JoinPredicate, Predicate, Projection, Query, SelPredicate, ValueSet,
};

use crate::bytes::{ByteReader, ByteWriter};
use crate::error::LoadError;

// ---- values ---------------------------------------------------------------

/// Encodes a [`Value`]: one type tag byte (Int=0, Float=1, Str=2, Bool=3 —
/// the fingerprint tags), then the payload.
pub fn write_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Int(i) => {
            w.u8(0);
            w.i64(*i);
        }
        Value::Float(f) => {
            w.u8(1);
            w.f64(f.get());
        }
        Value::Str(s) => {
            w.u8(2);
            w.str(s);
        }
        Value::Bool(b) => {
            w.u8(3);
            w.u8(*b as u8);
        }
    }
}

/// Decodes a [`Value`].
///
/// # Errors
/// [`LoadError::Malformed`] on a bad tag, short read, NaN float or non-0/1
/// bool byte.
pub fn read_value(r: &mut ByteReader<'_>) -> Result<Value, LoadError> {
    match r.u8()? {
        0 => Ok(Value::Int(r.i64()?)),
        1 => {
            let f = r.f64()?;
            Finite::new(f).map(Value::Float).ok_or_else(|| r.malformed("NaN float value"))
        }
        2 => Ok(Value::Str(std::sync::Arc::from(r.str_ref()?))),
        3 => match r.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            b => Err(r.malformed(format!("bool byte {b} is neither 0 nor 1"))),
        },
        t => Err(r.malformed(format!("unknown value tag {t}"))),
    }
}

/// FNV-1a hasher for [`StrPool`] lookups. The pool hashes every decoded
/// string occurrence, and its keys are short trusted-after-checksum
/// strings, so a fast non-keyed hash beats the default SipHash; this is a
/// process-local lookup structure, never part of the on-disk format.
#[derive(Debug, Default)]
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

#[derive(Clone, Debug, Default)]
struct FnvState;

impl std::hash::BuildHasher for FnvState {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// Deduplicating pool of decoded `Arc<str>` values.
///
/// Snapshot payloads repeat string values heavily (extent tuples and index
/// keys draw from small generated vocabularies), so the bulk decoders
/// intern through one of these: each distinct string is allocated once and
/// every repeat shares the same [`std::sync::Arc`]. Purely an allocation
/// optimization — value equality is by content, so interned and
/// non-interned decodes are indistinguishable.
#[derive(Debug, Default)]
pub struct StrPool(std::collections::HashSet<std::sync::Arc<str>, FnvState>);

impl StrPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared `Arc` for `s`, allocating only on first sight.
    pub fn intern(&mut self, s: &str) -> std::sync::Arc<str> {
        if let Some(a) = self.0.get(s) {
            return std::sync::Arc::clone(a);
        }
        let a: std::sync::Arc<str> = std::sync::Arc::from(s);
        self.0.insert(std::sync::Arc::clone(&a));
        a
    }
}

/// Encodes a [`Value`] without its type tag — for streams whose element
/// type is pinned by schema (EXTENTS tuples, where the catalog declares
/// every attribute's type), so the tag byte and its decode branch are
/// dead weight.
pub fn write_value_raw(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Int(i) => w.i64(*i),
        Value::Float(f) => w.f64(f.get()),
        Value::Str(s) => w.str(s),
        Value::Bool(b) => w.u8(*b as u8),
    }
}

/// Decodes a tagless [`Value`] whose type is dictated by `ty`, interning
/// string payloads through `pool`. The result always has data type `ty` —
/// type agreement is by construction, not a check.
///
/// # Errors
/// [`LoadError::Malformed`] on a short read, NaN float, invalid UTF-8 or
/// non-0/1 bool byte.
pub fn read_value_raw(
    r: &mut ByteReader<'_>,
    ty: DataType,
    pool: &mut StrPool,
) -> Result<Value, LoadError> {
    match ty {
        DataType::Int => Ok(Value::Int(r.i64()?)),
        DataType::Float => {
            let f = r.f64()?;
            Finite::new(f).map(Value::Float).ok_or_else(|| r.malformed("NaN float value"))
        }
        DataType::Str => Ok(Value::Str(pool.intern(r.str_ref()?))),
        DataType::Bool => match r.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            b => Err(r.malformed(format!("bool byte {b} is neither 0 nor 1"))),
        },
    }
}

/// Decodes a [`Value`], interning string payloads through `pool`.
///
/// # Errors
/// Exactly the [`read_value`] errors.
pub fn read_value_pooled(r: &mut ByteReader<'_>, pool: &mut StrPool) -> Result<Value, LoadError> {
    match r.u8()? {
        0 => Ok(Value::Int(r.i64()?)),
        1 => {
            let f = r.f64()?;
            Finite::new(f).map(Value::Float).ok_or_else(|| r.malformed("NaN float value"))
        }
        2 => Ok(Value::Str(pool.intern(r.str_ref()?))),
        3 => match r.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            b => Err(r.malformed(format!("bool byte {b} is neither 0 nor 1"))),
        },
        t => Err(r.malformed(format!("unknown value tag {t}"))),
    }
}

/// Encodes a [`DataType`] as one byte (Int=0, Float=1, Str=2, Bool=3).
pub fn write_data_type(w: &mut ByteWriter, ty: DataType) {
    w.u8(match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    });
}

/// Decodes a [`DataType`].
///
/// # Errors
/// [`LoadError::Malformed`] on an unknown tag.
pub fn read_data_type(r: &mut ByteReader<'_>) -> Result<DataType, LoadError> {
    match r.u8()? {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Str),
        3 => Ok(DataType::Bool),
        t => Err(r.malformed(format!("unknown data-type tag {t}"))),
    }
}

// ---- query vocabulary -----------------------------------------------------

/// Encodes an [`AttrRef`] as class id then attr id, both `u32`.
pub fn write_attr_ref(w: &mut ByteWriter, r: AttrRef) {
    w.u32(r.class.0);
    w.u32(r.attr.0);
}

/// Decodes an [`AttrRef`].
///
/// # Errors
/// [`LoadError::Malformed`] on a short read.
pub fn read_attr_ref(r: &mut ByteReader<'_>) -> Result<AttrRef, LoadError> {
    Ok(AttrRef { class: ClassId(r.u32()?), attr: AttrId(r.u32()?) })
}

/// Encodes a [`CompOp`] as one byte (Eq=0, Ne=1, Lt=2, Le=3, Gt=4, Ge=5 —
/// the fingerprint tags).
pub fn write_comp_op(w: &mut ByteWriter, op: CompOp) {
    w.u8(match op {
        CompOp::Eq => 0,
        CompOp::Ne => 1,
        CompOp::Lt => 2,
        CompOp::Le => 3,
        CompOp::Gt => 4,
        CompOp::Ge => 5,
    });
}

/// Decodes a [`CompOp`].
///
/// # Errors
/// [`LoadError::Malformed`] on an unknown tag.
pub fn read_comp_op(r: &mut ByteReader<'_>) -> Result<CompOp, LoadError> {
    match r.u8()? {
        0 => Ok(CompOp::Eq),
        1 => Ok(CompOp::Ne),
        2 => Ok(CompOp::Lt),
        3 => Ok(CompOp::Le),
        4 => Ok(CompOp::Gt),
        5 => Ok(CompOp::Ge),
        t => Err(r.malformed(format!("unknown comparison-operator tag {t}"))),
    }
}

/// Encodes a [`Bound`]: tag byte (Unbounded=0, Included=1, Excluded=2),
/// then the value for tags 1 and 2.
pub fn write_bound(w: &mut ByteWriter, b: &Bound) {
    match b {
        Bound::Unbounded => w.u8(0),
        Bound::Included(v) => {
            w.u8(1);
            write_value(w, v);
        }
        Bound::Excluded(v) => {
            w.u8(2);
            write_value(w, v);
        }
    }
}

/// Decodes a [`Bound`].
///
/// # Errors
/// [`LoadError::Malformed`] on an unknown tag or bad value.
pub fn read_bound(r: &mut ByteReader<'_>) -> Result<Bound, LoadError> {
    match r.u8()? {
        0 => Ok(Bound::Unbounded),
        1 => Ok(Bound::Included(read_value(r)?)),
        2 => Ok(Bound::Excluded(read_value(r)?)),
        t => Err(r.malformed(format!("unknown bound tag {t}"))),
    }
}

/// Encodes a [`ValueSet`]: tag byte (Range=0, Hole=1), then the payload.
pub fn write_value_set(w: &mut ByteWriter, s: &ValueSet) {
    match s {
        ValueSet::Range { lo, hi } => {
            w.u8(0);
            write_bound(w, lo);
            write_bound(w, hi);
        }
        ValueSet::Hole(v) => {
            w.u8(1);
            write_value(w, v);
        }
    }
}

/// Decodes a [`ValueSet`].
///
/// # Errors
/// [`LoadError::Malformed`] on an unknown tag or bad payload.
pub fn read_value_set(r: &mut ByteReader<'_>) -> Result<ValueSet, LoadError> {
    match r.u8()? {
        0 => Ok(ValueSet::Range { lo: read_bound(r)?, hi: read_bound(r)? }),
        1 => Ok(ValueSet::Hole(read_value(r)?)),
        t => Err(r.malformed(format!("unknown value-set tag {t}"))),
    }
}

/// Encodes a [`SelPredicate`] as attr ref, operator, value.
pub fn write_sel_predicate(w: &mut ByteWriter, p: &SelPredicate) {
    write_attr_ref(w, p.attr);
    write_comp_op(w, p.op);
    write_value(w, &p.value);
}

/// Decodes a [`SelPredicate`].
///
/// # Errors
/// [`LoadError::Malformed`] on a short read or bad payload.
pub fn read_sel_predicate(r: &mut ByteReader<'_>) -> Result<SelPredicate, LoadError> {
    Ok(SelPredicate { attr: read_attr_ref(r)?, op: read_comp_op(r)?, value: read_value(r)? })
}

/// Encodes a [`JoinPredicate`] as left attr ref, operator, right attr ref.
/// The operands are stored exactly as held (already canonicalized by
/// [`JoinPredicate::new`] at construction time).
pub fn write_join_predicate(w: &mut ByteWriter, p: &JoinPredicate) {
    write_attr_ref(w, p.left);
    write_comp_op(w, p.op);
    write_attr_ref(w, p.right);
}

/// Decodes a [`JoinPredicate`], preserving the stored operand order.
///
/// # Errors
/// [`LoadError::Malformed`] on a short read or bad tag.
pub fn read_join_predicate(r: &mut ByteReader<'_>) -> Result<JoinPredicate, LoadError> {
    Ok(JoinPredicate { left: read_attr_ref(r)?, op: read_comp_op(r)?, right: read_attr_ref(r)? })
}

/// Encodes a [`Predicate`]: tag byte (Sel=0, Join=1), then the predicate.
pub fn write_predicate(w: &mut ByteWriter, p: &Predicate) {
    match p {
        Predicate::Sel(s) => {
            w.u8(0);
            write_sel_predicate(w, s);
        }
        Predicate::Join(j) => {
            w.u8(1);
            write_join_predicate(w, j);
        }
    }
}

/// Decodes a [`Predicate`].
///
/// # Errors
/// [`LoadError::Malformed`] on an unknown tag or bad payload.
pub fn read_predicate(r: &mut ByteReader<'_>) -> Result<Predicate, LoadError> {
    match r.u8()? {
        0 => Ok(Predicate::Sel(read_sel_predicate(r)?)),
        1 => Ok(Predicate::Join(read_join_predicate(r)?)),
        t => Err(r.malformed(format!("unknown predicate tag {t}"))),
    }
}

/// Encodes a [`Projection`] as attr ref then optional binding value.
pub fn write_projection(w: &mut ByteWriter, p: &Projection) {
    write_attr_ref(w, p.attr);
    match &p.binding {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            write_value(w, v);
        }
    }
}

/// Decodes a [`Projection`].
///
/// # Errors
/// [`LoadError::Malformed`] on a bad option tag or value.
pub fn read_projection(r: &mut ByteReader<'_>) -> Result<Projection, LoadError> {
    let attr = read_attr_ref(r)?;
    let binding = match r.u8()? {
        0 => None,
        1 => Some(read_value(r)?),
        t => return Err(r.malformed(format!("option tag {t} is neither 0 nor 1"))),
    };
    Ok(Projection { attr, binding })
}

/// Encodes a [`Query`] as five length-prefixed lists (projections, join
/// predicates, selective predicates, relationship ids, class ids) — the
/// same section order the fingerprint hashes.
pub fn write_query(w: &mut ByteWriter, q: &Query) {
    w.u32(q.projections.len() as u32);
    for p in &q.projections {
        write_projection(w, p);
    }
    w.u32(q.join_predicates.len() as u32);
    for p in &q.join_predicates {
        write_join_predicate(w, p);
    }
    w.u32(q.selective_predicates.len() as u32);
    for p in &q.selective_predicates {
        write_sel_predicate(w, p);
    }
    w.u32(q.relationships.len() as u32);
    for r in &q.relationships {
        w.u32(r.0);
    }
    w.u32(q.classes.len() as u32);
    for c in &q.classes {
        w.u32(c.0);
    }
}

/// Decodes a [`Query`].
///
/// # Errors
/// [`LoadError::Malformed`] on any structural problem in the five lists.
pub fn read_query(r: &mut ByteReader<'_>) -> Result<Query, LoadError> {
    let mut projections = Vec::new();
    for _ in 0..r.count()? {
        projections.push(read_projection(r)?);
    }
    let mut join_predicates = Vec::new();
    for _ in 0..r.count()? {
        join_predicates.push(read_join_predicate(r)?);
    }
    let mut selective_predicates = Vec::new();
    for _ in 0..r.count()? {
        selective_predicates.push(read_sel_predicate(r)?);
    }
    let mut relationships = Vec::new();
    for _ in 0..r.count()? {
        relationships.push(RelId(r.u32()?));
    }
    let mut classes = Vec::new();
    for _ in 0..r.count()? {
        classes.push(ClassId(r.u32()?));
    }
    Ok(Query { projections, join_predicates, selective_predicates, relationships, classes })
}

// ---- catalog --------------------------------------------------------------

fn write_relationship_end(w: &mut ByteWriter, end: &RelationshipEnd) {
    w.u32(end.class.0);
    w.u8(match end.multiplicity {
        Multiplicity::One => 0,
        Multiplicity::Many => 1,
    });
    w.u8(end.total as u8);
}

fn read_relationship_end(r: &mut ByteReader<'_>) -> Result<RelationshipEnd, LoadError> {
    let class = ClassId(r.u32()?);
    let multiplicity = match r.u8()? {
        0 => Multiplicity::One,
        1 => Multiplicity::Many,
        t => return Err(r.malformed(format!("unknown multiplicity tag {t}"))),
    };
    let total = match r.u8()? {
        0 => false,
        1 => true,
        t => return Err(r.malformed(format!("total byte {t} is neither 0 nor 1"))),
    };
    Ok(RelationshipEnd { class, multiplicity, total })
}

/// Encodes the full catalog definition lists (classes with attributes and
/// parents, then relationships) into a CATALOG section payload.
pub fn write_catalog(w: &mut ByteWriter, catalog: &sqo_catalog::Catalog) {
    w.u32(catalog.class_count() as u32);
    for (_, cdef) in catalog.classes() {
        w.str(&cdef.name);
        match cdef.parent {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                w.u32(p.0);
            }
        }
        w.u32(cdef.attributes.len() as u32);
        for a in &cdef.attributes {
            w.str(&a.name);
            write_data_type(w, a.ty);
            match a.index {
                None => w.u8(0),
                Some(IndexKind::Hash) => w.u8(1),
                Some(IndexKind::BTree) => w.u8(2),
            }
        }
    }
    w.u32(catalog.relationship_count() as u32);
    for (_, rdef) in catalog.relationships() {
        w.str(&rdef.name);
        write_relationship_end(w, &rdef.left);
        write_relationship_end(w, &rdef.right);
    }
}

/// Decodes the CATALOG section payload back into definition lists, ready
/// for `Catalog::from_parts` (which re-runs the builder's validation).
///
/// # Errors
/// [`LoadError::Malformed`] on any structural problem.
pub fn read_catalog(
    r: &mut ByteReader<'_>,
) -> Result<(Vec<sqo_catalog::ClassDef>, Vec<sqo_catalog::RelationshipDef>), LoadError> {
    let mut classes = Vec::new();
    for _ in 0..r.count()? {
        let name = r.str()?;
        let parent = match r.u8()? {
            0 => None,
            1 => Some(ClassId(r.u32()?)),
            t => return Err(r.malformed(format!("option tag {t} is neither 0 nor 1"))),
        };
        let mut attributes = Vec::new();
        for _ in 0..r.count()? {
            let aname = r.str()?;
            let ty = read_data_type(r)?;
            let index = match r.u8()? {
                0 => None,
                1 => Some(IndexKind::Hash),
                2 => Some(IndexKind::BTree),
                t => return Err(r.malformed(format!("unknown index-kind tag {t}"))),
            };
            attributes.push(sqo_catalog::AttributeDef { name: aname, ty, index });
        }
        classes.push(sqo_catalog::ClassDef { name, attributes, parent });
    }
    let mut relationships = Vec::new();
    for _ in 0..r.count()? {
        let name = r.str()?;
        let left = read_relationship_end(r)?;
        let right = read_relationship_end(r)?;
        relationships.push(sqo_catalog::RelationshipDef { name, left, right });
    }
    Ok((classes, relationships))
}

// ---- statistics -----------------------------------------------------------

fn write_attr_stats(w: &mut ByteWriter, s: &AttrStats) {
    w.u64(s.rows);
    w.u64(s.distinct);
    for v in [&s.min, &s.max] {
        match v {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                write_value(w, v);
            }
        }
    }
    w.u32(s.mcvs.len() as u32);
    for (v, n) in &s.mcvs {
        write_value(w, v);
        w.u64(*n);
    }
    w.u32(s.histogram.len() as u32);
    for &b in &s.histogram {
        w.u64(b);
    }
}

fn read_attr_stats(r: &mut ByteReader<'_>) -> Result<AttrStats, LoadError> {
    let rows = r.u64()?;
    let distinct = r.u64()?;
    let mut bounds = [None, None];
    for b in bounds.iter_mut() {
        *b = match r.u8()? {
            0 => None,
            1 => Some(read_value(r)?),
            t => return Err(r.malformed(format!("option tag {t} is neither 0 nor 1"))),
        };
    }
    let [min, max] = bounds;
    let mut mcvs = Vec::new();
    for _ in 0..r.count()? {
        let v = read_value(r)?;
        mcvs.push((v, r.u64()?));
    }
    let mut histogram = Vec::new();
    for _ in 0..r.count()? {
        histogram.push(r.u64()?);
    }
    Ok(AttrStats { rows, distinct, min, max, mcvs, histogram })
}

/// Encodes a [`StatsSnapshot`] into a STATS section payload.
pub fn write_stats(w: &mut ByteWriter, stats: &StatsSnapshot) {
    w.u32(stats.classes.len() as u32);
    for c in &stats.classes {
        w.u64(c.cardinality);
        w.u32(c.attrs.len() as u32);
        for a in &c.attrs {
            write_attr_stats(w, a);
        }
    }
    w.u32(stats.relationships.len() as u32);
    for r in &stats.relationships {
        w.u64(r.links);
        w.f64(r.avg_left_fanout);
        w.f64(r.avg_right_fanout);
    }
}

/// Decodes a STATS section payload.
///
/// # Errors
/// [`LoadError::Malformed`] on any structural problem.
pub fn read_stats(r: &mut ByteReader<'_>) -> Result<StatsSnapshot, LoadError> {
    let mut classes = Vec::new();
    for _ in 0..r.count()? {
        let cardinality = r.u64()?;
        let mut attrs = Vec::new();
        for _ in 0..r.count()? {
            attrs.push(read_attr_stats(r)?);
        }
        classes.push(ClassStats { cardinality, attrs });
    }
    let mut relationships = Vec::new();
    for _ in 0..r.count()? {
        relationships.push(RelStats {
            links: r.u64()?,
            avg_left_fanout: r.f64()?,
            avg_right_fanout: r.f64()?,
        });
    }
    Ok(StatsSnapshot { classes, relationships })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T, W, R>(value: &T, write: W, read: R) -> T
    where
        W: Fn(&mut ByteWriter, &T),
        R: Fn(&mut ByteReader<'_>) -> Result<T, LoadError>,
    {
        let mut w = ByteWriter::new();
        write(&mut w, value);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf, "TEST");
        let out = read(&mut r).unwrap();
        r.expect_exhausted().unwrap();
        out
    }

    #[test]
    fn value_roundtrips() {
        for v in [
            Value::Int(-7),
            Value::Float(Finite::new(1.25).unwrap()),
            Value::str("abc"),
            Value::Bool(true),
        ] {
            assert_eq!(roundtrip(&v, write_value, read_value), v);
        }
    }

    #[test]
    fn nan_float_is_rejected() {
        // A NaN bit pattern after the Float tag.
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u64(f64::NAN.to_bits());
        let buf = w.finish();
        let mut r = ByteReader::new(&buf, "TEST");
        assert!(read_value(&mut r).is_err());
    }

    #[test]
    fn value_set_roundtrips() {
        for s in [
            ValueSet::point(Value::Int(4)),
            ValueSet::at_least(Value::str("m")),
            ValueSet::hole(Value::Int(0)),
            ValueSet::everything(),
        ] {
            assert_eq!(roundtrip(&s, write_value_set, read_value_set), s);
        }
    }

    #[test]
    fn predicate_roundtrips() {
        let a = AttrRef::new(ClassId(1), AttrId(2));
        let b = AttrRef::new(ClassId(0), AttrId(0));
        let sel = Predicate::Sel(SelPredicate::new(a, CompOp::Ge, Value::Int(10)));
        let join = Predicate::Join(JoinPredicate::new(a, CompOp::Lt, b));
        assert_eq!(roundtrip(&sel, write_predicate, read_predicate), sel);
        assert_eq!(roundtrip(&join, write_predicate, read_predicate), join);
    }

    #[test]
    fn query_roundtrips() {
        let a = AttrRef::new(ClassId(0), AttrId(1));
        let b = AttrRef::new(ClassId(1), AttrId(0));
        let q = Query {
            projections: vec![
                Projection { attr: a, binding: None },
                Projection { attr: b, binding: Some(Value::str("x")) },
            ],
            join_predicates: vec![JoinPredicate::new(a, CompOp::Eq, b)],
            selective_predicates: vec![SelPredicate::new(a, CompOp::Ne, Value::Bool(false))],
            relationships: vec![RelId(0), RelId(3)],
            classes: vec![ClassId(0), ClassId(1)],
        };
        assert_eq!(roundtrip(&q, write_query, read_query), q);
    }

    #[test]
    fn catalog_roundtrips_through_defs() {
        let catalog = sqo_catalog::example::figure21().unwrap();
        let mut w = ByteWriter::new();
        write_catalog(&mut w, &catalog);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf, "TEST");
        let (classes, relationships) = read_catalog(&mut r).unwrap();
        r.expect_exhausted().unwrap();
        assert_eq!(classes.len(), catalog.class_count());
        assert_eq!(relationships.len(), catalog.relationship_count());
        for ((_, orig), decoded) in catalog.classes().zip(&classes) {
            assert_eq!(orig, decoded);
        }
        for ((_, orig), decoded) in catalog.relationships().zip(&relationships) {
            assert_eq!(orig, decoded);
        }
    }

    #[test]
    fn stats_roundtrip() {
        let stats = StatsSnapshot {
            classes: vec![ClassStats {
                cardinality: 3,
                attrs: vec![AttrStats {
                    rows: 3,
                    distinct: 2,
                    min: Some(Value::Int(1)),
                    max: Some(Value::Int(9)),
                    mcvs: vec![(Value::Int(1), 2)],
                    histogram: vec![1, 0, 2],
                }],
            }],
            relationships: vec![RelStats { links: 4, avg_left_fanout: 2.0, avg_right_fanout: 1.0 }],
        };
        assert_eq!(roundtrip(&stats, write_stats, read_stats), stats);
    }
}
