//! Little-endian byte writer/reader primitives.
//!
//! All multi-byte integers in the `.sqos` format are little-endian
//! (`docs/FORMAT.md` §2). The reader is built for untrusted input: every
//! read is bounds-checked and fails with a section-tagged
//! [`LoadError::Malformed`], and decoded counts never pre-allocate more
//! than a small constant (callers grow vectors element by element).

use crate::error::LoadError;

/// Append-only little-endian encoder for one section payload.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as the little-endian bytes of its IEEE-754 bit
    /// pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a `u32` byte-length prefix followed by the UTF-8 bytes.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes raw bytes verbatim (no length prefix).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked little-endian decoder over one section payload.
///
/// Carries the section's human-readable name so every failure is a
/// section-tagged [`LoadError::Malformed`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, tagging errors with `section`.
    pub fn new(buf: &'a [u8], section: &'static str) -> Self {
        Self { buf, pos: 0, section }
    }

    /// The section name errors are tagged with.
    pub fn section(&self) -> &'static str {
        self.section
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// A section-tagged [`LoadError::Malformed`] at the current position.
    pub fn malformed(&self, detail: impl Into<String>) -> LoadError {
        LoadError::Malformed { section: self.section, detail: detail.into() }
    }

    /// Fails unless every byte of the payload has been consumed — trailing
    /// garbage means the encoder and decoder disagree about the layout.
    ///
    /// # Errors
    /// [`LoadError::Malformed`] when bytes remain.
    pub fn expect_exhausted(&self) -> Result<(), LoadError> {
        if self.remaining() != 0 {
            return Err(self.malformed(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }

    /// Reads exactly `N` bytes as a fixed-width array. `take(N)` returns
    /// an `N`-byte slice by construction, so the conversion maps its
    /// impossible failure into the same malformed-input error instead of
    /// panicking.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], LoadError> {
        let bytes = self.take(N)?;
        bytes.try_into().map_err(|_| self.malformed("fixed-width field"))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        if self.remaining() < n {
            return Err(self.malformed(format!(
                "short read: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`LoadError::Malformed`] on a short read.
    pub fn u8(&mut self) -> Result<u8, LoadError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    /// [`LoadError::Malformed`] on a short read.
    pub fn u16(&mut self) -> Result<u16, LoadError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`LoadError::Malformed`] on a short read.
    pub fn u32(&mut self) -> Result<u32, LoadError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`LoadError::Malformed`] on a short read.
    pub fn u64(&mut self) -> Result<u64, LoadError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    /// [`LoadError::Malformed`] on a short read.
    pub fn i64(&mut self) -> Result<i64, LoadError> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    /// Reads an `f64` from the little-endian bytes of its IEEE-754 bit
    /// pattern.
    ///
    /// # Errors
    /// [`LoadError::Malformed`] on a short read.
    pub fn f64(&mut self) -> Result<f64, LoadError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32` length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`LoadError::Malformed`] on a short read or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, LoadError> {
        Ok(self.str_ref()?.to_owned())
    }

    /// Reads a `u32` length-prefixed UTF-8 string without copying it out of
    /// the payload. The hot decode paths use this to allocate at most once
    /// per string (or not at all, via a [`crate::StrPool`]).
    ///
    /// # Errors
    /// [`LoadError::Malformed`] on a short read or invalid UTF-8.
    pub fn str_ref(&mut self) -> Result<&'a str, LoadError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| self.malformed("invalid utf-8 in string"))
    }

    /// Reads a `u32` element count for a sequence that follows. The count is
    /// sanity-bounded by the remaining payload (each element needs at least
    /// one byte), so a hostile count cannot drive a huge pre-allocation.
    ///
    /// # Errors
    /// [`LoadError::Malformed`] when the count exceeds the bytes left.
    pub fn count(&mut self) -> Result<usize, LoadError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(self.malformed(format!(
                "count {n} exceeds the {} bytes left in the section",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_strings() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(123_456);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.f64(2.5);
        w.str("héllo");
        let buf = w.finish();
        let mut r = ByteReader::new(&buf, "TEST");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.str().unwrap(), "héllo");
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn short_reads_are_malformed_not_panics() {
        let mut r = ByteReader::new(&[1, 2], "TEST");
        let err = r.u64().unwrap_err();
        assert!(matches!(err, LoadError::Malformed { section: "TEST", .. }), "{err}");
    }

    #[test]
    fn hostile_count_is_rejected() {
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf, "TEST");
        assert!(r.count().is_err());
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let buf = [0u8; 3];
        let mut r = ByteReader::new(&buf, "TEST");
        r.u8().unwrap();
        assert!(r.expect_exhausted().is_err());
    }
}
