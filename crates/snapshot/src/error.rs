//! Validation levels and the load-failure taxonomy.

use std::fmt;

/// How deeply a snapshot is verified before the engine trusts it.
///
/// Levels are ordered: each level implies everything the previous one
/// checks. `docs/VALIDATION.md` specifies the exact invariant set and the
/// threat model each level addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ValidationLevel {
    /// Container integrity: magic, version, section-table bounds,
    /// per-section checksums, and the structural shape checks decoding
    /// needs to be panic-free (counts, arities, cardinalities).
    #[default]
    Standard,
    /// Everything in [`ValidationLevel::Standard`], plus semantic
    /// invariants: value types match the catalog, index postings are
    /// ascending, adjacency is in canonical order, and every id (class,
    /// relationship, attribute, object) resolves — no dangling references.
    Strict,
    /// Everything in [`ValidationLevel::Strict`], plus full re-derivation
    /// cross-checks: indexes, right-to-left adjacency, statistics and the
    /// constraint closure are rebuilt from primary data and compared to the
    /// persisted copies. Suitable as a test oracle.
    Audit,
}

impl ValidationLevel {
    /// Whether this level includes Strict's semantic invariant checks.
    pub fn at_least_strict(self) -> bool {
        self >= ValidationLevel::Strict
    }

    /// Whether this level includes Audit's re-derivation cross-checks.
    pub fn is_audit(self) -> bool {
        self == ValidationLevel::Audit
    }
}

impl fmt::Display for ValidationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationLevel::Standard => write!(f, "standard"),
            ValidationLevel::Strict => write!(f, "strict"),
            ValidationLevel::Audit => write!(f, "audit"),
        }
    }
}

/// Why a snapshot failed to load. Each variant names the validation level
/// that detects it (documented per-variant); `docs/VALIDATION.md` has the
/// full mapping table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The file is shorter than the fixed 12-byte header (Standard).
    TruncatedHeader,
    /// The first four bytes are not `b"SQOS"` (Standard).
    BadMagic,
    /// The header's format version is newer than this build understands
    /// (Standard).
    UnsupportedVersion(u16),
    /// A section-table entry points outside the file, or the section table
    /// itself does not fit (Standard).
    SectionOutOfBounds {
        /// The offending section id (0 when the table itself is truncated).
        section: u32,
    },
    /// The same section id appears twice in the table (Standard).
    DuplicateSection(u32),
    /// A section this loader requires is absent (Standard).
    MissingSection(&'static str),
    /// A section payload does not hash to its table checksum (Standard).
    ChecksumMismatch {
        /// Human-readable section name (see [`crate::section_name`]).
        section: &'static str,
        /// The checksum recorded in the section table.
        expected: u64,
        /// The FNV-1a 64 hash of the payload as read.
        actual: u64,
    },
    /// A section payload is structurally malformed: short reads, bad tags,
    /// counts that contradict the catalog (Standard).
    Malformed {
        /// Human-readable section name.
        section: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// An index posting or B-tree key sequence is out of canonical order
    /// (Strict).
    UnsortedPosting {
        /// Human-readable section name.
        section: &'static str,
        /// Which posting, and how it is out of order.
        detail: String,
    },
    /// An id (class, relationship, attribute, object, constraint) does not
    /// resolve against the decoded catalog or extents (Strict).
    DanglingReference {
        /// Human-readable section name.
        section: &'static str,
        /// The unresolved reference.
        detail: String,
    },
    /// A re-derivation cross-check failed: rebuilt indexes, adjacency,
    /// statistics or constraint closure differ from the persisted copies
    /// (Audit).
    AuditMismatch {
        /// Which re-derivation disagreed.
        detail: String,
    },
    /// An underlying I/O failure while reading or writing the file.
    Io(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::TruncatedHeader => write!(f, "file shorter than the 12-byte header"),
            LoadError::BadMagic => write!(f, "bad magic (expected \"SQOS\")"),
            LoadError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            LoadError::SectionOutOfBounds { section } => {
                write!(f, "section {section} extends past the end of the file")
            }
            LoadError::DuplicateSection(id) => write!(f, "section id {id} appears twice"),
            LoadError::MissingSection(name) => write!(f, "required section {name} is missing"),
            LoadError::ChecksumMismatch { section, expected, actual } => write!(
                f,
                "section {section} checksum mismatch (expected {expected:#018x}, got {actual:#018x})"
            ),
            LoadError::Malformed { section, detail } => {
                write!(f, "section {section} is malformed: {detail}")
            }
            LoadError::UnsortedPosting { section, detail } => {
                write!(f, "section {section} has an unsorted posting: {detail}")
            }
            LoadError::DanglingReference { section, detail } => {
                write!(f, "section {section} has a dangling reference: {detail}")
            }
            LoadError::AuditMismatch { detail } => {
                write!(f, "audit re-derivation mismatch: {detail}")
            }
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e.to_string())
    }
}
