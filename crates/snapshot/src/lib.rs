//! # sqo-snapshot
//!
//! The `.sqos` persistent snapshot container: a versioned, little-endian,
//! section-based on-disk format plus the byte-level codecs and the tiered
//! validation vocabulary the rest of the workspace builds on.
//!
//! This crate owns the *container* — magic, version, section table,
//! per-section checksums — and the codecs for the schema/query vocabulary
//! (values, predicates, queries, catalog definitions) that several sections
//! share. The section *payloads* are encoded by the crates that own the
//! state: `sqo-storage::persist` (extents, indexes, links, statistics),
//! `sqo-exec::persist` (plan skeletons) and `sqo-service::persist`
//! (constraints, plan-cache seeds).
//!
//! The format is specified normatively in `docs/FORMAT.md`; the validation
//! levels in `docs/VALIDATION.md`. The code here is an implementation of
//! those documents, not their definition.
//!
//! ## Trust model
//!
//! A snapshot file is untrusted input. Every read is bounds-checked, every
//! length is validated before use, and no decoded count pre-allocates
//! unbounded memory. Failures surface as [`LoadError`] — never a panic, and
//! never a partially-initialized store.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod bytes;
mod codec;
mod container;
mod error;

pub use bytes::{ByteReader, ByteWriter};
pub use codec::{
    read_attr_ref, read_bound, read_catalog, read_comp_op, read_data_type, read_join_predicate,
    read_predicate, read_projection, read_query, read_sel_predicate, read_stats, read_value,
    read_value_pooled, read_value_raw, read_value_set, write_attr_ref, write_bound, write_catalog,
    write_comp_op, write_data_type, write_join_predicate, write_predicate, write_projection,
    write_query, write_sel_predicate, write_stats, write_value, write_value_raw, write_value_set,
    StrPool,
};
pub use container::{
    section_checksum, section_name, SnapshotBuilder, SnapshotFile, FORMAT_VERSION, MAGIC,
    SEC_CATALOG, SEC_CONSTRAINTS, SEC_EXTENTS, SEC_INDEXES, SEC_LINKS, SEC_PLANSEEDS, SEC_STATS,
};
pub use error::{LoadError, ValidationLevel};
