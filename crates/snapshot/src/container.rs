//! The `.sqos` container: header, section table, checksums.
//!
//! Layout (`docs/FORMAT.md` is normative):
//!
//! ```text
//! offset 0   magic          4 bytes   b"SQOS"
//! offset 4   version        u16 LE    currently 1
//! offset 6   flags          u16 LE    currently 0, reserved
//! offset 8   section_count  u32 LE
//! offset 12  section table  section_count × 28 bytes:
//!              id        u32 LE
//!              offset    u64 LE   absolute byte offset of the payload
//!              length    u64 LE   payload length in bytes
//!              checksum  u64 LE   [`section_checksum`] of the payload
//! ...        payloads at their recorded offsets
//! ```
//!
//! There is deliberately **no** header or table checksum: a tampered table
//! entry maps deterministically to [`LoadError::SectionOutOfBounds`] or
//! [`LoadError::ChecksumMismatch`], which is the same clean rejection a
//! checksum would give (see the threat model in `docs/VALIDATION.md`).
//! Unknown section ids are skipped, which is the format's forward-compat
//! rule: old readers load new files, ignoring sections they do not know.

use crate::bytes::{ByteReader, ByteWriter};
use crate::error::LoadError;

/// The four magic bytes every `.sqos` file starts with.
pub const MAGIC: [u8; 4] = *b"SQOS";
/// The container format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Section id: catalog definitions (classes, relationships).
pub const SEC_CATALOG: u32 = 1;
/// Section id: class extents (typed tuples) and the data epoch.
pub const SEC_EXTENTS: u32 = 2;
/// Section id: relationship link tables in canonical adjacency order.
pub const SEC_LINKS: u32 = 3;
/// Section id: attribute index banks with ascending-oid postings.
pub const SEC_INDEXES: u32 = 4;
/// Section id: the folded statistics snapshot.
pub const SEC_STATS: u32 = 5;
/// Section id: the constraint store (constraints, options, identity).
pub const SEC_CONSTRAINTS: u32 = 6;
/// Section id: warm plan-cache seeds (fingerprint → plan skeleton).
pub const SEC_PLANSEEDS: u32 = 7;

const HEADER_LEN: usize = 12;
const ENTRY_LEN: usize = 28;

/// Human-readable name of a known section id (`"?"` for unknown ids); used
/// to tag [`LoadError`] variants.
pub fn section_name(id: u32) -> &'static str {
    match id {
        SEC_CATALOG => "CATALOG",
        SEC_EXTENTS => "EXTENTS",
        SEC_LINKS => "LINKS",
        SEC_INDEXES => "INDEXES",
        SEC_STATS => "STATS",
        SEC_CONSTRAINTS => "CONSTRAINTS",
        SEC_PLANSEEDS => "PLANSEEDS",
        _ => "?",
    }
}

/// The `.sqos` section checksum: FNV-1a 64-bit folded over 8-byte
/// little-endian chunks, with the tail chunk zero-padded and the payload
/// length XORed into the seed (`docs/FORMAT.md` §5).
///
/// Chunking keeps Standard-level validation roughly 8x faster than the
/// byte-at-a-time FNV used for query fingerprints while reusing its mixing
/// constants; seeding with the length keeps a zero-padded tail from
/// colliding with explicit trailing zero bytes.
pub fn section_checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ bytes.len() as u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Assembles a `.sqos` file from encoded section payloads.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one section payload. Sections are laid out in insertion
    /// order; ids must be unique (checked at [`SnapshotBuilder::finish`]
    /// time by the parser, not here).
    pub fn section(&mut self, id: u32, payload: Vec<u8>) -> &mut Self {
        self.sections.push((id, payload));
        self
    }

    /// Serializes header, section table and payloads into the final byte
    /// image.
    pub fn finish(self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(&MAGIC);
        w.u16(FORMAT_VERSION);
        w.u16(0); // flags, reserved
        w.u32(self.sections.len() as u32);
        let mut offset = (HEADER_LEN + ENTRY_LEN * self.sections.len()) as u64;
        for (id, payload) in &self.sections {
            w.u32(*id);
            w.u64(offset);
            w.u64(payload.len() as u64);
            w.u64(section_checksum(payload));
            offset += payload.len() as u64;
        }
        let mut buf = w.finish();
        for (_, payload) in self.sections {
            buf.extend_from_slice(&payload);
        }
        buf
    }
}

/// A parsed `.sqos` file: the section table resolved against the byte
/// image, with every Standard-level container check already passed.
#[derive(Debug)]
pub struct SnapshotFile<'a> {
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> SnapshotFile<'a> {
    /// Parses and validates the container at the Standard level: header
    /// length, magic, version, section-table bounds, per-section bounds,
    /// duplicate ids and payload checksums. Unknown section ids are kept
    /// (and checksummed) but otherwise ignored.
    ///
    /// # Errors
    /// [`LoadError::TruncatedHeader`], [`LoadError::BadMagic`],
    /// [`LoadError::UnsupportedVersion`], [`LoadError::SectionOutOfBounds`],
    /// [`LoadError::DuplicateSection`] or [`LoadError::ChecksumMismatch`].
    pub fn parse(bytes: &'a [u8]) -> Result<Self, LoadError> {
        if bytes.len() < HEADER_LEN {
            return Err(LoadError::TruncatedHeader);
        }
        if bytes[0..4] != MAGIC {
            return Err(LoadError::BadMagic);
        }
        let mut r = ByteReader::new(&bytes[4..HEADER_LEN], "HEADER");
        let version = r.u16().expect("header length checked");
        let _flags = r.u16().expect("header length checked");
        let count = r.u32().expect("header length checked") as usize;
        if version != FORMAT_VERSION {
            return Err(LoadError::UnsupportedVersion(version));
        }
        let table_end = HEADER_LEN
            .checked_add(
                count.checked_mul(ENTRY_LEN).ok_or(LoadError::SectionOutOfBounds { section: 0 })?,
            )
            .ok_or(LoadError::SectionOutOfBounds { section: 0 })?;
        if table_end > bytes.len() {
            return Err(LoadError::SectionOutOfBounds { section: 0 });
        }
        let mut sections: Vec<(u32, &'a [u8])> = Vec::with_capacity(count);
        let mut t = ByteReader::new(&bytes[HEADER_LEN..table_end], "HEADER");
        for _ in 0..count {
            let id = t.u32().expect("table length checked");
            let offset = t.u64().expect("table length checked");
            let len = t.u64().expect("table length checked");
            let checksum = t.u64().expect("table length checked");
            let end =
                offset.checked_add(len).ok_or(LoadError::SectionOutOfBounds { section: id })?;
            if offset < table_end as u64 || end > bytes.len() as u64 {
                return Err(LoadError::SectionOutOfBounds { section: id });
            }
            if sections.iter().any(|&(seen, _)| seen == id) {
                return Err(LoadError::DuplicateSection(id));
            }
            let payload = &bytes[offset as usize..end as usize];
            let actual = section_checksum(payload);
            if actual != checksum {
                return Err(LoadError::ChecksumMismatch {
                    section: section_name(id),
                    expected: checksum,
                    actual,
                });
            }
            sections.push((id, payload));
        }
        Ok(Self { sections })
    }

    /// The payload of section `id`, if present.
    pub fn section(&self, id: u32) -> Option<&'a [u8]> {
        self.sections.iter().find(|&&(sid, _)| sid == id).map(|&(_, p)| p)
    }

    /// The payload of section `id`, as a [`ByteReader`] tagged with the
    /// section's name.
    ///
    /// # Errors
    /// [`LoadError::MissingSection`] when the section is absent.
    pub fn require(&self, id: u32) -> Result<ByteReader<'a>, LoadError> {
        self.section(id)
            .map(|p| ByteReader::new(p, section_name(id)))
            .ok_or(LoadError::MissingSection(section_name(id)))
    }

    /// Every `(id, payload)` pair in file order, including unknown ids.
    pub fn sections(&self) -> impl Iterator<Item = (u32, &'a [u8])> + '_ {
        self.sections.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_section_file() -> Vec<u8> {
        let mut b = SnapshotBuilder::new();
        b.section(SEC_CATALOG, vec![1, 2, 3]);
        b.section(SEC_STATS, vec![9, 9]);
        b.finish()
    }

    #[test]
    fn roundtrip_parse() {
        let buf = two_section_file();
        let file = SnapshotFile::parse(&buf).unwrap();
        assert_eq!(file.section(SEC_CATALOG), Some(&[1u8, 2, 3][..]));
        assert_eq!(file.section(SEC_STATS), Some(&[9u8, 9][..]));
        assert_eq!(file.section(SEC_LINKS), None);
        assert!(matches!(file.require(SEC_LINKS), Err(LoadError::MissingSection("LINKS"))));
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(SnapshotFile::parse(&[]).unwrap_err(), LoadError::TruncatedHeader);
        assert_eq!(SnapshotFile::parse(b"SQOS\x01\x00").unwrap_err(), LoadError::TruncatedHeader);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = two_section_file();
        buf[0] = b'X';
        assert_eq!(SnapshotFile::parse(&buf).unwrap_err(), LoadError::BadMagic);
    }

    #[test]
    fn future_version_rejected() {
        let mut buf = two_section_file();
        buf[4] = 2;
        assert_eq!(SnapshotFile::parse(&buf).unwrap_err(), LoadError::UnsupportedVersion(2));
    }

    #[test]
    fn out_of_bounds_section_rejected() {
        let mut buf = two_section_file();
        // Patch the first table entry's length to reach past the file end.
        let len_at = 12 + 4 + 8;
        buf[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            SnapshotFile::parse(&buf).unwrap_err(),
            LoadError::SectionOutOfBounds { section: SEC_CATALOG }
        );
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_mismatch() {
        let mut buf = two_section_file();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(matches!(
            SnapshotFile::parse(&buf).unwrap_err(),
            LoadError::ChecksumMismatch { section: "STATS", .. }
        ));
    }

    #[test]
    fn duplicate_section_id_rejected() {
        let mut b = SnapshotBuilder::new();
        b.section(SEC_CATALOG, vec![1]);
        b.section(SEC_CATALOG, vec![2]);
        let buf = b.finish();
        assert_eq!(
            SnapshotFile::parse(&buf).unwrap_err(),
            LoadError::DuplicateSection(SEC_CATALOG)
        );
    }

    #[test]
    fn unknown_sections_are_skipped_not_fatal() {
        let mut b = SnapshotBuilder::new();
        b.section(SEC_CATALOG, vec![1]);
        b.section(0xDEAD, vec![42; 10]);
        let buf = b.finish();
        let file = SnapshotFile::parse(&buf).unwrap();
        assert_eq!(file.section(SEC_CATALOG), Some(&[1u8][..]));
        assert_eq!(file.section(0xDEAD), Some(&[42u8; 10][..]));
        assert_eq!(section_name(0xDEAD), "?");
    }

    #[test]
    fn truncating_the_file_midway_is_detected() {
        let buf = two_section_file();
        for cut in 0..buf.len() {
            assert!(SnapshotFile::parse(&buf[..cut]).is_err(), "cut at {cut} parsed");
        }
    }
}
