//! Physical query plans.
//!
//! The executor evaluates *pointer-join* plans, the natural shape for the
//! paper's OODB: one driving class accessed through a sequential scan or an
//! index, then one step per remaining class, each binding a new class by
//! chasing relationship links from an already-bound class. Selective
//! predicates run as residual filters at binding time; join predicates and
//! extra relationship edges (cycles) run as filters once both ends are bound.

use std::fmt;

use sqo_catalog::{AttrRef, Catalog, ClassId, RelId};
use sqo_query::{JoinPredicate, Projection, SelPredicate, ValueSet};

/// How the driving class's objects are produced.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Full extent scan.
    SeqScan,
    /// Index probe with a value set (point or range).
    Index { attr: AttrRef, set: ValueSet },
}

/// Accessing one class: path plus residual filters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassAccess {
    pub class: ClassId,
    pub path: AccessPath,
    /// Selective predicates evaluated on every produced object (for an index
    /// access, the indexed predicate itself is *not* repeated here).
    pub residual: Vec<SelPredicate>,
}

/// One pointer-join step: bind `access.class` by traversing `rel` from
/// `from_class` (already bound).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStep {
    pub rel: RelId,
    pub from_class: ClassId,
    pub access: ClassAccess,
    /// Join predicates checkable once this class is bound.
    pub join_filters: Vec<JoinPredicate>,
    /// Cycle edges: relationships whose both endpoints are bound after this
    /// step; the pair must be linked.
    pub link_filters: Vec<(RelId, ClassId, ClassId)>,
}

/// A complete physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    pub root: ClassAccess,
    pub steps: Vec<JoinStep>,
    pub projections: Vec<Projection>,
    /// Planner estimates (work units / rows) for diagnostics and the
    /// profitability oracle.
    pub estimated_cost: f64,
    pub estimated_rows: f64,
}

impl PhysicalPlan {
    /// Classes in binding order.
    pub fn binding_order(&self) -> Vec<ClassId> {
        let mut out = vec![self.root.class];
        out.extend(self.steps.iter().map(|s| s.access.class));
        out
    }

    /// Renders an EXPLAIN-style tree.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> PlanDisplay<'a> {
        PlanDisplay { plan: self, catalog }
    }
}

/// EXPLAIN-style pretty printer.
#[derive(Debug)]
pub struct PlanDisplay<'a> {
    plan: &'a PhysicalPlan,
    catalog: &'a Catalog,
}

impl fmt::Display for PlanDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.catalog;
        let p = self.plan;
        writeln!(f, "Plan (est. cost {:.2}, est. rows {:.1})", p.estimated_cost, p.estimated_rows)?;
        match &p.root.path {
            AccessPath::SeqScan => writeln!(f, "  SeqScan {}", c.class_name(p.root.class))?,
            AccessPath::Index { attr, .. } => writeln!(
                f,
                "  IndexScan {} via {}",
                c.class_name(p.root.class),
                c.qualified_attr_name(*attr)
            )?,
        }
        for r in &p.root.residual {
            writeln!(f, "    filter {} {} {}", c.qualified_attr_name(r.attr), r.op, r.value)?;
        }
        for s in &p.steps {
            writeln!(
                f,
                "  PointerJoin {} -[{}]-> {}",
                c.class_name(s.from_class),
                c.rel_name(s.rel),
                c.class_name(s.access.class)
            )?;
            for r in &s.access.residual {
                writeln!(f, "    filter {} {} {}", c.qualified_attr_name(r.attr), r.op, r.value)?;
            }
            for j in &s.join_filters {
                writeln!(
                    f,
                    "    join-filter {} {} {}",
                    c.qualified_attr_name(j.left),
                    j.op,
                    c.qualified_attr_name(j.right)
                )?;
            }
            for (rel, a, b) in &s.link_filters {
                writeln!(
                    f,
                    "    link-filter {} between {} and {}",
                    c.rel_name(*rel),
                    c.class_name(*a),
                    c.class_name(*b)
                )?;
            }
        }
        write!(f, "  Project [")?;
        for (i, pr) in p.projections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", c.qualified_attr_name(pr.attr))?;
            if let Some(b) = &pr.binding {
                write!(f, "={b}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::example::figure21;
    use sqo_catalog::Value;
    use sqo_query::CompOp;

    #[test]
    fn binding_order_lists_root_first() {
        let cat = figure21().unwrap();
        let vehicle = cat.class_id("vehicle").unwrap();
        let cargo = cat.class_id("cargo").unwrap();
        let plan = PhysicalPlan {
            root: ClassAccess { class: vehicle, path: AccessPath::SeqScan, residual: vec![] },
            steps: vec![JoinStep {
                rel: cat.rel_id("collects").unwrap(),
                from_class: vehicle,
                access: ClassAccess { class: cargo, path: AccessPath::SeqScan, residual: vec![] },
                join_filters: vec![],
                link_filters: vec![],
            }],
            projections: vec![],
            estimated_cost: 1.0,
            estimated_rows: 1.0,
        };
        assert_eq!(plan.binding_order(), vec![vehicle, cargo]);
    }

    #[test]
    fn display_renders_tree() {
        let cat = figure21().unwrap();
        let vehicle = cat.class_id("vehicle").unwrap();
        let plan = PhysicalPlan {
            root: ClassAccess {
                class: vehicle,
                path: AccessPath::Index {
                    attr: cat.attr_ref("vehicle", "vehicle_no").unwrap(),
                    set: ValueSet::point(Value::Int(3)),
                },
                residual: vec![SelPredicate::new(
                    cat.attr_ref("vehicle", "desc").unwrap(),
                    CompOp::Eq,
                    Value::str("flatbed"),
                )],
            },
            steps: vec![],
            projections: vec![Projection::plain(cat.attr_ref("vehicle", "desc").unwrap())],
            estimated_cost: 3.5,
            estimated_rows: 1.0,
        };
        let s = plan.display(&cat).to_string();
        assert!(s.contains("IndexScan vehicle via vehicle.vehicle_no"), "{s}");
        assert!(s.contains("filter vehicle.desc = \"flatbed\""), "{s}");
        assert!(s.contains("Project [vehicle.desc]"), "{s}");
    }
}
