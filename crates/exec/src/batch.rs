//! Batch execution tier: K probe bindings interleaved against one plan.
//!
//! [`execute_batch_with`] runs K independent probes of the same
//! [`PhysicalPlan`] as K depth-first machines advanced round-robin, one
//! traversal step per machine per round. Each machine executes *exactly*
//! the algorithm of [`crate::execute_with`] — same visit order, same rows,
//! same [`CostCounters`] — so the batched path is observationally
//! equivalent to K sequential executions; what changes is the memory-access
//! pattern. Interleaving keeps K index descents / link traversals in
//! flight at once (independent work for the out-of-order core) and walks K
//! candidate vectors that live side by side in one shared arena
//! (struct-of-arrays: slot `d * K + k` holds probe `k`'s survivors at plan
//! level `d`), which is where the single-thread throughput of the serving
//! tier's fingerprint-grouped warm batches comes from.
//!
//! A probe is either the plan run [`ProbeBinding::AsPlanned`] — the shape
//! the service's warm groups use, where every member shares one plan — or
//! the plan with its root index probe re-keyed
//! ([`ProbeBinding::RootSet`]), the parameterized-batch shape: one plan
//! skeleton, K distinct keys.

use sqo_catalog::{AttrRef, ClassId};
use sqo_query::ValueSet;
use sqo_storage::{CostCounters, Database, ObjectId};

use crate::error::ExecError;
use crate::executor::{emit, fill_step_level, produce, retain_residual};
use crate::plan::{AccessPath, ClassAccess, PhysicalPlan};
use crate::result::ResultSet;

/// How one probe of a batch binds the shared plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeBinding {
    /// Run the plan exactly as planned. A fingerprint-grouped warm batch is
    /// K copies of this: identical requests, one shared plan.
    AsPlanned,
    /// Run the plan with its root index probe re-keyed to this value set —
    /// one plan skeleton serving K distinct keys. The plan's root must be
    /// an [`AccessPath::Index`]; a sequential-scan root has no probe key to
    /// override and fails with [`ExecError::RootOverrideNeedsIndex`].
    RootSet(ValueSet),
}

impl ProbeBinding {
    /// The equivalent stand-alone plan of this probe: `plan` itself for
    /// [`ProbeBinding::AsPlanned`], or `plan` with the root probe set
    /// substituted. This is the sequential-path counterpart the
    /// equivalence tests (and the benchmark cross-checks) execute via
    /// [`crate::execute_with`].
    pub fn apply(&self, plan: &PhysicalPlan) -> Result<PhysicalPlan, ExecError> {
        let mut plan = plan.clone();
        if let ProbeBinding::RootSet(set) = self {
            let AccessPath::Index { set: planned, .. } = &mut plan.root.path else {
                return Err(ExecError::RootOverrideNeedsIndex(plan.root.class));
            };
            planned.clone_from(set);
        }
        Ok(plan)
    }
}

/// Reusable state of [`execute_batch_with`]: one shared candidate arena in
/// struct-of-arrays layout plus per-probe cursor, binding and progress
/// state. Keep one per worker thread; any (plan depth, batch width)
/// combination runs against any scratch — slots grow on demand and are
/// cleared before use.
#[derive(Debug, Default)]
pub struct BatchExecScratch {
    /// The shared candidate arena: `arena[d * width + k]` holds probe `k`'s
    /// surviving candidates at plan level `d` (root = 0). Probes of one
    /// level are adjacent, which is the cache-locality half of the batch
    /// tier's win.
    arena: Vec<Vec<ObjectId>>,
    /// `cursors[d * width + k]` = next candidate of `arena[d * width + k]`.
    cursors: Vec<usize>,
    /// `bindings[k]` = probe `k`'s partial binding stack.
    bindings: Vec<Vec<(ClassId, ObjectId)>>,
    /// `depth[k]` = the level probe `k`'s machine is currently walking.
    depth: Vec<usize>,
    /// `done[k]` = probe `k` exhausted its root level.
    done: Vec<bool>,
}

impl BatchExecScratch {
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, depths: usize, width: usize) {
        let slots = depths * width;
        if self.arena.len() < slots {
            self.arena.resize_with(slots, Vec::new);
        }
        for level in &mut self.arena[..slots] {
            level.clear();
        }
        self.cursors.clear();
        self.cursors.resize(slots, 0);
        if self.bindings.len() < width {
            self.bindings.resize_with(width, Vec::new);
        }
        for binding in &mut self.bindings[..width] {
            binding.clear();
        }
        self.depth.clear();
        self.depth.resize(width, 0);
        self.done.clear();
        self.done.resize(width, false);
    }
}

/// Executes `probes.len()` probes of `plan` against `db`, returning each
/// probe's result set and operation counters in probe order. Allocates
/// fresh state; hot callers should hold a [`BatchExecScratch`] and use
/// [`execute_batch_with`].
pub fn execute_batch(
    db: &Database,
    plan: &PhysicalPlan,
    probes: &[ProbeBinding],
) -> Result<Vec<(ResultSet, CostCounters)>, ExecError> {
    execute_batch_with(db, plan, probes, &mut BatchExecScratch::new())
}

/// [`execute_batch`] against reusable state.
///
/// Per probe, the emitted rows (in emission order) and the counters are
/// exactly those of [`crate::execute_with`] on that probe's equivalent
/// stand-alone plan ([`ProbeBinding::apply`]) — the machines are
/// independent; only their *interleaving* in time and their candidate
/// vectors' placement in memory differ from K sequential runs. An error in
/// any probe (all probe errors are plan-level, so under `AsPlanned` probes
/// they are identical across the batch) fails the whole call.
pub fn execute_batch_with(
    db: &Database,
    plan: &PhysicalPlan,
    probes: &[ProbeBinding],
    scratch: &mut BatchExecScratch,
) -> Result<Vec<(ResultSet, CostCounters)>, ExecError> {
    let width = probes.len();
    if width == 0 {
        return Ok(Vec::new());
    }
    let depths = plan.steps.len() + 1;
    scratch.reset(depths, width);
    let BatchExecScratch { arena, cursors, bindings, depth, done } = scratch;

    let columns: Vec<AttrRef> = plan.projections.iter().map(|p| p.attr).collect();
    let mut out: Vec<(ResultSet, CostCounters)> =
        (0..width).map(|_| (ResultSet::new(columns.clone()), CostCounters::new())).collect();

    // Root candidates, one batch-produce per probe: K index descents (or
    // extent scans) issued back to back before any traversal begins.
    for (k, probe) in probes.iter().enumerate() {
        produce_probe(db, &plan.root, probe, &mut out[k].1, &mut arena[k])?;
    }

    // Round-robin over the K depth-first machines: each live machine takes
    // one traversal step per round (bind the next candidate and either emit
    // or fill its child level — or pop a level when the current one is
    // exhausted). Per machine this is exactly `execute_with`'s loop body.
    let mut live = width;
    while live > 0 {
        for k in 0..width {
            if done[k] {
                continue;
            }
            let d = depth[k];
            let slot = d * width + k;
            let Some(&oid) = arena[slot].get(cursors[slot]) else {
                if d == 0 {
                    done[k] = true;
                    live -= 1;
                } else {
                    depth[k] = d - 1;
                }
                continue;
            };
            cursors[slot] += 1;
            let class = if d == 0 { plan.root.class } else { plan.steps[d - 1].access.class };
            let binding = &mut bindings[k];
            binding.truncate(d);
            binding.push((class, oid));

            let (result, counters) = &mut out[k];
            let Some(step) = plan.steps.get(d) else {
                emit(db, plan, binding, counters, result)?;
                continue;
            };
            let child = (d + 1) * width + k;
            fill_step_level(db, step, binding, counters, &mut arena[child])?;
            cursors[child] = 0;
            depth[k] = d + 1;
        }
    }
    Ok(out)
}

/// Root production for one probe: [`produce`] as planned, or the same
/// index-probe path with the probe's own key substituted.
fn produce_probe(
    db: &Database,
    root: &ClassAccess,
    probe: &ProbeBinding,
    counters: &mut CostCounters,
    out: &mut Vec<ObjectId>,
) -> Result<(), ExecError> {
    match probe {
        ProbeBinding::AsPlanned => produce(db, root, counters, out),
        ProbeBinding::RootSet(set) => {
            let AccessPath::Index { attr, .. } = &root.path else {
                return Err(ExecError::RootOverrideNeedsIndex(root.class));
            };
            out.clear();
            let index = db.index(*attr).ok_or(ExecError::MissingIndex(*attr))?;
            let scan = index.probe(set).ok_or(ExecError::UnsupportedProbe(*attr))?;
            counters.index_probes += 1;
            counters.index_entries += scan.probes.saturating_sub(1);
            out.extend(scan.oids);
            retain_residual(db, root, counters, out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::executor::{execute_with, ExecScratch};
    use crate::planner::plan_query;
    use sqo_catalog::example::figure21;
    use sqo_catalog::Value;
    use sqo_query::{CompOp, Query, QueryBuilder};
    use sqo_storage::IntegrityOptions;
    use std::sync::Arc;

    /// The executor test instance: 4 suppliers, 6 vehicles, 12 cargoes,
    /// supplies/collects round-robin.
    fn db() -> Database {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        let cargo = catalog.class_id("cargo").unwrap();
        let vehicle = catalog.class_id("vehicle").unwrap();
        for i in 0..4 {
            b.insert(supplier, vec![Value::str(format!("s{i}")), Value::str("x")]).unwrap();
        }
        for i in 0..6 {
            let desc = if i < 2 { "refrigerated truck" } else { "flatbed" };
            b.insert(vehicle, vec![Value::Int(i), Value::str(desc), Value::Int(i % 3)]).unwrap();
        }
        for i in 0..12i64 {
            let desc = if i % 2 == 0 { "frozen food" } else { "dry goods" };
            b.insert(cargo, vec![Value::Int(i), Value::str(desc), Value::Int(i)]).unwrap();
        }
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        for i in 0..12u32 {
            b.link(supplies, ObjectId(i), ObjectId(i % 4)).unwrap();
            b.link(collects, ObjectId(i), ObjectId(i % 6)).unwrap();
        }
        b.finalize(IntegrityOptions {
            enforce_total_participation: false,
            enforce_multiplicity: true,
        })
        .unwrap()
    }

    /// A large supplier extent so the planner roots at an index probe.
    fn indexed_db() -> Database {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        for i in 0..500 {
            b.insert(supplier, vec![Value::str(format!("s{i}")), Value::str("x")]).unwrap();
        }
        b.finalize(IntegrityOptions {
            enforce_total_participation: false,
            enforce_multiplicity: true,
        })
        .unwrap()
    }

    fn assert_batch_matches_sequential(db: &Database, q: &Query, probes: &[ProbeBinding]) {
        let plan = plan_query(db, q, &CostModel::default()).unwrap();
        let batched = execute_batch_with(db, &plan, probes, &mut BatchExecScratch::new()).unwrap();
        assert_eq!(batched.len(), probes.len());
        let mut seq_scratch = ExecScratch::new();
        for (probe, (rows, counters)) in probes.iter().zip(&batched) {
            let solo = probe.apply(&plan).unwrap();
            let (want_rows, want_counters) = execute_with(db, &solo, &mut seq_scratch).unwrap();
            assert_eq!(rows.rows, want_rows.rows, "emission order must match the sequential path");
            assert_eq!(counters, &want_counters, "per-probe counters must match");
        }
    }

    #[test]
    fn k1_degenerate_batch_matches_sequential() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .filter("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        assert_batch_matches_sequential(&db, &q, &[ProbeBinding::AsPlanned]);
    }

    #[test]
    fn duplicate_probes_each_match_sequential() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("vehicle.vehicle_no")
            .select("cargo.desc")
            .select("cargo.quantity")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("supplier.name", CompOp::Eq, "s0")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap();
        let probes = vec![ProbeBinding::AsPlanned; 8];
        assert_batch_matches_sequential(&db, &q, &probes);
    }

    #[test]
    fn rekeyed_root_probes_match_their_standalone_plans() {
        let db = indexed_db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("supplier.address")
            .filter("supplier.name", CompOp::Eq, "s1")
            .build()
            .unwrap();
        let plan = plan_query(&db, &q, &CostModel::default()).unwrap();
        assert!(matches!(plan.root.path, AccessPath::Index { .. }), "fixture must root at index");
        let probes: Vec<ProbeBinding> = (0..16)
            .map(|i| ProbeBinding::RootSet(ValueSet::point(Value::str(format!("s{}", i * 7)))))
            .collect();
        assert_batch_matches_sequential(&db, &q, &probes);
    }

    #[test]
    fn scratch_recycles_across_widths_and_shapes() {
        let db = db();
        let catalog = db.catalog().clone();
        let chain = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .select("vehicle.vehicle_no")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .via("collects")
            .build()
            .unwrap();
        let single = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .filter("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        let mut scratch = BatchExecScratch::new();
        for (q, width) in [(&chain, 16), (&single, 3), (&chain, 1), (&single, 9)] {
            let plan = plan_query(&db, q, &CostModel::default()).unwrap();
            let probes = vec![ProbeBinding::AsPlanned; width];
            let batched = execute_batch_with(&db, &plan, &probes, &mut scratch).unwrap();
            let (want, _) = execute_with(&db, &plan, &mut ExecScratch::new()).unwrap();
            for (rows, _) in &batched {
                assert_eq!(rows.rows, want.rows);
            }
        }
    }

    #[test]
    fn empty_probe_list_is_empty() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog).select("cargo.code").build().unwrap();
        let plan = plan_query(&db, &q, &CostModel::default()).unwrap();
        assert!(execute_batch(&db, &plan, &[]).unwrap().is_empty());
    }

    #[test]
    fn root_override_on_scan_root_errors() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .filter("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        let plan = plan_query(&db, &q, &CostModel::default()).unwrap();
        assert!(matches!(plan.root.path, AccessPath::SeqScan));
        let probe = ProbeBinding::RootSet(ValueSet::point(Value::str("x")));
        let err = execute_batch(&db, &plan, &[probe]).unwrap_err();
        assert!(matches!(err, ExecError::RootOverrideNeedsIndex(_)));
    }
}
