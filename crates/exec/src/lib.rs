//! # sqo-exec
//!
//! The conventional query processor for the `sqo` workspace: physical
//! pointer-join plans, a System-R-flavoured cost model, a greedy planner,
//! and a counting executor.
//!
//! §3.4 of the paper leans on "the cost model in the conventional query
//! optimizer" for the two cost–benefit decisions of query formulation
//! (optional-predicate retention and class elimination); `CostBasedOracle`
//! packages exactly that service for `sqo-core`.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

mod batch;
mod cost;
mod error;
mod executor;
mod oracle;
mod persist;
mod plan;
mod planner;
mod result;

pub use batch::{execute_batch, execute_batch_with, BatchExecScratch, ProbeBinding};
pub use cost::{point_of, CostModel};
pub use error::ExecError;
pub use executor::{execute, execute_with, ExecScratch};
pub use oracle::CostBasedOracle;
pub use persist::{read_plan, write_plan};
pub use plan::{AccessPath, ClassAccess, JoinStep, PhysicalPlan, PlanDisplay};
pub use planner::{plan_query, plan_query_shared};
pub use result::ResultSet;
