//! The cost-based profitability oracle (§3.4's `profitable(pⱼ)`).
//!
//! Implements `sqo-core`'s [`ProfitOracle`] by planning both candidate
//! queries with the conventional optimizer and comparing estimated work
//! units — precisely the paper's "estimating the possible cost savings and
//! overhead of retaining pⱼ, using a cost model and conventional query
//! optimization techniques".

use std::cell::RefCell;
use std::sync::Arc;

use sqo_catalog::ClassId;
use sqo_core::ProfitOracle;
use sqo_query::{Predicate, Query};
use sqo_storage::{Database, VersionedDatabase};

use crate::cost::CostModel;
use crate::planner::plan_query;

/// How many recently-costed queries the oracle remembers. Formulation asks
/// about overlapping `(with, without)` pairs — the `with` side of one
/// decision is the `with` or `without` side of the previous one — so a tiny
/// window already removes almost half of the planning work. The window is
/// sized to cover one full formulation pass over a typical query (a class
/// elimination round plus a handful of optional-predicate decisions), so a
/// candidate revisited later in the same `optimize_with` call still hits.
const COST_MEMO: usize = 8;

/// Where the oracle reads data and statistics from.
#[derive(Debug)]
enum DbSource<'db> {
    /// One immutable snapshot; costs can never go stale.
    Fixed(&'db Database),
    /// A mutable handle; every costing resolves the current snapshot.
    Versioned(&'db VersionedDatabase),
}

/// Plan-cost-comparing oracle over a concrete database instance.
///
/// Plan costs are memoized per oracle instance, keyed by the **data
/// version** they were estimated at: a snapshot-backed oracle
/// ([`CostBasedOracle::new`]) costs against one immutable snapshot and its
/// memo never goes stale, while a handle-backed oracle
/// ([`CostBasedOracle::versioned`]) re-resolves the current snapshot per
/// costing and silently drops memo entries from older data epochs — a
/// long-lived oracle over a mutable database re-costs after every write
/// instead of serving estimates for data that no longer exists.
///
/// The memo makes the oracle `!Sync` — use one oracle per thread, which is
/// how both the optimizer and the serving layer already drive it.
#[derive(Debug)]
pub struct CostBasedOracle<'db> {
    src: DbSource<'db>,
    model: CostModel,
    /// `(data version, query, estimated cost)`, most-recent first.
    memo: RefCell<Vec<(u64, Query, f64)>>,
}

impl<'db> CostBasedOracle<'db> {
    pub fn new(db: &'db Database) -> Self {
        Self::with_model(db, CostModel::default())
    }

    pub fn with_model(db: &'db Database, model: CostModel) -> Self {
        Self { src: DbSource::Fixed(db), model, memo: RefCell::new(Vec::with_capacity(COST_MEMO)) }
    }

    /// An oracle over a mutable database: cardinality estimates and the
    /// cost memo track the handle's current data epoch.
    pub fn versioned(handle: &'db VersionedDatabase) -> Self {
        Self::versioned_with_model(handle, CostModel::default())
    }

    pub fn versioned_with_model(handle: &'db VersionedDatabase, model: CostModel) -> Self {
        Self {
            src: DbSource::Versioned(handle),
            model,
            memo: RefCell::new(Vec::with_capacity(COST_MEMO)),
        }
    }

    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The (memoized) planner cost estimate the oracle's decisions compare —
    /// exposed for diagnostics and the data-epoch tests. `None` when the
    /// query cannot be planned.
    pub fn estimated_cost(&self, query: &Query) -> Option<f64> {
        self.cost_of(query)
    }

    /// Batch entry point: the memoized cost estimate of every query in
    /// `queries`, in order. The snapshot is resolved **once** for the whole
    /// batch — a versioned oracle otherwise re-resolves the current
    /// snapshot per costing — and every estimate is computed against those
    /// single coordinates, so the answers are mutually consistent even if
    /// a writer publishes a new data epoch mid-call.
    pub fn estimated_costs(&self, queries: &[&Query]) -> Vec<Option<f64>> {
        let mut hold: Option<Arc<Database>> = None;
        let (db, version) = self.resolve(&mut hold);
        queries.iter().map(|q| self.cost_at(db, version, q)).collect()
    }

    /// The oracle's current snapshot and data version; `hold` keeps a
    /// versioned handle's snapshot alive for the borrow.
    fn resolve<'a>(&'a self, hold: &'a mut Option<Arc<Database>>) -> (&'a Database, u64) {
        match self.src {
            DbSource::Fixed(db) => (db, db.data_version()),
            DbSource::Versioned(handle) => {
                let snapshot = hold.insert(handle.snapshot());
                (&**snapshot, snapshot.data_version())
            }
        }
    }

    fn cost_of(&self, q: &Query) -> Option<f64> {
        let mut hold: Option<Arc<Database>> = None;
        let (db, version) = self.resolve(&mut hold);
        self.cost_at(db, version, q)
    }

    /// One memoized costing against already-resolved coordinates.
    fn cost_at(&self, db: &Database, version: u64, q: &Query) -> Option<f64> {
        let mut memo = self.memo.borrow_mut();
        // Estimates from older data epochs are garbage now; drop them.
        memo.retain(|(v, _, _)| *v == version);
        if let Some(i) = memo.iter().position(|(_, mq, _)| mq == q) {
            let hit = memo.remove(i);
            let cost = hit.2;
            memo.insert(0, hit); // most-recent first
            return Some(cost);
        }
        let cost = plan_query(db, q, &self.model).ok().map(|p| p.estimated_cost)?;
        memo.truncate(COST_MEMO - 1);
        memo.insert(0, (version, q.clone(), cost));
        Some(cost)
    }
}

impl ProfitOracle for CostBasedOracle<'_> {
    fn retain_optional(&self, with: &Query, without: &Query, _pred: &Predicate) -> bool {
        match (self.cost_of(with), self.cost_of(without)) {
            (Some(w), Some(wo)) => w <= wo,
            // If either candidate fails to plan, keep the predicate: a
            // superfluous implied predicate is harmless, a lost one is not
            // recoverable here.
            _ => true,
        }
    }

    fn eliminate_class(&self, with: &Query, without: &Query, _class: ClassId) -> bool {
        match (self.cost_of(with), self.cost_of(without)) {
            (Some(w), Some(wo)) => wo <= w,
            // If the reduced query cannot be planned, keep the class.
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::{example::figure21, Value};
    use sqo_constraints::{figure22, ConstraintStore, StoreOptions};
    use sqo_core::SemanticOptimizer;
    use sqo_query::{parse_query, QueryExt};
    use sqo_storage::{IntegrityOptions, ObjectId};
    use std::sync::Arc;

    /// A Figure 2.1 instance where the Figure 2.3 query has work to save.
    fn fig_db() -> Database {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        let cargo = catalog.class_id("cargo").unwrap();
        let vehicle = catalog.class_id("vehicle").unwrap();
        for i in 0..50 {
            let name = if i == 0 { "SFI".to_string() } else { format!("s{i}") };
            b.insert(supplier, vec![Value::str(name), Value::str("addr")]).unwrap();
        }
        for i in 0..40 {
            let desc = if i % 4 == 0 { "refrigerated truck" } else { "flatbed" };
            b.insert(vehicle, vec![Value::Int(i), Value::str(desc), Value::Int(i % 5)]).unwrap();
        }
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        for i in 0..200i64 {
            // Cargo on a refrigerated truck is frozen food (c1) and then
            // comes from SFI (c2); everything else is spread around.
            let v = (i % 40) as u32;
            let frozen = v % 4 == 0;
            let desc = if frozen { "frozen food" } else { "dry goods" };
            let oid =
                b.insert(cargo, vec![Value::Int(i), Value::str(desc), Value::Int(i % 97)]).unwrap();
            let s = if frozen { 0u32 } else { 1 + (i as u32 % 49) };
            b.link(supplies, oid, ObjectId(s)).unwrap();
            b.link(collects, oid, ObjectId(v)).unwrap();
        }
        b.finalize(IntegrityOptions {
            enforce_total_participation: false,
            enforce_multiplicity: true,
        })
        .unwrap()
    }

    fn fig23_query(catalog: &sqo_catalog::Catalog) -> Query {
        parse_query(
            r#"(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
                {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
                {collects, supplies} {supplier, cargo, vehicle})"#,
            catalog,
        )
        .unwrap()
    }

    #[test]
    fn instance_satisfies_paper_constraints() {
        let db = fig_db();
        let catalog = db.catalog().clone();
        for c in figure22(&catalog).unwrap() {
            // c3..c5 reference empty classes and hold vacuously.
            assert!(db.check_constraint(&c).is_empty(), "{} violated", c.name);
        }
    }

    #[test]
    fn optimized_query_returns_same_answer_and_costs_less() {
        let db = fig_db();
        let catalog = db.catalog().clone();
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            figure22(&catalog).unwrap(),
            StoreOptions::paper_defaults(),
        )
        .unwrap();
        let optimizer = SemanticOptimizer::new(&store);
        let oracle = CostBasedOracle::new(&db);
        let query = fig23_query(&catalog);
        let out = optimizer.optimize(&query, &oracle).unwrap();

        let model = CostModel::default();
        let plan_orig = plan_query(&db, &query, &model).unwrap();
        let plan_opt = plan_query(&db, &out.query, &model).unwrap();
        let (res_orig, cnt_orig) = crate::execute(&db, &plan_orig).unwrap();
        let (res_opt, cnt_opt) = crate::execute(&db, &plan_opt).unwrap();

        assert!(
            res_orig.same_multiset(&res_opt),
            "semantic optimization must preserve results:\noriginal: {}\noptimized: {}",
            res_orig.render(&catalog, 10),
            res_opt.render(&catalog, 10)
        );
        // The cost model may legitimately keep the indexed supplier probe
        // as the driving access (elimination not profitable here); what it
        // must never do is make things meaningfully worse — the paper's
        // small-DB overhead stayed within ~10%.
        let cost_orig = model.measured(&cnt_orig);
        let cost_opt = model.measured(&cnt_opt);
        assert!(
            cost_opt <= cost_orig * 1.10,
            "optimized {cost_opt} should stay within 10% of original {cost_orig}\n{}",
            out.query.display(&catalog)
        );
    }

    #[test]
    fn forced_elimination_preserves_results_on_real_data() {
        // StructuralOracle always eliminates: the supplier class goes away,
        // and because `supplies` is total + to-one from cargo, the answer is
        // unchanged on the loaded instance.
        let db = fig_db();
        let catalog = db.catalog().clone();
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            figure22(&catalog).unwrap(),
            StoreOptions::paper_defaults(),
        )
        .unwrap();
        let optimizer = SemanticOptimizer::new(&store);
        let query = fig23_query(&catalog);
        let out = optimizer.optimize(&query, &sqo_core::StructuralOracle).unwrap();
        assert_eq!(out.report.eliminated_classes.len(), 1);

        let model = CostModel::default();
        let plan_orig = plan_query(&db, &query, &model).unwrap();
        let plan_opt = plan_query(&db, &out.query, &model).unwrap();
        let (res_orig, _) = crate::execute(&db, &plan_orig).unwrap();
        let (res_opt, _) = crate::execute(&db, &plan_opt).unwrap();
        assert!(res_orig.same_multiset(&res_opt));
    }

    #[test]
    fn versioned_oracle_tracks_the_data_epoch() {
        use sqo_storage::{DataWrite, VersionedDatabase};

        let db = fig_db();
        let catalog = db.catalog().clone();
        let handle = VersionedDatabase::new(Arc::new(db));
        let oracle = CostBasedOracle::versioned(&handle);
        let cargo_scan = parse_query(
            r#"(SELECT {cargo.desc} {} {cargo.desc = "dry goods"} {} {cargo})"#,
            &catalog,
        )
        .unwrap();
        let before = oracle.estimated_cost(&cargo_scan).expect("plannable");
        // Same query, same epoch: the memo answers (and must agree).
        assert_eq!(oracle.estimated_cost(&cargo_scan), Some(before));

        // Grow cargo substantially; every new instance keeps the constraint
        // and integrity story intact by duplicating an existing dry-goods
        // cargo with its links.
        let cargo = catalog.class_id("cargo").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        let snapshot = handle.snapshot();
        let src = sqo_storage::ObjectId(1); // i=1 is dry goods
        let tuple = snapshot.tuple(cargo, src).unwrap().to_vec();
        let links = vec![
            (supplies, snapshot.traverse(supplies, cargo, src).unwrap()[0]),
            (collects, snapshot.traverse(collects, cargo, src).unwrap()[0]),
        ];
        let batch: Vec<DataWrite> = (0..400)
            .map(|_| DataWrite::Insert { class: cargo, tuple: tuple.clone(), links: links.clone() })
            .collect();
        handle.write(&batch).unwrap();

        // The memo must not serve the stale pre-write estimate: tripling the
        // extent makes the scan strictly more expensive.
        let after = oracle.estimated_cost(&cargo_scan).expect("plannable");
        assert!(
            after > before,
            "estimates must track the data epoch: before {before}, after {after}"
        );

        // A snapshot-backed oracle over the *old* snapshot keeps answering
        // for its own (immutable) epoch.
        let fixed = CostBasedOracle::new(&snapshot);
        let frozen = fixed.estimated_cost(&cargo_scan).unwrap();
        assert!((frozen - before).abs() < 1e-9);
    }

    #[test]
    fn estimates_agree_between_patched_and_rebuilt_snapshots() {
        // The oracle's memo stays keyed by data epoch; what the incremental
        // storage rewrite must guarantee is that an `Arc`-patched successor
        // yields bit-identical statistics — and therefore identical plan
        // cost estimates — to a from-scratch rebuild of the same state.
        use sqo_storage::DataWrite;

        let db = fig_db();
        let catalog = db.catalog().clone();
        let cargo = catalog.class_id("cargo").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        let src = ObjectId(1); // dry goods
        let tuple = db.tuple(cargo, src).unwrap().to_vec();
        let links = vec![
            (supplies, db.traverse(supplies, cargo, src).unwrap()[0]),
            (collects, db.traverse(collects, cargo, src).unwrap()[0]),
        ];
        let batch = vec![
            DataWrite::Insert { class: cargo, tuple: tuple.clone(), links: links.clone() },
            DataWrite::Insert { class: cargo, tuple, links },
            DataWrite::Delete { class: cargo, object: ObjectId(3) },
        ];
        let (patched, _) = db.with_writes(&batch, None).unwrap();
        let (rebuilt, _) = db.with_writes_full(&batch, None).unwrap();
        assert_eq!(patched.stats(), rebuilt.stats());
        let o_patched = CostBasedOracle::new(&patched);
        let o_rebuilt = CostBasedOracle::new(&rebuilt);
        let queries = [
            fig23_query(&catalog),
            parse_query(
                r#"(SELECT {cargo.desc} {} {cargo.desc = "dry goods"} {} {cargo})"#,
                &catalog,
            )
            .unwrap(),
        ];
        for q in &queries {
            let a = o_patched.estimated_cost(q).expect("plannable");
            let b = o_rebuilt.estimated_cost(q).expect("plannable");
            assert_eq!(a, b, "estimates diverged between patched and rebuilt snapshots");
        }
    }

    #[test]
    fn batch_costs_agree_with_single_costings() {
        let db = fig_db();
        let catalog = db.catalog().clone();
        let full = fig23_query(&catalog);
        let scan = parse_query(
            r#"(SELECT {cargo.desc} {} {cargo.desc = "dry goods"} {} {cargo})"#,
            &catalog,
        )
        .unwrap();
        let broken = Query::new();
        let batch_oracle = CostBasedOracle::new(&db);
        let batched = batch_oracle.estimated_costs(&[&full, &scan, &broken, &full]);
        let solo_oracle = CostBasedOracle::new(&db);
        let solo: Vec<Option<f64>> =
            [&full, &scan, &broken, &full].map(|q| solo_oracle.estimated_cost(q)).to_vec();
        assert_eq!(batched, solo);
        assert!(batched[0].is_some() && batched[1].is_some());
        assert_eq!(batched[2], None);
        assert_eq!(batched[0], batched[3], "repeat in one batch must hit the memo");
    }

    #[test]
    fn oracle_keeps_class_when_planning_fails() {
        let db = fig_db();
        let oracle = CostBasedOracle::new(&db);
        let catalog = db.catalog().clone();
        let good = fig23_query(&catalog);
        let broken = Query::new(); // unplannable
        assert!(!oracle.eliminate_class(&good, &broken, ClassId(0)));
        // And keeps predicates under the same failure.
        let p = Predicate::sel(
            catalog.attr_ref("cargo", "desc").unwrap(),
            sqo_query::CompOp::Eq,
            "frozen food",
        );
        assert!(oracle.retain_optional(&broken, &broken, &p));
    }
}
