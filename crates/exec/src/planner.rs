//! The conventional query optimizer: access-path selection and greedy
//! pointer-join ordering.
//!
//! This is deliberately a classic early-90s planner: per-class access paths
//! (index when a predicate allows it, scan otherwise), then a greedy join
//! order that always expands the cheapest frontier relationship, with
//! System-R-style selectivity estimates. The semantic optimizer consults it
//! through [`crate::CostBasedOracle`] for every cost–benefit decision.

use sqo_catalog::{Catalog, ClassId, RelId};
use sqo_query::{JoinPredicate, Query, SelPredicate};
use sqo_storage::Database;

use crate::cost::CostModel;
use crate::error::ExecError;
use crate::plan::{AccessPath, ClassAccess, JoinStep, PhysicalPlan};

/// Join predicates that become checkable when `to_class` is bound on top of
/// `bound` — the single source both for candidate *costing* (`.count()`)
/// and for materializing the winning step's filter list, so the two can
/// never diverge.
fn step_join_filters<'q>(
    query: &'q Query,
    applied_joins: &'q [JoinPredicate],
    bound: &'q [ClassId],
    to_class: ClassId,
) -> impl Iterator<Item = &'q JoinPredicate> {
    query.join_predicates.iter().filter(|j| !applied_joins.contains(j)).filter(move |j| {
        let (x, y) = j.classes();
        let after = |c: ClassId| c == to_class || bound.contains(&c);
        after(x) && after(y) && (x == to_class || y == to_class)
    })
}

/// Cycle edges closed when `to_class` is bound via `rel`: other unused
/// relationships whose both endpoints are then bound. Shared between
/// costing and materialization like [`step_join_filters`].
fn step_link_filters<'q>(
    query: &'q Query,
    catalog: &'q Catalog,
    used_rels: &'q [RelId],
    bound: &'q [ClassId],
    rel: RelId,
    to_class: ClassId,
) -> impl Iterator<Item = (RelId, ClassId, ClassId)> + 'q {
    query.relationships.iter().filter_map(move |&r2| {
        if r2 == rel || used_rels.contains(&r2) {
            return None;
        }
        let d2 = catalog.relationship(r2).ok()?;
        let (x, y) = d2.classes();
        let after = |c: ClassId| c == to_class || bound.contains(&c);
        if after(x) && after(y) && (x == to_class || y == to_class) {
            Some((r2, x, y))
        } else {
            None
        }
    })
}

/// Plans `query` against `db` with `model`.
///
/// `query` must be valid (see `Query::validate`); the planner checks
/// reachability as it goes and reports `Unreachable` otherwise.
///
/// Candidate costing is batched: one pass up front resolves every
/// selective predicate's selectivity and every relationship's fan-out from
/// the [`Database::stats`] snapshot into a per-query view, and all
/// candidate evaluation below — root access choices, index alternatives,
/// frontier steps — reads that view. A query with P predicates and R
/// relationships touches the statistics P + R times total instead of once
/// per (candidate × predicate) pair, and the chosen plan is bit-identical
/// to costing each candidate directly (same values multiplied in the same
/// order).
pub fn plan_query(
    db: &Database,
    query: &Query,
    model: &CostModel,
) -> Result<PhysicalPlan, ExecError> {
    let catalog = db.catalog();
    let stats = db.stats();
    if query.classes.is_empty() {
        return Err(ExecError::EmptyQuery);
    }

    // The shared stats view: selectivity per selective predicate and
    // fan-out per relationship, each resolved exactly once.
    let pred_sel: Vec<f64> =
        query.selective_predicates.iter().map(|p| model.selectivity(stats, p)).collect();
    let rel_fanout: Vec<(f64, f64)> = query
        .relationships
        .iter()
        .map(|&rel| {
            let rstats = stats.relationship(rel).cloned().unwrap_or_default();
            (rstats.avg_left_fanout.max(0.0), rstats.avg_right_fanout.max(0.0))
        })
        .collect();

    // Selective predicates per class as (view index, predicate) pairs:
    // candidates are *costed* from the view without cloning predicates;
    // only the winning access/step is ever materialized.
    let preds_of = |class: ClassId| -> Vec<(usize, &SelPredicate)> {
        query
            .selective_predicates
            .iter()
            .enumerate()
            .filter(|(_, p)| p.attr.class == class)
            .collect()
    };
    // Residual conjunction selectivity, optionally excluding the indexed
    // predicate (multiplication order matches `conjunction_selectivity`).
    let residual_sel = |preds: &[(usize, &SelPredicate)], skip: Option<usize>| -> f64 {
        preds
            .iter()
            .enumerate()
            .filter(|(j, _)| Some(*j) != skip)
            .map(|(_, (gi, _))| pred_sel[*gi])
            .product::<f64>()
            .clamp(0.0, 1.0)
    };

    // Best access path for a class if it were the driving class.
    let best_access = |class: ClassId| -> (ClassAccess, f64, f64) {
        let preds = preds_of(class);
        let (scan_cost, scan_rows) =
            model.scan_estimate(stats, class, preds.len(), residual_sel(&preds, None));
        // `None` = sequential scan; `Some(i)` = probe the index on preds[i].
        let mut best: (Option<usize>, f64, f64) = (None, scan_cost, scan_rows);
        for (i, (gi, p)) in preds.iter().enumerate() {
            let Some(index) = db.index(p.attr) else {
                continue;
            };
            if !index.supports(&p.value_set()) {
                continue;
            }
            let sel = pred_sel[*gi];
            let (cost, rows) = model.index_estimate(
                stats,
                class,
                preds.len() - 1,
                residual_sel(&preds, Some(i)),
                sel,
            );
            if cost < best.1 {
                best = (Some(i), cost, rows);
            }
        }
        let (choice, cost, rows) = best;
        let access = match choice {
            None => ClassAccess {
                class,
                path: AccessPath::SeqScan,
                residual: preds.iter().map(|(_, p)| (*p).clone()).collect(),
            },
            Some(i) => ClassAccess {
                class,
                path: AccessPath::Index { attr: preds[i].1.attr, set: preds[i].1.value_set() },
                residual: preds
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, (_, p))| (*p).clone())
                    .collect(),
            },
        };
        (access, cost, rows)
    };

    // Driving class: fewest estimated output rows, then cheapest access.
    let mut root_choice: Option<(ClassAccess, f64, f64)> = None;
    for &class in &query.classes {
        let cand = best_access(class);
        let better = match &root_choice {
            None => true,
            Some((_, cost, rows)) => (cand.2, cand.1) < (*rows, *cost),
        };
        if better {
            root_choice = Some(cand);
        }
    }
    let (root, mut total_cost, mut current_rows) = root_choice.ok_or(ExecError::EmptyQuery)?;

    // Greedy expansion over relationships.
    let mut bound: Vec<ClassId> = vec![root.class];
    let mut used_rels: Vec<RelId> = Vec::new();
    let mut applied_joins: Vec<JoinPredicate> = Vec::new();
    let mut steps: Vec<JoinStep> = Vec::new();

    while bound.len() < query.classes.len() {
        // Frontier: relationships with exactly one endpoint bound. Candidates
        // are costed from counts alone; the winner's filter lists are
        // materialized once after the scan.
        let mut best: Option<(f64, f64, RelId, ClassId, ClassId)> = None;
        for (ri, &rel) in query.relationships.iter().enumerate() {
            if used_rels.contains(&rel) {
                continue;
            }
            let def = catalog.relationship(rel)?;
            let (a, b) = def.classes();
            let (from_class, to_class) = if bound.contains(&a) && !bound.contains(&b) {
                (a, b)
            } else if bound.contains(&b) && !bound.contains(&a) {
                (b, a)
            } else {
                continue;
            };
            // Fan-out seen from `from_class`, read from the shared view.
            let fanout =
                if def.left.class == from_class { rel_fanout[ri].0 } else { rel_fanout[ri].1 };
            let residual = preds_of(to_class);
            let join_filter_count =
                step_join_filters(query, &applied_joins, &bound, to_class).count();
            let link_filter_count =
                step_link_filters(query, catalog, &used_rels, &bound, rel, to_class).count();
            let (step_cost, out_rows) = model.join_step_estimate_parts(
                current_rows,
                fanout,
                residual.len(),
                residual_sel(&residual, None),
                join_filter_count + link_filter_count,
            );
            if best.as_ref().map(|(r, c, ..)| (out_rows, step_cost) < (*r, *c)).unwrap_or(true) {
                best = Some((out_rows, step_cost, rel, from_class, to_class));
            }
        }
        let Some((out_rows, step_cost, rel, from_class, to_class)) = best else {
            // invariant: `bound` holds distinct members of query.classes
            // and the loop condition has bound.len() < classes.len(), so
            // an unbound class must exist.
            let missing = query
                .classes
                .iter()
                .copied()
                .find(|c| !bound.contains(c))
                .expect("loop condition guarantees a missing class"); // invariant: see above
            return Err(ExecError::Unreachable(missing));
        };
        // Materialize the winning step from the same candidate sets the
        // costing loop counted.
        let join_filters: Vec<JoinPredicate> =
            step_join_filters(query, &applied_joins, &bound, to_class).copied().collect();
        let link_filters: Vec<(RelId, ClassId, ClassId)> =
            step_link_filters(query, catalog, &used_rels, &bound, rel, to_class).collect();
        let step = JoinStep {
            rel,
            from_class,
            access: ClassAccess {
                class: to_class,
                path: AccessPath::SeqScan, // pointer access; path unused
                residual: preds_of(to_class).into_iter().map(|(_, p)| p.clone()).collect(),
            },
            join_filters,
            link_filters,
        };
        for lf in &step.link_filters {
            used_rels.push(lf.0);
        }
        for j in &step.join_filters {
            applied_joins.push(*j);
        }
        used_rels.push(step.rel);
        bound.push(step.access.class);
        total_cost += step_cost;
        current_rows = out_rows;
        steps.push(step);
    }

    // Materialization cost of the final rows.
    total_cost += current_rows * model.weights.tuple_out;

    Ok(PhysicalPlan {
        root,
        steps,
        projections: query.projections.clone(),
        estimated_cost: total_cost,
        estimated_rows: current_rows,
    })
}

/// [`plan_query`], delivered behind an [`Arc`](std::sync::Arc) so the plan can be cached and
/// re-executed by many threads without re-planning: the executor only ever
/// needs `&PhysicalPlan`, so one planning pass amortizes over every
/// subsequent [`crate::execute`] call that clones the handle. Like
/// [`plan_query`], the pass costs all access and step candidates against
/// one pre-resolved statistics view instead of re-touching the snapshot
/// per candidate.
pub fn plan_query_shared(
    db: &Database,
    query: &Query,
    model: &CostModel,
) -> Result<std::sync::Arc<PhysicalPlan>, ExecError> {
    plan_query(db, query, model).map(std::sync::Arc::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::{example::figure21, Value};
    use sqo_query::{CompOp, QueryBuilder};
    use sqo_storage::IntegrityOptions;
    use std::sync::Arc;

    /// A small but non-trivial instance: 40 suppliers, 120 cargoes,
    /// 30 vehicles; supplies/collects wired round-robin.
    fn db() -> Database {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        let cargo = catalog.class_id("cargo").unwrap();
        let vehicle = catalog.class_id("vehicle").unwrap();
        for i in 0..40 {
            b.insert(supplier, vec![Value::str(format!("s{i}")), Value::str(format!("addr{i}"))])
                .unwrap();
        }
        for i in 0..30 {
            let desc = if i % 3 == 0 { "refrigerated truck" } else { "flatbed" };
            b.insert(vehicle, vec![Value::Int(i), Value::str(desc), Value::Int(i % 5)]).unwrap();
        }
        for i in 0..120i64 {
            let desc = if i % 4 == 0 { "frozen food" } else { "dry goods" };
            b.insert(cargo, vec![Value::Int(i), Value::str(desc), Value::Int(i * 3 % 50)]).unwrap();
        }
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        for i in 0..120u32 {
            b.link(supplies, sqo_storage::ObjectId(i), sqo_storage::ObjectId(i % 40)).unwrap();
            b.link(collects, sqo_storage::ObjectId(i), sqo_storage::ObjectId(i % 30)).unwrap();
        }
        b.finalize(IntegrityOptions {
            enforce_total_participation: false,
            enforce_multiplicity: true,
        })
        .unwrap()
    }

    #[test]
    fn picks_index_for_equality_on_indexed_attr() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("supplier.address")
            .filter("supplier.name", CompOp::Eq, "s7")
            .build()
            .unwrap();
        let plan = plan_query(&db, &q, &CostModel::default()).unwrap();
        assert!(matches!(plan.root.path, AccessPath::Index { .. }));
        assert!(plan.root.residual.is_empty());
        assert!(plan.steps.is_empty());
    }

    #[test]
    fn falls_back_to_scan_for_unindexed_attr() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .filter("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        let plan = plan_query(&db, &q, &CostModel::default()).unwrap();
        assert!(matches!(plan.root.path, AccessPath::SeqScan));
        assert_eq!(plan.root.residual.len(), 1);
    }

    #[test]
    fn three_class_chain_plans_all_steps() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("vehicle.vehicle_no")
            .select("cargo.desc")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("supplier.name", CompOp::Eq, "s3")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap();
        let plan = plan_query(&db, &q, &CostModel::default()).unwrap();
        assert_eq!(plan.binding_order().len(), 3);
        assert_eq!(plan.steps.len(), 2);
        assert!(plan.estimated_cost > 0.0);
        // The highly selective indexed supplier.name=s3 should drive.
        assert_eq!(plan.root.class, catalog.class_id("supplier").unwrap());
    }

    #[test]
    fn join_predicates_become_filters() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .join("cargo.quantity", CompOp::Lt, "vehicle.vehicle_no")
            .via("collects")
            .build()
            .unwrap();
        let plan = plan_query(&db, &q, &CostModel::default()).unwrap();
        let filters: usize = plan.steps.iter().map(|s| s.join_filters.len()).sum();
        assert_eq!(filters, 1);
    }

    #[test]
    fn empty_query_errors() {
        let db = db();
        let q = Query::new();
        assert_eq!(plan_query(&db, &q, &CostModel::default()).unwrap_err(), ExecError::EmptyQuery);
    }

    use sqo_query::Query;
}
