//! The conventional cost model (selectivity estimation + plan costing).
//!
//! §3.4 of the paper delegates two decisions to "the cost model in the
//! conventional query optimizer": whether an optional predicate is worth
//! retaining, and whether eliminating a class is profitable. This module is
//! that cost model. Estimates mirror the executor's actual counting (same
//! [`PageModel`]/[`CostWeights`]) so estimated and measured work track.

use sqo_catalog::{StatsSnapshot, Value};
use sqo_query::{CompOp, SelPredicate, ValueSet};
use sqo_storage::{CostCounters, CostWeights, PageModel};

use crate::plan::{AccessPath, ClassAccess, PhysicalPlan};

/// Cost model: page model + scalar weights + statistics access.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel {
    pub pages: PageModel,
    pub weights: CostWeights,
}

impl CostModel {
    pub fn new(pages: PageModel, weights: CostWeights) -> Self {
        Self { pages, weights }
    }

    /// Estimated fraction of a class's objects satisfying `pred`.
    pub fn selectivity(&self, stats: &StatsSnapshot, pred: &SelPredicate) -> f64 {
        let Some(attr) = stats.attr(pred.attr) else {
            return 1.0;
        };
        match pred.op {
            CompOp::Eq => attr.eq_selectivity_for(&pred.value),
            CompOp::Ne => 1.0 - attr.eq_selectivity_for(&pred.value),
            CompOp::Lt => attr.range_selectivity(&pred.value, true, false),
            CompOp::Le => attr.range_selectivity(&pred.value, true, true),
            CompOp::Gt => attr.range_selectivity(&pred.value, false, false),
            CompOp::Ge => attr.range_selectivity(&pred.value, false, true),
        }
    }

    /// Combined selectivity of a conjunction (independence assumption — the
    /// System R inheritance the paper's optimizer would have shared).
    pub fn conjunction_selectivity(&self, stats: &StatsSnapshot, preds: &[SelPredicate]) -> f64 {
        preds.iter().map(|p| self.selectivity(stats, p)).product::<f64>().clamp(0.0, 1.0)
    }

    /// Estimated (work units, produced rows) for one class access.
    pub fn access_estimate(
        &self,
        stats: &StatsSnapshot,
        access: &ClassAccess,
        indexed_sel: Option<f64>,
    ) -> (f64, f64) {
        let residual_sel = self.conjunction_selectivity(stats, &access.residual);
        match &access.path {
            AccessPath::SeqScan => {
                self.scan_estimate(stats, access.class, access.residual.len(), residual_sel)
            }
            AccessPath::Index { set, .. } => {
                let sel = indexed_sel.unwrap_or_else(|| self.set_selectivity(stats, access, set));
                self.index_estimate(stats, access.class, access.residual.len(), residual_sel, sel)
            }
        }
    }

    /// [`CostModel::access_estimate`] for a sequential scan, taking the
    /// residual conjunction as `(count, selectivity)` so planners can cost
    /// candidates without materializing a [`ClassAccess`] per candidate.
    pub fn scan_estimate(
        &self,
        stats: &StatsSnapshot,
        class: sqo_catalog::ClassId,
        residual_count: usize,
        residual_sel: f64,
    ) -> (f64, f64) {
        let n = stats.cardinality(class) as f64;
        let rows = n * residual_sel;
        let counters = CostCounters {
            seq_tuples: n as u64,
            predicate_evals: (n * residual_count as f64) as u64,
            tuples_out: rows as u64,
            ..Default::default()
        };
        (self.weights.work_units(&self.pages, &counters), rows)
    }

    /// [`CostModel::access_estimate`] for an index probe of selectivity
    /// `indexed_sel`, residuals given as `(count, selectivity)`.
    pub fn index_estimate(
        &self,
        stats: &StatsSnapshot,
        class: sqo_catalog::ClassId,
        residual_count: usize,
        residual_sel: f64,
        indexed_sel: f64,
    ) -> (f64, f64) {
        let n = stats.cardinality(class) as f64;
        let matched = n * indexed_sel;
        let rows = matched * residual_sel;
        let counters = CostCounters {
            index_probes: 1,
            index_entries: matched as u64,
            predicate_evals: (matched * residual_count as f64) as u64,
            tuples_out: rows as u64,
            ..Default::default()
        };
        (self.weights.work_units(&self.pages, &counters), rows)
    }

    fn set_selectivity(&self, stats: &StatsSnapshot, access: &ClassAccess, set: &ValueSet) -> f64 {
        // Derive a representative predicate for the set to reuse the scalar
        // estimators; point sets map to equality.
        match set {
            ValueSet::Range { lo, hi } => {
                match (lo, hi) {
                    (sqo_query::Bound::Included(a), sqo_query::Bound::Included(b))
                        if a.compare(b) == Some(std::cmp::Ordering::Equal) =>
                    {
                        stats
                            .attr(match &access.path {
                                AccessPath::Index { attr, .. } => *attr,
                                AccessPath::SeqScan => return 1.0,
                            })
                            .map(|s| s.eq_selectivity_for(a))
                            .unwrap_or(1.0)
                    }
                    _ => 1.0 / 3.0, // generic range default
                }
            }
            ValueSet::Hole(_) => 1.0,
        }
    }

    /// Estimated work units for one pointer-join fan-out step.
    pub fn join_step_estimate(
        &self,
        stats: &StatsSnapshot,
        input_rows: f64,
        fanout: f64,
        residual: &[SelPredicate],
        join_filter_count: usize,
    ) -> (f64, f64) {
        let residual_sel = self.conjunction_selectivity(stats, residual);
        self.join_step_estimate_parts(
            input_rows,
            fanout,
            residual.len(),
            residual_sel,
            join_filter_count,
        )
    }

    /// [`CostModel::join_step_estimate`] with the residual conjunction given
    /// as `(count, selectivity)` — the planner's candidate-costing form.
    pub fn join_step_estimate_parts(
        &self,
        input_rows: f64,
        fanout: f64,
        residual_count: usize,
        residual_sel: f64,
        join_filter_count: usize,
    ) -> (f64, f64) {
        let produced = input_rows * fanout;
        // Join filters default to the classic 1/3 selectivity each.
        let join_sel = (1.0f64 / 3.0).powi(join_filter_count as i32);
        let rows = produced * residual_sel * join_sel;
        let counters = CostCounters {
            link_traversals: produced as u64,
            predicate_evals: (produced * (residual_count + join_filter_count) as f64) as u64,
            tuples_out: rows as u64,
            ..Default::default()
        };
        (self.weights.work_units(&self.pages, &counters), rows)
    }

    /// Total estimated work units of a fully-formed plan (already annotated
    /// by the planner). Exposed for diagnostics.
    pub fn plan_cost(&self, plan: &PhysicalPlan) -> f64 {
        plan.estimated_cost
    }

    /// Work units for a measured counter snapshot — the single figure used as
    /// "execution cost" throughout the benchmarks.
    pub fn measured(&self, counters: &CostCounters) -> f64 {
        self.weights.work_units(&self.pages, counters)
    }

    /// Work units charged for evaluating a selective predicate once; used by
    /// profitability reasoning about CPU savings (restriction elimination).
    pub fn eval_unit_cost(&self) -> f64 {
        self.weights.predicate_eval
    }

    /// A crude equality-probe cost used when comparing index access to a
    /// scan: descent pages plus one entry.
    pub fn probe_cost(&self, expected_matches: f64) -> f64 {
        let counters = CostCounters {
            index_probes: 1,
            index_entries: expected_matches.max(1.0) as u64,
            ..Default::default()
        };
        self.weights.work_units(&self.pages, &counters)
    }
}

/// Helper: point-equality value for an access path, if it is one.
pub fn point_of(set: &ValueSet) -> Option<&Value> {
    match set {
        ValueSet::Range {
            lo: sqo_query::Bound::Included(a),
            hi: sqo_query::Bound::Included(b),
        } if a.compare(b) == Some(std::cmp::Ordering::Equal) => Some(a),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::{AttrId, AttrRef, AttrStats, ClassId, ClassStats};

    fn stats_one_class(card: u64, distinct: u64) -> StatsSnapshot {
        StatsSnapshot {
            classes: vec![ClassStats {
                cardinality: card,
                attrs: vec![AttrStats {
                    rows: card,
                    distinct,
                    min: Some(Value::Int(0)),
                    max: Some(Value::Int(distinct as i64)),
                    mcvs: vec![],
                    histogram: vec![],
                }],
            }],
            relationships: vec![],
        }
    }

    fn pred(op: CompOp, v: i64) -> SelPredicate {
        SelPredicate::new(AttrRef::new(ClassId(0), AttrId(0)), op, Value::Int(v))
    }

    #[test]
    fn selectivity_shapes() {
        let m = CostModel::default();
        let s = stats_one_class(100, 10);
        assert!((m.selectivity(&s, &pred(CompOp::Eq, 5)) - 0.1).abs() < 1e-9);
        assert!((m.selectivity(&s, &pred(CompOp::Ne, 5)) - 0.9).abs() < 1e-9);
        let lt = m.selectivity(&s, &pred(CompOp::Lt, 5));
        assert!(lt > 0.3 && lt < 0.7, "lt = {lt}");
    }

    #[test]
    fn conjunction_multiplies() {
        let m = CostModel::default();
        let s = stats_one_class(100, 10);
        let sel = m.conjunction_selectivity(&s, &[pred(CompOp::Eq, 1), pred(CompOp::Eq, 2)]);
        assert!((sel - 0.01).abs() < 1e-9);
    }

    #[test]
    fn index_access_cheaper_than_scan_when_selective() {
        let m = CostModel::default();
        let s = stats_one_class(10_000, 1000);
        let scan = ClassAccess {
            class: ClassId(0),
            path: AccessPath::SeqScan,
            residual: vec![pred(CompOp::Eq, 5)],
        };
        let (scan_cost, scan_rows) = m.access_estimate(&s, &scan, None);
        let ix = ClassAccess {
            class: ClassId(0),
            path: AccessPath::Index {
                attr: AttrRef::new(ClassId(0), AttrId(0)),
                set: ValueSet::point(Value::Int(5)),
            },
            residual: vec![],
        };
        let (ix_cost, ix_rows) = m.access_estimate(&s, &ix, None);
        assert!(ix_cost < scan_cost, "index {ix_cost} vs scan {scan_cost}");
        assert!((scan_rows - ix_rows).abs() < 1.0, "{scan_rows} vs {ix_rows}");
    }

    #[test]
    fn join_step_scales_with_fanout() {
        let m = CostModel::default();
        let s = stats_one_class(100, 10);
        let (c1, r1) = m.join_step_estimate(&s, 10.0, 1.0, &[], 0);
        let (c2, r2) = m.join_step_estimate(&s, 10.0, 4.0, &[], 0);
        assert!(c2 > c1);
        assert!((r2 - 4.0 * r1).abs() < 1e-9);
    }

    #[test]
    fn point_of_extracts_equality() {
        assert_eq!(point_of(&ValueSet::point(Value::Int(5))), Some(&Value::Int(5)));
        assert_eq!(point_of(&ValueSet::at_least(Value::Int(5))), None);
        assert_eq!(point_of(&ValueSet::hole(Value::Int(5))), None);
    }
}
