//! Execution-layer errors.

use std::fmt;

use sqo_catalog::{CatalogError, ClassId};
use sqo_query::QueryError;
use sqo_storage::StorageError;

/// Errors raised by the planner or executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    Catalog(CatalogError),
    Query(QueryError),
    Storage(StorageError),
    /// No relationship path reaches this class from the chosen root.
    Unreachable(ClassId),
    /// The query has no classes to drive from.
    EmptyQuery,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Catalog(e) => write!(f, "catalog error: {e}"),
            ExecError::Query(e) => write!(f, "query error: {e}"),
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::Unreachable(c) => write!(f, "{c} is unreachable from the plan root"),
            ExecError::EmptyQuery => write!(f, "query accesses no classes"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Catalog(e) => Some(e),
            ExecError::Query(e) => Some(e),
            ExecError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for ExecError {
    fn from(e: CatalogError) -> Self {
        ExecError::Catalog(e)
    }
}

impl From<QueryError> for ExecError {
    fn from(e: QueryError) -> Self {
        ExecError::Query(e)
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}
