//! Execution-layer errors.

use std::fmt;

use sqo_catalog::{AttrRef, CatalogError, ClassId};
use sqo_query::QueryError;
use sqo_storage::StorageError;

/// Errors raised by the planner or executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    Catalog(CatalogError),
    Query(QueryError),
    Storage(StorageError),
    /// No relationship path reaches this class from the chosen root.
    Unreachable(ClassId),
    /// The query has no classes to drive from.
    EmptyQuery,
    /// The plan demands an index probe on an attribute that carries no
    /// index — a planner/executor contract violation (e.g. a plan cached
    /// against a different physical schema).
    MissingIndex(AttrRef),
    /// The plan demands a probe shape (e.g. a range) the attribute's index
    /// cannot serve.
    UnsupportedProbe(AttrRef),
    /// A batch probe re-keys the root index probe, but the plan's root is a
    /// sequential scan — there is no probe key to override.
    RootOverrideNeedsIndex(ClassId),
    /// The plan violated a planner/executor contract (e.g. a join step
    /// whose `from_class` was never bound). Always a bug in the planner
    /// or a stale cached plan — surfaced as an error so one corrupt plan
    /// cannot abort a serving worker.
    MalformedPlan(&'static str),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Catalog(e) => write!(f, "catalog error: {e}"),
            ExecError::Query(e) => write!(f, "query error: {e}"),
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::Unreachable(c) => write!(f, "{c} is unreachable from the plan root"),
            ExecError::EmptyQuery => write!(f, "query accesses no classes"),
            ExecError::MissingIndex(a) => {
                write!(f, "plan probes {a} but the attribute has no index")
            }
            ExecError::UnsupportedProbe(a) => {
                write!(f, "index on {a} cannot serve the plan's probe set")
            }
            ExecError::RootOverrideNeedsIndex(c) => {
                write!(f, "probe re-keys the root of {c} but the plan's root is a scan")
            }
            ExecError::MalformedPlan(what) => write!(f, "malformed plan: {what}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Catalog(e) => Some(e),
            ExecError::Query(e) => Some(e),
            ExecError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for ExecError {
    fn from(e: CatalogError) -> Self {
        ExecError::Catalog(e)
    }
}

impl From<QueryError> for ExecError {
    fn from(e: QueryError) -> Self {
        ExecError::Query(e)
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}
