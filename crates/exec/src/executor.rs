//! Pull-free recursive executor for pointer-join plans.
//!
//! Every operation is counted in [`CostCounters`], which the cost model folds
//! into the work-unit figure the benchmarks report as "execution cost". The
//! executor is deliberately simple: plans are small (≤ a handful of classes),
//! and determinism matters more than raw speed for reproducing the paper's
//! cost *ratios*.

use sqo_catalog::{AttrRef, ClassId, Value};
use sqo_query::Projection;
use sqo_storage::{CostCounters, Database, ObjectId};

use crate::error::ExecError;
use crate::plan::{AccessPath, ClassAccess, PhysicalPlan};
use crate::result::ResultSet;

/// Executes `plan` against `db`, returning the result set and the operation
/// counters.
pub fn execute(db: &Database, plan: &PhysicalPlan) -> Result<(ResultSet, CostCounters), ExecError> {
    let mut counters = CostCounters::new();
    let columns: Vec<AttrRef> = plan.projections.iter().map(|p| p.attr).collect();
    let mut result = ResultSet::new(columns);

    // Root candidates.
    let roots = produce(db, &plan.root, &mut counters)?;
    let mut binding: Vec<(ClassId, ObjectId)> = Vec::with_capacity(plan.steps.len() + 1);
    for oid in roots {
        binding.push((plan.root.class, oid));
        descend(db, plan, 0, &mut binding, &mut counters, &mut result)?;
        binding.pop();
    }
    Ok((result, counters))
}

/// Produces the objects of one class access (root only), counting work.
fn produce(
    db: &Database,
    access: &ClassAccess,
    counters: &mut CostCounters,
) -> Result<Vec<ObjectId>, ExecError> {
    let mut out = Vec::new();
    match &access.path {
        AccessPath::SeqScan => {
            let n = db.cardinality(access.class);
            counters.seq_tuples += n as u64;
            for i in 0..n as u32 {
                let oid = ObjectId(i);
                if eval_residual(db, access, oid, counters)? {
                    out.push(oid);
                }
            }
        }
        AccessPath::Index { attr, set } => {
            let index =
                db.index(*attr).expect("planner only emits index paths for indexed attributes");
            let scan = index.probe(set).expect("planner only emits supported probe sets");
            counters.index_probes += 1;
            counters.index_entries += scan.probes.saturating_sub(1);
            for oid in scan.oids {
                if eval_residual(db, access, oid, counters)? {
                    out.push(oid);
                }
            }
        }
    }
    Ok(out)
}

fn eval_residual(
    db: &Database,
    access: &ClassAccess,
    oid: ObjectId,
    counters: &mut CostCounters,
) -> Result<bool, ExecError> {
    for p in &access.residual {
        counters.predicate_evals += 1;
        let v = db.value(p.attr, oid)?;
        if !p.eval(v) {
            return Ok(false);
        }
    }
    Ok(true)
}

fn descend(
    db: &Database,
    plan: &PhysicalPlan,
    depth: usize,
    binding: &mut Vec<(ClassId, ObjectId)>,
    counters: &mut CostCounters,
    result: &mut ResultSet,
) -> Result<(), ExecError> {
    let Some(step) = plan.steps.get(depth) else {
        emit(db, plan, binding, counters, result)?;
        return Ok(());
    };
    let &(_, from_oid) = binding
        .iter()
        .find(|(c, _)| *c == step.from_class)
        .expect("planner binds from_class before the step");
    let targets = db.traverse(step.rel, step.from_class, from_oid)?.to_vec();
    counters.link_traversals += targets.len() as u64;
    'target: for oid in targets {
        if !eval_residual(db, &step.access, oid, counters)? {
            continue;
        }
        // Join filters: both sides bound now.
        for j in &step.join_filters {
            counters.predicate_evals += 1;
            let l = value_of(db, binding, step.access.class, oid, j.left)?;
            let r = value_of(db, binding, step.access.class, oid, j.right)?;
            if !j.eval(&l, &r) {
                continue 'target;
            }
        }
        // Cycle edges: the pair must be linked in the extra relationship.
        for &(rel, a, b) in &step.link_filters {
            let (pivot_class, pivot_oid) = if a == step.access.class {
                (a, oid)
            } else if b == step.access.class {
                (b, oid)
            } else {
                unreachable!("link filter must involve the step's class")
            };
            let other_class = if pivot_class == a { b } else { a };
            let &(_, other_oid) = binding
                .iter()
                .find(|(c, _)| *c == other_class)
                .expect("other endpoint bound earlier");
            counters.link_traversals += 1;
            let neigh = db.traverse(rel, pivot_class, pivot_oid)?;
            if !neigh.contains(&other_oid) {
                continue 'target;
            }
        }
        binding.push((step.access.class, oid));
        descend(db, plan, depth + 1, binding, counters, result)?;
        binding.pop();
    }
    Ok(())
}

fn value_of(
    db: &Database,
    binding: &[(ClassId, ObjectId)],
    current_class: ClassId,
    current_oid: ObjectId,
    attr: AttrRef,
) -> Result<Value, ExecError> {
    let oid = if attr.class == current_class {
        current_oid
    } else {
        binding
            .iter()
            .find(|(c, _)| *c == attr.class)
            .map(|(_, o)| *o)
            .expect("join filter endpoints are bound")
    };
    Ok(db.value(attr, oid)?.clone())
}

fn emit(
    db: &Database,
    plan: &PhysicalPlan,
    binding: &[(ClassId, ObjectId)],
    counters: &mut CostCounters,
    result: &mut ResultSet,
) -> Result<(), ExecError> {
    let mut row = Vec::with_capacity(plan.projections.len());
    for p in &plan.projections {
        row.push(project_value(db, p, binding)?);
    }
    counters.tuples_out += 1;
    result.rows.push(row);
    Ok(())
}

fn project_value(
    db: &Database,
    projection: &Projection,
    binding: &[(ClassId, ObjectId)],
) -> Result<Value, ExecError> {
    // A bound projection's value is known without touching the database —
    // exactly the saving the paper's restriction introduction enables.
    if let Some(v) = &projection.binding {
        return Ok(v.clone());
    }
    let (_, oid) = binding
        .iter()
        .find(|(c, _)| *c == projection.attr.class)
        .expect("projection classes are part of the plan");
    Ok(db.value(projection.attr, *oid)?.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::planner::plan_query;
    use sqo_catalog::example::figure21;
    use sqo_query::{CompOp, QueryBuilder};
    use sqo_storage::IntegrityOptions;
    use std::sync::Arc;

    fn db() -> Database {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        let cargo = catalog.class_id("cargo").unwrap();
        let vehicle = catalog.class_id("vehicle").unwrap();
        for i in 0..4 {
            b.insert(supplier, vec![Value::str(format!("s{i}")), Value::str("x")]).unwrap();
        }
        for i in 0..6 {
            let desc = if i < 2 { "refrigerated truck" } else { "flatbed" };
            b.insert(vehicle, vec![Value::Int(i), Value::str(desc), Value::Int(i % 3)]).unwrap();
        }
        for i in 0..12i64 {
            let desc = if i % 2 == 0 { "frozen food" } else { "dry goods" };
            b.insert(cargo, vec![Value::Int(i), Value::str(desc), Value::Int(i)]).unwrap();
        }
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        for i in 0..12u32 {
            b.link(supplies, ObjectId(i), ObjectId(i % 4)).unwrap();
            b.link(collects, ObjectId(i), ObjectId(i % 6)).unwrap();
        }
        b.finalize(IntegrityOptions {
            enforce_total_participation: false,
            enforce_multiplicity: true,
        })
        .unwrap()
    }

    fn run(db: &Database, q: &sqo_query::Query) -> (ResultSet, CostCounters) {
        let plan = plan_query(db, q, &CostModel::default()).unwrap();
        execute(db, &plan).unwrap()
    }

    #[test]
    fn single_class_filter() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .filter("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        let (res, counters) = run(&db, &q);
        assert_eq!(res.len(), 6);
        assert!(counters.seq_tuples >= 12, "{counters}");
        assert!(counters.predicate_evals >= 12);
    }

    #[test]
    fn index_probe_counts_less_work() {
        // Big enough that the planner prefers the index over a scan.
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        for i in 0..500 {
            b.insert(supplier, vec![Value::str(format!("s{i}")), Value::str("x")]).unwrap();
        }
        let db = b
            .finalize(IntegrityOptions {
                enforce_total_participation: false,
                enforce_multiplicity: true,
            })
            .unwrap();
        let q = QueryBuilder::new(&catalog)
            .select("supplier.address")
            .filter("supplier.name", CompOp::Eq, "s1")
            .build()
            .unwrap();
        let (res, counters) = run(&db, &q);
        assert_eq!(res.len(), 1);
        assert_eq!(counters.seq_tuples, 0);
        assert_eq!(counters.index_probes, 1);
    }

    #[test]
    fn tiny_extent_prefers_scan() {
        // On a 4-row extent the 2-page index descent loses to a 1-page scan;
        // the planner must notice.
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("supplier.address")
            .filter("supplier.name", CompOp::Eq, "s1")
            .build()
            .unwrap();
        let (res, counters) = run(&db, &q);
        assert_eq!(res.len(), 1);
        assert_eq!(counters.index_probes, 0);
        assert!(counters.seq_tuples > 0);
    }

    #[test]
    fn two_class_pointer_join() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .select("vehicle.vehicle_no")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .via("collects")
            .build()
            .unwrap();
        let (res, counters) = run(&db, &q);
        // vehicles 0 and 1 are refrigerated; cargoes i with i%6 in {0,1}.
        assert_eq!(res.len(), 4);
        assert!(counters.link_traversals > 0);
    }

    #[test]
    fn three_class_chain_returns_consistent_rows() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("vehicle.vehicle_no")
            .select("cargo.desc")
            .select("cargo.quantity")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("supplier.name", CompOp::Eq, "s0")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap();
        let (res, _) = run(&db, &q);
        // cargoes with i%6 in {0,1} and i%4 == 0: i in {0, 4, 12...} ∩ [0,12): {0} i%6=0 ok; {4} i%6=4 no; {8} i%6=2 no.
        assert_eq!(res.len(), 1);
        assert_eq!(res.rows[0][1], Value::str("frozen food"));
    }

    #[test]
    fn bound_projection_emits_constant_without_fetch() {
        let db = db();
        let catalog = db.catalog().clone();
        let mut q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .filter("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        q.projections.push(sqo_query::Projection::bound(
            catalog.attr_ref("cargo", "desc").unwrap(),
            Value::str("frozen food"),
        ));
        let (res, _) = run(&db, &q);
        assert_eq!(res.len(), 6);
        for row in &res.rows {
            assert_eq!(row[1], Value::str("frozen food"));
        }
    }

    #[test]
    fn join_filter_applies() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .join("cargo.quantity", CompOp::Lt, "vehicle.vehicle_no")
            .via("collects")
            .build()
            .unwrap();
        let (res, _) = run(&db, &q);
        // cargo i collected by vehicle i%6; need i < i%6 → i in {}: for i<6,
        // i%6 == i (never i<i); for i>=6, i%6 = i-6 < i. So no rows... wait:
        // condition is quantity < vehicle_no, quantity = i, vehicle_no = i%6.
        // i < i%6 is impossible, so empty.
        assert!(res.is_empty());
    }

    #[test]
    fn deterministic_counters() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .filter("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        let (_, c1) = run(&db, &q);
        let (_, c2) = run(&db, &q);
        assert_eq!(c1, c2);
    }
}
