//! Batched iterative executor for pointer-join plans.
//!
//! Every operation is counted in [`CostCounters`], which the cost model folds
//! into the work-unit figure the benchmarks report as "execution cost". The
//! traversal is depth-first over batched candidate vectors: each plan step
//! owns one reusable buffer that is filled with the link targets of the
//! current parent, filtered **as a slice** (residuals, then join filters,
//! then cycle edges), and then walked by cursor. Rows are emitted in exactly
//! the order — and the counters count exactly the operations — of the
//! natural recursive formulation; what changes is the allocation profile:
//! via [`execute_with`] and a long-lived [`ExecScratch`], a serving thread
//! executes plans with no per-binding allocation at all.

use sqo_catalog::{AttrRef, ClassId, Value};
use sqo_query::Projection;
use sqo_storage::{CostCounters, Database, ObjectId};

use crate::error::ExecError;
use crate::plan::{AccessPath, ClassAccess, JoinStep, PhysicalPlan};
use crate::result::ResultSet;

/// Reusable traversal buffers of [`execute_with`]: one candidate vector and
/// cursor per plan level, plus the binding stack. Keep one per worker
/// thread; any plan shape can run against any scratch (levels grow on
/// demand and are cleared before use).
#[derive(Debug, Default)]
pub struct ExecScratch {
    /// levels[d] = surviving candidates of plan level `d` (root = 0).
    levels: Vec<Vec<ObjectId>>,
    /// cursors[d] = next candidate of `levels[d]` to bind.
    cursors: Vec<usize>,
    binding: Vec<(ClassId, ObjectId)>,
}

impl ExecScratch {
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, depths: usize) {
        if self.levels.len() < depths {
            self.levels.resize_with(depths, Vec::new);
        }
        self.cursors.clear();
        self.cursors.resize(depths, 0);
        for level in &mut self.levels {
            level.clear();
        }
        self.binding.clear();
    }
}

/// Executes `plan` against `db`, returning the result set and the operation
/// counters. Allocates fresh traversal buffers; hot callers should hold an
/// [`ExecScratch`] and use [`execute_with`].
pub fn execute(db: &Database, plan: &PhysicalPlan) -> Result<(ResultSet, CostCounters), ExecError> {
    execute_with(db, plan, &mut ExecScratch::new())
}

/// [`execute`] against reusable traversal buffers.
pub fn execute_with(
    db: &Database,
    plan: &PhysicalPlan,
    scratch: &mut ExecScratch,
) -> Result<(ResultSet, CostCounters), ExecError> {
    let mut counters = CostCounters::new();
    let columns: Vec<AttrRef> = plan.projections.iter().map(|p| p.attr).collect();
    let mut result = ResultSet::new(columns);

    let depths = plan.steps.len() + 1;
    scratch.reset(depths);
    let ExecScratch { levels, cursors, binding } = scratch;
    // invariant: depths = plan.steps.len() + 1 >= 1, so the slice split
    // always yields a first element.
    let (root_level, step_levels) = levels[..depths].split_first_mut().expect("depths >= 1");

    // Root candidates: batch-produce, residual-filter the batch.
    produce(db, &plan.root, &mut counters, root_level)?;

    // Depth-first walk by cursor — identical visit order to the recursive
    // formulation, but the per-step candidate vectors are reused across the
    // whole traversal instead of reallocated per parent binding.
    let mut depth = 0usize;
    loop {
        let level: &[ObjectId] = if depth == 0 { root_level } else { &step_levels[depth - 1] };
        let Some(&oid) = level.get(cursors[depth]) else {
            if depth == 0 {
                break;
            }
            depth -= 1;
            continue;
        };
        cursors[depth] += 1;
        let class = if depth == 0 { plan.root.class } else { plan.steps[depth - 1].access.class };
        binding.truncate(depth);
        binding.push((class, oid));

        let Some(step) = plan.steps.get(depth) else {
            emit(db, plan, binding, &mut counters, &mut result)?;
            continue;
        };
        // Fill the child level: link targets of `oid`, filtered as a batch.
        let child = &mut step_levels[depth];
        fill_step_level(db, step, binding, &mut counters, child)?;
        cursors[depth + 1] = 0;
        depth += 1;
    }
    Ok((result, counters))
}

/// Produces the candidate objects of the driving class access into `out`,
/// counting work and applying the residual filter over the batch.
pub(crate) fn produce(
    db: &Database,
    access: &ClassAccess,
    counters: &mut CostCounters,
    out: &mut Vec<ObjectId>,
) -> Result<(), ExecError> {
    out.clear();
    match &access.path {
        AccessPath::SeqScan => {
            let n = db.cardinality(access.class);
            counters.seq_tuples += n as u64;
            out.extend((0..n as u32).map(ObjectId));
        }
        AccessPath::Index { attr, set } => {
            let index = db.index(*attr).ok_or(ExecError::MissingIndex(*attr))?;
            let scan = index.probe(set).ok_or(ExecError::UnsupportedProbe(*attr))?;
            counters.index_probes += 1;
            counters.index_entries += scan.probes.saturating_sub(1);
            out.extend(scan.oids);
        }
    }
    retain_residual(db, access, counters, out)
}

/// Residual evaluation over a candidate slice: compacts `out` in place to
/// the objects passing every residual predicate.
pub(crate) fn retain_residual(
    db: &Database,
    access: &ClassAccess,
    counters: &mut CostCounters,
    out: &mut Vec<ObjectId>,
) -> Result<(), ExecError> {
    if access.residual.is_empty() {
        return Ok(());
    }
    let mut kept = 0usize;
    for i in 0..out.len() {
        let oid = out[i];
        if eval_residual(db, access, oid, counters)? {
            out[kept] = oid;
            kept += 1;
        }
    }
    out.truncate(kept);
    Ok(())
}

fn eval_residual(
    db: &Database,
    access: &ClassAccess,
    oid: ObjectId,
    counters: &mut CostCounters,
) -> Result<bool, ExecError> {
    for p in &access.residual {
        counters.predicate_evals += 1;
        let v = db.value(p.attr, oid)?;
        if !p.eval(v) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Fills `out` with the surviving bindings of one pointer-join step from the
/// current parent binding: link traversal, then batch residual evaluation,
/// then join and cycle-edge filters.
pub(crate) fn fill_step_level(
    db: &Database,
    step: &JoinStep,
    binding: &[(ClassId, ObjectId)],
    counters: &mut CostCounters,
    out: &mut Vec<ObjectId>,
) -> Result<(), ExecError> {
    let &(_, from_oid) = binding
        .iter()
        .find(|(c, _)| *c == step.from_class)
        .ok_or(ExecError::MalformedPlan("join step's from_class is not bound"))?;
    let targets = db.traverse(step.rel, step.from_class, from_oid)?;
    counters.link_traversals += targets.len() as u64;
    out.clear();
    out.extend_from_slice(targets);
    retain_residual(db, &step.access, counters, out)?;

    // Join filters: both sides bound now.
    if !step.join_filters.is_empty() {
        let mut kept = 0usize;
        'target: for i in 0..out.len() {
            let oid = out[i];
            for j in &step.join_filters {
                counters.predicate_evals += 1;
                let l = value_of(db, binding, step.access.class, oid, j.left)?;
                let r = value_of(db, binding, step.access.class, oid, j.right)?;
                if !j.eval(&l, &r) {
                    continue 'target;
                }
            }
            out[kept] = oid;
            kept += 1;
        }
        out.truncate(kept);
    }

    // Cycle edges: the pair must be linked in the extra relationship.
    if !step.link_filters.is_empty() {
        let mut kept = 0usize;
        'cycle: for i in 0..out.len() {
            let oid = out[i];
            for &(rel, a, b) in &step.link_filters {
                let (pivot_class, pivot_oid) = if a == step.access.class {
                    (a, oid)
                } else if b == step.access.class {
                    (b, oid)
                } else {
                    return Err(ExecError::MalformedPlan(
                        "link filter does not involve the step's class",
                    ));
                };
                let other_class = if pivot_class == a { b } else { a };
                let &(_, other_oid) = binding
                    .iter()
                    .find(|(c, _)| *c == other_class)
                    .ok_or(ExecError::MalformedPlan("link filter endpoint is not bound"))?;
                counters.link_traversals += 1;
                let neigh = db.traverse(rel, pivot_class, pivot_oid)?;
                if !neigh.contains(&other_oid) {
                    continue 'cycle;
                }
            }
            out[kept] = oid;
            kept += 1;
        }
        out.truncate(kept);
    }
    Ok(())
}

fn value_of(
    db: &Database,
    binding: &[(ClassId, ObjectId)],
    current_class: ClassId,
    current_oid: ObjectId,
    attr: AttrRef,
) -> Result<Value, ExecError> {
    let oid = if attr.class == current_class {
        current_oid
    } else {
        binding
            .iter()
            .find(|(c, _)| *c == attr.class)
            .map(|(_, o)| *o)
            .ok_or(ExecError::MalformedPlan("join filter endpoint is not bound"))?
    };
    Ok(db.value(attr, oid)?.clone())
}

pub(crate) fn emit(
    db: &Database,
    plan: &PhysicalPlan,
    binding: &[(ClassId, ObjectId)],
    counters: &mut CostCounters,
    result: &mut ResultSet,
) -> Result<(), ExecError> {
    let mut row = Vec::with_capacity(plan.projections.len());
    for p in &plan.projections {
        row.push(project_value(db, p, binding)?);
    }
    counters.tuples_out += 1;
    result.rows.push(row);
    Ok(())
}

fn project_value(
    db: &Database,
    projection: &Projection,
    binding: &[(ClassId, ObjectId)],
) -> Result<Value, ExecError> {
    // A bound projection's value is known without touching the database —
    // exactly the saving the paper's restriction introduction enables.
    if let Some(v) = &projection.binding {
        return Ok(v.clone());
    }
    let (_, oid) = binding
        .iter()
        .find(|(c, _)| *c == projection.attr.class)
        .ok_or(ExecError::MalformedPlan("projection class is not bound"))?;
    Ok(db.value(projection.attr, *oid)?.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::planner::plan_query;
    use sqo_catalog::example::figure21;
    use sqo_query::{CompOp, QueryBuilder};
    use sqo_storage::IntegrityOptions;
    use std::sync::Arc;

    fn db() -> Database {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        let cargo = catalog.class_id("cargo").unwrap();
        let vehicle = catalog.class_id("vehicle").unwrap();
        for i in 0..4 {
            b.insert(supplier, vec![Value::str(format!("s{i}")), Value::str("x")]).unwrap();
        }
        for i in 0..6 {
            let desc = if i < 2 { "refrigerated truck" } else { "flatbed" };
            b.insert(vehicle, vec![Value::Int(i), Value::str(desc), Value::Int(i % 3)]).unwrap();
        }
        for i in 0..12i64 {
            let desc = if i % 2 == 0 { "frozen food" } else { "dry goods" };
            b.insert(cargo, vec![Value::Int(i), Value::str(desc), Value::Int(i)]).unwrap();
        }
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        for i in 0..12u32 {
            b.link(supplies, ObjectId(i), ObjectId(i % 4)).unwrap();
            b.link(collects, ObjectId(i), ObjectId(i % 6)).unwrap();
        }
        b.finalize(IntegrityOptions {
            enforce_total_participation: false,
            enforce_multiplicity: true,
        })
        .unwrap()
    }

    fn run(db: &Database, q: &sqo_query::Query) -> (ResultSet, CostCounters) {
        let plan = plan_query(db, q, &CostModel::default()).unwrap();
        execute(db, &plan).unwrap()
    }

    #[test]
    fn single_class_filter() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .filter("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        let (res, counters) = run(&db, &q);
        assert_eq!(res.len(), 6);
        assert!(counters.seq_tuples >= 12, "{counters}");
        assert!(counters.predicate_evals >= 12);
    }

    #[test]
    fn index_probe_counts_less_work() {
        // Big enough that the planner prefers the index over a scan.
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        for i in 0..500 {
            b.insert(supplier, vec![Value::str(format!("s{i}")), Value::str("x")]).unwrap();
        }
        let db = b
            .finalize(IntegrityOptions {
                enforce_total_participation: false,
                enforce_multiplicity: true,
            })
            .unwrap();
        let q = QueryBuilder::new(&catalog)
            .select("supplier.address")
            .filter("supplier.name", CompOp::Eq, "s1")
            .build()
            .unwrap();
        let (res, counters) = run(&db, &q);
        assert_eq!(res.len(), 1);
        assert_eq!(counters.seq_tuples, 0);
        assert_eq!(counters.index_probes, 1);
    }

    #[test]
    fn tiny_extent_prefers_scan() {
        // On a 4-row extent the 2-page index descent loses to a 1-page scan;
        // the planner must notice.
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("supplier.address")
            .filter("supplier.name", CompOp::Eq, "s1")
            .build()
            .unwrap();
        let (res, counters) = run(&db, &q);
        assert_eq!(res.len(), 1);
        assert_eq!(counters.index_probes, 0);
        assert!(counters.seq_tuples > 0);
    }

    #[test]
    fn two_class_pointer_join() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .select("vehicle.vehicle_no")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .via("collects")
            .build()
            .unwrap();
        let (res, counters) = run(&db, &q);
        // vehicles 0 and 1 are refrigerated; cargoes i with i%6 in {0,1}.
        assert_eq!(res.len(), 4);
        assert!(counters.link_traversals > 0);
    }

    #[test]
    fn three_class_chain_returns_consistent_rows() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("vehicle.vehicle_no")
            .select("cargo.desc")
            .select("cargo.quantity")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("supplier.name", CompOp::Eq, "s0")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap();
        let (res, _) = run(&db, &q);
        // cargoes with i%6 in {0,1} and i%4 == 0: i in {0, 4, 12...} ∩ [0,12): {0} i%6=0 ok; {4} i%6=4 no; {8} i%6=2 no.
        assert_eq!(res.len(), 1);
        assert_eq!(res.rows[0][1], Value::str("frozen food"));
    }

    #[test]
    fn bound_projection_emits_constant_without_fetch() {
        let db = db();
        let catalog = db.catalog().clone();
        let mut q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .filter("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        q.projections.push(sqo_query::Projection::bound(
            catalog.attr_ref("cargo", "desc").unwrap(),
            Value::str("frozen food"),
        ));
        let (res, _) = run(&db, &q);
        assert_eq!(res.len(), 6);
        for row in &res.rows {
            assert_eq!(row[1], Value::str("frozen food"));
        }
    }

    #[test]
    fn join_filter_applies() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .join("cargo.quantity", CompOp::Lt, "vehicle.vehicle_no")
            .via("collects")
            .build()
            .unwrap();
        let (res, _) = run(&db, &q);
        // cargo i collected by vehicle i%6; need i < i%6 → i in {}: for i<6,
        // i%6 == i (never i<i); for i>=6, i%6 = i-6 < i. So no rows... wait:
        // condition is quantity < vehicle_no, quantity = i, vehicle_no = i%6.
        // i < i%6 is impossible, so empty.
        assert!(res.is_empty());
    }

    #[test]
    fn deterministic_counters() {
        let db = db();
        let catalog = db.catalog().clone();
        let q = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .filter("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        let (_, c1) = run(&db, &q);
        let (_, c2) = run(&db, &q);
        assert_eq!(c1, c2);
    }
}
