//! Query results with multiset-equality support.
//!
//! Semantic query optimization's correctness contract is *result
//! equivalence*: the optimized query must return the same answer as the
//! original in every database state. The integration and property tests
//! enforce it through [`ResultSet::same_multiset`].

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use sqo_catalog::{AttrRef, Catalog, Value};

/// A materialized result: projected columns and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<AttrRef>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    pub fn new(columns: Vec<AttrRef>) -> Self {
        Self { columns, rows: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows sorted into a canonical order (multiset normal form).
    pub fn canonical_rows(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let mut s = String::new();
                for v in r {
                    s.push_str(&format!("{v}\u{1f}"));
                }
                s
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Multiset equality: same columns, same rows with multiplicities.
    pub fn same_multiset(&self, other: &ResultSet) -> bool {
        self.columns == other.columns && self.canonical_rows() == other.canonical_rows()
    }

    /// Order-insensitive content hash, handy for cross-run assertions.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.columns.hash(&mut h);
        for k in self.canonical_rows() {
            k.hash(&mut h);
        }
        h.finish()
    }

    /// Human-oriented rendering (header + first `limit` rows).
    pub fn render(&self, catalog: &Catalog, limit: usize) -> String {
        let mut out = String::new();
        let header: Vec<String> =
            self.columns.iter().map(|c| catalog.qualified_attr_name(*c)).collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        for row in self.rows.iter().take(limit) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.rows.len() > limit {
            out.push_str(&format!("... ({} rows total)\n", self.rows.len()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::{AttrId, ClassId};

    fn cols() -> Vec<AttrRef> {
        vec![AttrRef::new(ClassId(0), AttrId(0)), AttrRef::new(ClassId(1), AttrId(2))]
    }

    #[test]
    fn multiset_equality_ignores_order() {
        let mut a = ResultSet::new(cols());
        a.rows.push(vec![Value::Int(1), Value::str("x")]);
        a.rows.push(vec![Value::Int(2), Value::str("y")]);
        let mut b = ResultSet::new(cols());
        b.rows.push(vec![Value::Int(2), Value::str("y")]);
        b.rows.push(vec![Value::Int(1), Value::str("x")]);
        assert!(a.same_multiset(&b));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn multiset_equality_respects_multiplicity() {
        let mut a = ResultSet::new(cols());
        a.rows.push(vec![Value::Int(1), Value::str("x")]);
        a.rows.push(vec![Value::Int(1), Value::str("x")]);
        let mut b = ResultSet::new(cols());
        b.rows.push(vec![Value::Int(1), Value::str("x")]);
        assert!(!a.same_multiset(&b));
    }

    #[test]
    fn different_columns_never_equal() {
        let a = ResultSet::new(cols());
        let b = ResultSet::new(vec![AttrRef::new(ClassId(0), AttrId(0))]);
        assert!(!a.same_multiset(&b));
    }

    #[test]
    fn separator_prevents_cell_bleed() {
        // ("ab", "c") must differ from ("a", "bc").
        let cols = vec![AttrRef::new(ClassId(0), AttrId(0)), AttrRef::new(ClassId(0), AttrId(1))];
        let mut a = ResultSet::new(cols.clone());
        a.rows.push(vec![Value::str("ab"), Value::str("c")]);
        let mut b = ResultSet::new(cols);
        b.rows.push(vec![Value::str("a"), Value::str("bc")]);
        assert!(!a.same_multiset(&b));
    }
}
