//! Plan-skeleton persistence: byte codec for [`PhysicalPlan`].
//!
//! A persisted plan is a *skeleton*: the access shapes, residuals, join
//! steps and cost estimates of the winning plan, exactly as the planner
//! emitted it. Rehydration produces a plan the executor can run directly;
//! whether it is still the *best* plan is governed by the snapshot's store
//! version and data epoch (the serving layer re-stamps seeds at warm
//! start and its epoch gates re-derive when either epoch moves on).

#![deny(missing_docs)]

use sqo_catalog::{ClassId, RelId};
use sqo_snapshot::{
    read_attr_ref, read_join_predicate, read_projection, read_sel_predicate, read_value_set,
    write_attr_ref, write_join_predicate, write_projection, write_sel_predicate, write_value_set,
    ByteReader, ByteWriter, LoadError,
};

use crate::plan::{AccessPath, ClassAccess, JoinStep, PhysicalPlan};

fn write_class_access(w: &mut ByteWriter, a: &ClassAccess) {
    w.u32(a.class.0);
    match &a.path {
        AccessPath::SeqScan => w.u8(0),
        AccessPath::Index { attr, set } => {
            w.u8(1);
            write_attr_ref(w, *attr);
            write_value_set(w, set);
        }
    }
    w.u32(a.residual.len() as u32);
    for p in &a.residual {
        write_sel_predicate(w, p);
    }
}

fn read_class_access(r: &mut ByteReader<'_>) -> Result<ClassAccess, LoadError> {
    let class = ClassId(r.u32()?);
    let path = match r.u8()? {
        0 => AccessPath::SeqScan,
        1 => AccessPath::Index { attr: read_attr_ref(r)?, set: read_value_set(r)? },
        t => return Err(r.malformed(format!("unknown access-path tag {t}"))),
    };
    let mut residual = Vec::new();
    for _ in 0..r.count()? {
        residual.push(read_sel_predicate(r)?);
    }
    Ok(ClassAccess { class, path, residual })
}

/// Encodes a [`PhysicalPlan`] skeleton.
pub fn write_plan(w: &mut ByteWriter, plan: &PhysicalPlan) {
    write_class_access(w, &plan.root);
    w.u32(plan.steps.len() as u32);
    for s in &plan.steps {
        w.u32(s.rel.0);
        w.u32(s.from_class.0);
        write_class_access(w, &s.access);
        w.u32(s.join_filters.len() as u32);
        for p in &s.join_filters {
            write_join_predicate(w, p);
        }
        w.u32(s.link_filters.len() as u32);
        for (rel, a, b) in &s.link_filters {
            w.u32(rel.0);
            w.u32(a.0);
            w.u32(b.0);
        }
    }
    w.u32(plan.projections.len() as u32);
    for p in &plan.projections {
        write_projection(w, p);
    }
    w.f64(plan.estimated_cost);
    w.f64(plan.estimated_rows);
}

/// Decodes a [`PhysicalPlan`] skeleton.
///
/// # Errors
/// [`LoadError::Malformed`] on any structural problem; id-space validity
/// against a concrete catalog is the caller's (Strict-level) concern.
pub fn read_plan(r: &mut ByteReader<'_>) -> Result<PhysicalPlan, LoadError> {
    let root = read_class_access(r)?;
    let mut steps = Vec::new();
    for _ in 0..r.count()? {
        let rel = RelId(r.u32()?);
        let from_class = ClassId(r.u32()?);
        let access = read_class_access(r)?;
        let mut join_filters = Vec::new();
        for _ in 0..r.count()? {
            join_filters.push(read_join_predicate(r)?);
        }
        let mut link_filters = Vec::new();
        for _ in 0..r.count()? {
            link_filters.push((RelId(r.u32()?), ClassId(r.u32()?), ClassId(r.u32()?)));
        }
        steps.push(JoinStep { rel, from_class, access, join_filters, link_filters });
    }
    let mut projections = Vec::new();
    for _ in 0..r.count()? {
        projections.push(read_projection(r)?);
    }
    let estimated_cost = r.f64()?;
    let estimated_rows = r.f64()?;
    Ok(PhysicalPlan { root, steps, projections, estimated_cost, estimated_rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::{AttrId, AttrRef, Value};
    use sqo_query::{CompOp, JoinPredicate, Projection, SelPredicate, ValueSet};

    #[test]
    fn plan_skeleton_roundtrips() {
        let a = AttrRef::new(ClassId(0), AttrId(1));
        let b = AttrRef::new(ClassId(1), AttrId(0));
        let plan = PhysicalPlan {
            root: ClassAccess {
                class: ClassId(0),
                path: AccessPath::Index { attr: a, set: ValueSet::point(Value::str("x")) },
                residual: vec![SelPredicate::new(a, CompOp::Ne, Value::Int(3))],
            },
            steps: vec![JoinStep {
                rel: RelId(2),
                from_class: ClassId(0),
                access: ClassAccess {
                    class: ClassId(1),
                    path: AccessPath::SeqScan,
                    residual: vec![],
                },
                join_filters: vec![JoinPredicate::new(a, CompOp::Le, b)],
                link_filters: vec![(RelId(0), ClassId(0), ClassId(1))],
            }],
            projections: vec![Projection { attr: b, binding: None }],
            estimated_cost: 123.5,
            estimated_rows: 17.25,
        };
        let mut w = ByteWriter::new();
        write_plan(&mut w, &plan);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf, "TEST");
        let out = read_plan(&mut r).unwrap();
        r.expect_exhausted().unwrap();
        assert_eq!(out, plan);
    }

    #[test]
    fn truncated_plan_is_malformed() {
        let plan = PhysicalPlan {
            root: ClassAccess { class: ClassId(0), path: AccessPath::SeqScan, residual: vec![] },
            steps: vec![],
            projections: vec![],
            estimated_cost: 1.0,
            estimated_rows: 1.0,
        };
        let mut w = ByteWriter::new();
        write_plan(&mut w, &plan);
        let buf = w.finish();
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut], "TEST");
            assert!(read_plan(&mut r).is_err(), "cut at {cut} decoded");
        }
    }
}
