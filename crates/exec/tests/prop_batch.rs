//! Property test: the batched executor is observationally identical to the
//! sequential one. For arbitrary database populations, plan shapes and
//! probe sets (including the degenerate K = 1 batch), every probe of
//! [`execute_batch_with`] must reproduce its stand-alone
//! [`execute_with`] run exactly — result rows *in emission order* and
//! per-probe [`CostCounters`] alike — against the stand-alone plan
//! [`ProbeBinding::apply`] derives.

use proptest::prelude::*;
use std::sync::Arc;

use sqo_catalog::{example::figure21, Value};
use sqo_exec::{
    execute_batch_with, execute_with, plan_query, AccessPath, BatchExecScratch, CostModel,
    ExecScratch, ProbeBinding,
};
use sqo_query::{CompOp, Query, QueryBuilder, ValueSet};
use sqo_storage::{Database, IntegrityOptions, ObjectId};

/// A logistics instance with arbitrary extents and link strides. Every
/// cargo keeps exactly one supplies/collects link, so multiplicity
/// enforcement holds for any stride choice.
fn db(
    suppliers: usize,
    vehicles: usize,
    cargoes: usize,
    s_stride: usize,
    v_stride: usize,
) -> Database {
    let catalog = Arc::new(figure21().unwrap());
    let mut b = Database::builder(Arc::clone(&catalog));
    let supplier = catalog.class_id("supplier").unwrap();
    let cargo = catalog.class_id("cargo").unwrap();
    let vehicle = catalog.class_id("vehicle").unwrap();
    for i in 0..suppliers {
        b.insert(supplier, vec![Value::str(format!("s{i}")), Value::str("x")]).unwrap();
    }
    for i in 0..vehicles {
        let desc = if i % 2 == 0 { "refrigerated truck" } else { "flatbed" };
        b.insert(vehicle, vec![Value::Int(i as i64), Value::str(desc), Value::Int((i % 3) as i64)])
            .unwrap();
    }
    for i in 0..cargoes {
        let desc = if i % 3 == 0 { "frozen food" } else { "dry goods" };
        b.insert(cargo, vec![Value::Int(i as i64), Value::str(desc), Value::Int(i as i64)])
            .unwrap();
    }
    let supplies = catalog.rel_id("supplies").unwrap();
    let collects = catalog.rel_id("collects").unwrap();
    for i in 0..cargoes {
        b.link(supplies, ObjectId(i as u32), ObjectId(((i * s_stride + i) % suppliers) as u32))
            .unwrap();
        b.link(collects, ObjectId(i as u32), ObjectId(((i * v_stride) % vehicles) as u32)).unwrap();
    }
    b.finalize(IntegrityOptions { enforce_total_participation: false, enforce_multiplicity: true })
        .unwrap()
}

/// One of four plan shapes (single class, two 2-class chains, the 3-class
/// chain), with optional filters per class drawn from the generated flags.
fn query(
    db: &Database,
    shape: u8,
    filter_cargo: bool,
    filter_vehicle: bool,
    supplier_pick: usize,
) -> Query {
    let catalog = db.catalog().clone();
    let mut qb = QueryBuilder::new(&catalog).select("cargo.code");
    if filter_cargo {
        qb = qb.filter("cargo.desc", CompOp::Eq, "frozen food");
    }
    match shape % 4 {
        0 => {}
        1 => {
            qb = qb.select("vehicle.vehicle_no").via("collects");
            if filter_vehicle {
                qb = qb.filter("vehicle.desc", CompOp::Eq, "refrigerated truck");
            }
        }
        2 => {
            qb = qb.select("supplier.address").via("supplies").filter(
                "supplier.name",
                CompOp::Eq,
                Value::str(format!("s{supplier_pick}")),
            );
        }
        _ => {
            qb = qb.select("vehicle.vehicle_no").via("collects").via("supplies").filter(
                "supplier.name",
                CompOp::Eq,
                Value::str(format!("s{supplier_pick}")),
            );
            if filter_vehicle {
                qb = qb.filter("vehicle.desc", CompOp::Eq, "flatbed");
            }
        }
    }
    qb.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched ≡ sequential over arbitrary populations, shapes and widths
    /// (width 1 included), with one scratch recycled across every case.
    #[test]
    fn batch_matches_sequential(
        suppliers in 1usize..12,
        vehicles in 1usize..10,
        cargoes in 0usize..24,
        s_stride in 0usize..7,
        v_stride in 0usize..7,
        shape in 0u8..4,
        filter_cargo in 0u8..2,
        filter_vehicle in 0u8..2,
        widths in prop::collection::vec(1usize..6, 1..3),
    ) {
        let db = db(suppliers, vehicles, cargoes, s_stride, v_stride);
        let q = query(&db, shape, filter_cargo == 1, filter_vehicle == 1, suppliers / 2);
        let plan = plan_query(&db, &q, &CostModel::default()).unwrap();
        let mut scratch = BatchExecScratch::new();
        let mut seq_scratch = ExecScratch::new();
        for width in widths {
            let probes = vec![ProbeBinding::AsPlanned; width];
            let batched = execute_batch_with(&db, &plan, &probes, &mut scratch).unwrap();
            prop_assert_eq!(batched.len(), width);
            for (probe, (rows, counters)) in probes.iter().zip(&batched) {
                let solo = probe.apply(&plan).unwrap();
                let (want_rows, want_counters) =
                    execute_with(&db, &solo, &mut seq_scratch).unwrap();
                prop_assert_eq!(&rows.rows, &want_rows.rows);
                prop_assert_eq!(counters, &want_counters);
            }
        }
    }

    /// Re-keyed root probes (the parameterized-batch shape): each probe of
    /// a mixed AsPlanned/RootSet batch over an index-rooted plan matches
    /// the stand-alone plan its binding derives.
    #[test]
    fn rekeyed_batch_matches_sequential(
        suppliers in 40usize..200,
        keys in prop::collection::vec(0usize..220, 1..9),
        mix in prop::collection::vec(0u8..2, 1..9),
    ) {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        for i in 0..suppliers {
            b.insert(supplier, vec![Value::str(format!("s{i}")), Value::str("x")]).unwrap();
        }
        let db = b
            .finalize(IntegrityOptions {
                enforce_total_participation: false,
                enforce_multiplicity: true,
            })
            .unwrap();
        let q = QueryBuilder::new(&catalog)
            .select("supplier.address")
            .filter("supplier.name", CompOp::Eq, "s1")
            .build()
            .unwrap();
        let plan = plan_query(&db, &q, &CostModel::default()).unwrap();
        prop_assume!(matches!(plan.root.path, AccessPath::Index { .. }));
        // Keys beyond the extent probe for absent values on purpose.
        let probes: Vec<ProbeBinding> = keys
            .iter()
            .zip(mix.iter().cycle())
            .map(|(&k, &as_planned)| {
                if as_planned == 1 {
                    ProbeBinding::AsPlanned
                } else {
                    ProbeBinding::RootSet(ValueSet::point(Value::str(format!("s{k}"))))
                }
            })
            .collect();
        let batched =
            execute_batch_with(&db, &plan, &probes, &mut BatchExecScratch::new()).unwrap();
        for (probe, (rows, counters)) in probes.iter().zip(&batched) {
            let solo = probe.apply(&plan).unwrap();
            let (want_rows, want_counters) =
                execute_with(&db, &solo, &mut ExecScratch::new()).unwrap();
            prop_assert_eq!(&rows.rows, &want_rows.rows);
            prop_assert_eq!(counters, &want_counters);
        }
    }
}
