//! # sqo-baseline
//!
//! Baseline semantic optimizers the paper compares against (§4):
//!
//! * [`StraightforwardOptimizer`] — evaluate each transformation's
//!   profitability and apply it *immediately and physically*. Earlier
//!   transformations can preclude later ones, so the outcome is
//!   order-dependent; experiment E5 measures how much.
//! * [`exhaustive_best`] — the exponential ground truth: branch on
//!   apply/skip for every enabled transformation and keep the cheapest
//!   plan. Feasible only for small inputs, which is the paper's point.
//!
//! (The third baseline, ungrouped constraint retrieval, lives on
//! `ConstraintStore::relevant_for_ungrouped` since it is a retrieval-path
//! variant, not an optimizer.)

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

mod exhaustive;
mod straightforward;

pub use exhaustive::{exhaustive_best, ExhaustiveOutcome, SearchLimits};
pub use straightforward::{ApplicationOrder, StraightforwardOptimizer, StraightforwardOutcome};
