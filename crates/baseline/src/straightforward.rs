//! The "straight-forward approach" of §4 — the baseline the paper argues
//! against:
//!
//! > "A straight-forward approach to do semantic optimization is to evaluate
//! > the profitability of each transformation, and if deemed profitable,
//! > immediately apply it to the query. This way, some transformations might
//! > preclude other transformations (eg. eliminating an antecedent predicate
//! > of a semantic constraint means it cannot be used to introduce its
//! > consequent predicate) and hence the order of transformations is
//! > important."
//!
//! Transformations are applied *physically*, one at a time, in a
//! caller-chosen order; each constraint is considered once. The outcome is
//! order-dependent by construction, which experiment E5 demonstrates.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sqo_catalog::Catalog;
use sqo_constraints::{ConstraintId, ConstraintStore};
use sqo_core::ProfitOracle;
use sqo_query::{Predicate, Query};

/// Order in which candidate transformations are attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplicationOrder {
    /// Constraints as retrieved from the store.
    AsRetrieved,
    /// All introductions before eliminations.
    IntroductionsFirst,
    /// All eliminations before introductions — the order that showcases
    /// preclusion (an eliminated antecedent can no longer fire a chain).
    EliminationsFirst,
    /// Deterministic shuffle.
    Seeded(u64),
}

/// What the straight-forward optimizer did.
#[derive(Debug, Clone)]
pub struct StraightforwardOutcome {
    pub query: Query,
    /// Constraints applied, in application order.
    pub applied: Vec<ConstraintId>,
    /// Candidate transformations that were evaluated but rejected or
    /// precluded.
    pub skipped: usize,
}

/// One candidate transformation on the current (physical) query.
#[derive(Debug, Clone)]
enum Action {
    /// Remove the consequent (restriction elimination).
    Eliminate(Predicate),
    /// Add the consequent (restriction/index introduction).
    Introduce(Predicate),
}

/// The immediate-application baseline optimizer.
#[derive(Debug)]
pub struct StraightforwardOptimizer<'a> {
    store: &'a ConstraintStore,
    order: ApplicationOrder,
}

impl<'a> StraightforwardOptimizer<'a> {
    pub fn new(store: &'a ConstraintStore, order: ApplicationOrder) -> Self {
        Self { store, order }
    }

    /// Runs the baseline. Each relevant constraint is evaluated at most
    /// once, in the configured order, against the *current* physical query;
    /// profitable transformations are applied immediately.
    pub fn optimize(&self, query: &Query, oracle: &dyn ProfitOracle) -> StraightforwardOutcome {
        let catalog = self.store.catalog().clone();
        let mut q = query.clone();
        let mut order: Vec<ConstraintId> = self.store.relevant_for(&q);
        self.sort(&mut order);

        let mut applied = Vec::new();
        let mut skipped = 0usize;
        let mut remaining: Vec<ConstraintId> = order;
        // Passes repeat until a full pass applies nothing: a constraint whose
        // antecedents only became available later still gets its chance, but
        // one that fired or was rejected is spent.
        loop {
            let mut progressed = false;
            let mut next_round = Vec::new();
            for id in remaining.drain(..) {
                match self.try_apply(&catalog, &mut q, id, oracle) {
                    TryOutcome::Applied => {
                        applied.push(id);
                        progressed = true;
                    }
                    TryOutcome::Rejected => skipped += 1,
                    TryOutcome::NotYetEnabled => next_round.push(id),
                }
            }
            remaining = next_round;
            if !progressed || remaining.is_empty() {
                skipped += remaining.len();
                break;
            }
        }
        StraightforwardOutcome { query: q, applied, skipped }
    }

    fn sort(&self, ids: &mut [ConstraintId]) {
        match self.order {
            ApplicationOrder::AsRetrieved => {}
            ApplicationOrder::IntroductionsFirst | ApplicationOrder::EliminationsFirst => {
                // Heuristic static key: constraints whose consequent appears
                // in more queries tend to eliminate; we approximate by name
                // stability — the dynamic decision happens in try_apply, so
                // here we only bias the order deterministically.
                ids.sort_by_key(|id| id.index());
                if self.order == ApplicationOrder::EliminationsFirst {
                    ids.reverse();
                }
            }
            ApplicationOrder::Seeded(seed) => {
                let mut rng = StdRng::seed_from_u64(seed);
                ids.shuffle(&mut rng);
            }
        }
    }

    fn try_apply(
        &self,
        catalog: &Catalog,
        q: &mut Query,
        id: ConstraintId,
        oracle: &dyn ProfitOracle,
    ) -> TryOutcome {
        let c = self.store.constraint(id);
        if !c.relevant_to(q) {
            return TryOutcome::Rejected;
        }
        // All antecedents must be present in the *current* query — physical
        // application means an earlier elimination can disable this forever.
        if !c.antecedents.iter().all(|a| q.satisfies_predicate(a)) {
            return TryOutcome::NotYetEnabled;
        }
        let action = if q.contains_predicate(&c.consequent) {
            Action::Eliminate(c.consequent.clone())
        } else {
            Action::Introduce(c.consequent.clone())
        };
        match action {
            Action::Eliminate(pred) => {
                let without = remove_pred(q, &pred);
                // Immediate profitability: drop if the oracle says removal
                // is no worse.
                if !oracle.retain_optional(q, &without, &pred) {
                    *q = without;
                    TryOutcome::Applied
                } else {
                    TryOutcome::Rejected
                }
            }
            Action::Introduce(pred) => {
                let mut with = q.clone();
                add_pred(&mut with, &pred);
                if with.validate(catalog).is_err() {
                    return TryOutcome::Rejected;
                }
                if oracle.retain_optional(&with, q, &pred) {
                    *q = with;
                    TryOutcome::Applied
                } else {
                    TryOutcome::Rejected
                }
            }
        }
    }
}

#[derive(Debug)]
enum TryOutcome {
    Applied,
    Rejected,
    NotYetEnabled,
}

fn remove_pred(q: &Query, pred: &Predicate) -> Query {
    let mut out = q.clone();
    match pred {
        Predicate::Sel(s) => out.selective_predicates.retain(|x| x != s),
        Predicate::Join(j) => out.join_predicates.retain(|x| x != j),
    }
    out
}

fn add_pred(q: &mut Query, pred: &Predicate) {
    match pred {
        Predicate::Sel(s) => {
            if !q.selective_predicates.contains(s) {
                q.selective_predicates.push(s.clone());
            }
        }
        Predicate::Join(j) => {
            if !q.join_predicates.contains(j) {
                q.join_predicates.push(*j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::example::figure21;
    use sqo_constraints::{figure22, StoreOptions};
    use sqo_core::{DropAllOracle, StructuralOracle};
    use sqo_query::{CompOp, QueryBuilder};
    use std::sync::Arc;

    fn store() -> ConstraintStore {
        let catalog = Arc::new(figure21().unwrap());
        ConstraintStore::build(
            Arc::clone(&catalog),
            figure22(&catalog).unwrap(),
            StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
        )
        .unwrap()
    }

    fn fig23(catalog: &Catalog) -> Query {
        QueryBuilder::new(catalog)
            .select("vehicle.vehicle_no")
            .select("cargo.desc")
            .select("cargo.quantity")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("supplier.name", CompOp::Eq, "SFI")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap()
    }

    #[test]
    fn chain_applies_when_introductions_lead() {
        let store = store();
        let catalog = store.catalog().clone();
        let q = fig23(&catalog);
        // StructuralOracle retains everything: introductions are profitable,
        // eliminations are not (retain_optional == true).
        let opt = StraightforwardOptimizer::new(&store, ApplicationOrder::AsRetrieved);
        let out = opt.optimize(&q, &StructuralOracle);
        // c1 introduces cargo.desc = "frozen food".
        assert_eq!(out.applied.len(), 1);
        assert!(out
            .query
            .selective_predicates
            .iter()
            .any(|s| s.value == sqo_catalog::Value::str("frozen food")));
    }

    #[test]
    fn eliminations_preclude_chains() {
        let store = store();
        let catalog = store.catalog().clone();
        let q = fig23(&catalog);
        // DropAllOracle treats every elimination as profitable and every
        // introduction as unprofitable: supplier.name = "SFI" can be dropped
        // only after cargo.desc is introduced — which never happens, so the
        // baseline strands the chain. (Our algorithm would still lower both.)
        let opt = StraightforwardOptimizer::new(&store, ApplicationOrder::AsRetrieved);
        let out = opt.optimize(&q, &DropAllOracle);
        assert!(out.applied.is_empty(), "{out:?}");
        assert_eq!(out.query.selective_predicates.len(), 2, "nothing could fire");
    }

    #[test]
    fn orders_are_deterministic() {
        let store = store();
        let catalog = store.catalog().clone();
        let q = fig23(&catalog);
        for order in [
            ApplicationOrder::AsRetrieved,
            ApplicationOrder::IntroductionsFirst,
            ApplicationOrder::EliminationsFirst,
            ApplicationOrder::Seeded(42),
        ] {
            let opt = StraightforwardOptimizer::new(&store, order);
            let a = opt.optimize(&q, &StructuralOracle);
            let b = opt.optimize(&q, &StructuralOracle);
            assert_eq!(a.query.normalized(), b.query.normalized());
            assert_eq!(a.applied, b.applied);
        }
    }
}
