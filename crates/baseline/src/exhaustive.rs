//! Exhaustive transformation search — the (exponential) ground truth.
//!
//! §4 argues the tentative algorithm finds an outcome "at least as good as"
//! the straight-forward approach under any order. For small inputs we can
//! verify that claim against the true optimum: branch on apply/skip for
//! every enabled transformation, score terminal queries with the
//! conventional planner, and return the cheapest semantically-equivalent
//! query reachable. The state space is exponential — exactly the cost the
//! paper's polynomial algorithm avoids — so depth and state limits apply.

use std::collections::HashSet;

use sqo_constraints::{ConstraintId, ConstraintStore};
use sqo_exec::{plan_query, CostModel};
use sqo_query::{Predicate, Query};
use sqo_storage::Database;

/// Search limits.
#[derive(Debug, Clone, Copy)]
pub struct SearchLimits {
    /// Maximum distinct query states explored.
    pub max_states: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        Self { max_states: 10_000 }
    }
}

/// Result of the exhaustive search.
#[derive(Debug, Clone)]
pub struct ExhaustiveOutcome {
    pub best_query: Query,
    pub best_cost: f64,
    pub states_explored: usize,
    pub truncated: bool,
}

/// Explores every apply/skip combination of constraint firings on the
/// *physical* query, returning the cheapest (by planner estimate) outcome.
pub fn exhaustive_best(
    db: &Database,
    store: &ConstraintStore,
    query: &Query,
    model: &CostModel,
    limits: SearchLimits,
) -> ExhaustiveOutcome {
    let relevant = store.relevant_for(query);
    let mut seen: HashSet<String> = HashSet::new();
    let mut best_query = query.clone();
    let mut best_cost =
        plan_query(db, query, model).map(|p| p.estimated_cost).unwrap_or(f64::INFINITY);
    let mut states = 0usize;
    let mut truncated = false;

    let mut stack: Vec<(Query, Vec<ConstraintId>)> = vec![(query.clone(), relevant)];
    while let Some((q, remaining)) = stack.pop() {
        if states >= limits.max_states {
            truncated = true;
            break;
        }
        let key = format!("{:?}", q.clone().normalized());
        if !seen.insert(key) {
            continue;
        }
        states += 1;
        if let Ok(plan) = plan_query(db, &q, model) {
            if plan.estimated_cost < best_cost {
                best_cost = plan.estimated_cost;
                best_query = q.clone();
            }
        }
        // Branch on every currently-enabled transformation.
        for (i, &id) in remaining.iter().enumerate() {
            let c = store.constraint(id);
            if !c.relevant_to(&q) {
                continue;
            }
            if !c.antecedents.iter().all(|a| q.satisfies_predicate(a)) {
                continue;
            }
            let mut rest = remaining.clone();
            rest.remove(i);
            // Apply as elimination or introduction; both are sound because
            // the consequent is implied by the present antecedents.
            let mut applied = q.clone();
            if q.contains_predicate(&c.consequent) {
                match &c.consequent {
                    Predicate::Sel(s) => applied.selective_predicates.retain(|x| x != s),
                    Predicate::Join(j) => applied.join_predicates.retain(|x| x != j),
                }
            } else {
                match &c.consequent {
                    Predicate::Sel(s) => applied.selective_predicates.push(s.clone()),
                    Predicate::Join(j) => applied.join_predicates.push(*j),
                }
            }
            stack.push((applied, rest.clone()));
        }
    }
    ExhaustiveOutcome { best_query, best_cost, states_explored: states, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::{example::figure21, Value};
    use sqo_constraints::{figure22, StoreOptions};
    use sqo_query::{CompOp, QueryBuilder};
    use sqo_storage::{IntegrityOptions, ObjectId};
    use std::sync::Arc;

    fn db() -> Database {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        let cargo = catalog.class_id("cargo").unwrap();
        let vehicle = catalog.class_id("vehicle").unwrap();
        for i in 0..20 {
            let name = if i == 0 { "SFI".into() } else { format!("s{i}") };
            b.insert(supplier, vec![Value::str(name), Value::str("a")]).unwrap();
        }
        for i in 0..20 {
            let desc = if i % 4 == 0 { "refrigerated truck" } else { "flatbed" };
            b.insert(vehicle, vec![Value::Int(i), Value::str(desc), Value::Int(0)]).unwrap();
        }
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        for i in 0..80i64 {
            let v = (i % 20) as u32;
            let frozen = v % 4 == 0;
            let desc = if frozen { "frozen food" } else { "dry goods" };
            let oid =
                b.insert(cargo, vec![Value::Int(i), Value::str(desc), Value::Int(i)]).unwrap();
            b.link(supplies, oid, ObjectId(if frozen { 0 } else { 1 + (i as u32 % 19) })).unwrap();
            b.link(collects, oid, ObjectId(v)).unwrap();
        }
        b.finalize(IntegrityOptions {
            enforce_total_participation: false,
            enforce_multiplicity: true,
        })
        .unwrap()
    }

    #[test]
    fn explores_and_never_worsens() {
        let db = db();
        let catalog = db.catalog().clone();
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            figure22(&catalog).unwrap(),
            StoreOptions::paper_defaults(),
        )
        .unwrap();
        let q = QueryBuilder::new(&catalog)
            .select("vehicle.vehicle_no")
            .select("cargo.quantity")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("supplier.name", CompOp::Eq, "SFI")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap();
        let model = CostModel::default();
        let base_cost = plan_query(&db, &q, &model).unwrap().estimated_cost;
        let out = exhaustive_best(&db, &store, &q, &model, SearchLimits::default());
        assert!(out.states_explored >= 2);
        assert!(!out.truncated);
        assert!(out.best_cost <= base_cost);
    }

    #[test]
    fn truncation_respected() {
        let db = db();
        let catalog = db.catalog().clone();
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            figure22(&catalog).unwrap(),
            StoreOptions::paper_defaults(),
        )
        .unwrap();
        let q = QueryBuilder::new(&catalog)
            .select("cargo.quantity")
            .filter("cargo.desc", CompOp::Eq, "frozen food")
            .via("supplies")
            .build()
            .unwrap();
        let out =
            exhaustive_best(&db, &store, &q, &CostModel::default(), SearchLimits { max_states: 1 });
        assert!(out.states_explored <= 1);
    }
}
