//! Collision-freedom of the store's `(generation, epoch)` identity.
//!
//! The serving layer keys its plan cache on [`StoreVersion`]; the scheme is
//! only sound if **no two distinct store states ever share an identity**,
//! under arbitrary interleavings of the three mutating operations:
//! `note_statistics_change` (in-place epoch bump), `insert_constraint`
//! (in-place population change + epoch bump) and `with_constraint`
//! (copy-on-write successor chains). The raw epoch provably collides under
//! such interleavings (a successor starts at `source.epoch() + 1`, which
//! the source can then reach itself); these properties pin down that the
//! generation-qualified identity does not.

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

use sqo_catalog::example::figure21;
use sqo_constraints::{figure22, ConstraintId, ConstraintStore, StoreOptions, StoreVersion};

/// One mutating operation against a pool of live stores. Indices are taken
/// modulo the pool size at application time, so any `u8` is valid.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `note_statistics_change` on pool store `i`.
    Stats(u8),
    /// `insert_constraint` (a duplicate of c1) on pool store `i`.
    Insert(u8),
    /// Push `pool[i].with_constraint(c1)` as a new pool store.
    Cow(u8),
}

fn op() -> impl Strategy<Value = Op> {
    (0u32..3, 0u8..=255).prop_map(|(kind, i)| match kind {
        0 => Op::Stats(i),
        1 => Op::Insert(i),
        _ => Op::Cow(i),
    })
}

fn base_store() -> ConstraintStore {
    let catalog = Arc::new(figure21().unwrap());
    let constraints = figure22(&catalog).unwrap();
    ConstraintStore::build(Arc::clone(&catalog), constraints, StoreOptions::paper_defaults())
        .unwrap()
}

proptest! {
    #[test]
    fn versions_never_collide_across_interleavings(ops in proptest::collection::vec(op(), 1..40)) {
        let mut pool = vec![base_store()];
        // Every observed (store state, version) — a state is identified by
        // (pool slot, constraint count, epoch); its version must be unique
        // across *all* states of *all* stores.
        let mut seen: HashSet<StoreVersion> = HashSet::new();
        let note = |v: StoreVersion, seen: &mut HashSet<StoreVersion>| {
            prop_assert!(seen.insert(v), "version {v:?} observed for two distinct store states");
        };
        note(pool[0].version(), &mut seen);
        for op in ops {
            match op {
                Op::Stats(i) => {
                    let s = &pool[i as usize % pool.len()];
                    s.note_statistics_change();
                    note(s.version(), &mut seen);
                }
                Op::Insert(i) => {
                    let at = i as usize % pool.len();
                    let dup = pool[at].constraint(ConstraintId(0)).clone();
                    pool[at].insert_constraint(dup);
                    note(pool[at].version(), &mut seen);
                }
                Op::Cow(i) => {
                    let src = &pool[i as usize % pool.len()];
                    let dup = src.constraint(ConstraintId(0)).clone();
                    let next = src.with_constraint(dup);
                    note(next.version(), &mut seen);
                    pool.push(next);
                }
            }
        }
        // Sanity: with any COW + in-place mix beyond one op, raw epochs DO
        // collide somewhere in this state space — the generation carries the
        // disambiguation, not the epoch (checked via the full set above).
        for s in &pool {
            prop_assert!(seen.contains(&s.version()));
        }
    }

    #[test]
    fn epochs_stay_monotone_within_one_store(bumps in proptest::collection::vec(0u32..2, 1..20)) {
        let mut store = base_store();
        let g = store.generation();
        let mut last = store.epoch();
        for b in bumps {
            if b == 0 {
                store.note_statistics_change();
            } else {
                let dup = store.constraint(ConstraintId(0)).clone();
                store.insert_constraint(dup);
            }
            prop_assert!(store.epoch() > last);
            prop_assert_eq!(store.generation(), g, "in-place mutation keeps the generation");
            last = store.epoch();
        }
    }
}
