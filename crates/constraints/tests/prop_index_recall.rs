//! Recall-equivalence of the secondary constraint index: for arbitrary
//! stores and queries, the indexed retrieval
//! (`ConstraintStore::relevant_for_indexed`) must return **exactly** the
//! same constraint set as the linear-scan baseline
//! (`relevant_for_ungrouped`) and as the paper's grouped scheme
//! (`relevant_for`) — the index may never drop a relevant constraint nor
//! invent an irrelevant one, including across incremental inserts and
//! copy-on-write store copies.

use proptest::prelude::*;
use std::sync::Arc;

use sqo_catalog::{AttributeDef, Catalog, ClassId, DataType, RelId};
use sqo_constraints::{ConstraintStore, HornConstraint, Origin, StoreOptions};
use sqo_query::{CompOp, Predicate, Query};

const CLASSES: usize = 6;
const ATTRS: usize = 3;

/// A 6-class chain schema with 3 int attributes per class and a
/// relationship between each adjacent pair — enough shape for constraints
/// spanning 1–3 classes with relationship requirements.
fn catalog() -> Arc<Catalog> {
    let mut b = Catalog::builder();
    let mut ids = Vec::new();
    for c in 0..CLASSES {
        let attrs = (0..ATTRS).map(|a| AttributeDef::new(format!("a{a}"), DataType::Int)).collect();
        ids.push(b.class(format!("c{c}"), attrs).unwrap());
    }
    for w in ids.windows(2) {
        b.many_to_one(format!("r{}", w[0].0), w[0], w[1]).unwrap();
    }
    Arc::new(b.build().unwrap())
}

/// One randomly-shaped (but always valid) constraint: distinct antecedent
/// attributes, a consequent on a different attribute, and any subset of the
/// adjacent relationships among the referenced classes.
#[derive(Debug, Clone)]
struct RawConstraint {
    antecedents: Vec<(usize, usize, i64)>, // (class, attr, value)
    consequent: (usize, usize, i64),
    rels: Vec<usize>,
}

fn raw_constraint() -> impl Strategy<Value = RawConstraint> {
    let site = (0..CLASSES, 0..ATTRS, -3i64..3);
    (
        proptest::collection::vec(site.clone(), 0..3),
        site,
        proptest::collection::vec(0..(CLASSES - 1), 0..2),
    )
        .prop_map(|(antecedents, consequent, rels)| RawConstraint {
            antecedents,
            consequent,
            rels,
        })
}

fn materialize(catalog: &Catalog, raw: &RawConstraint) -> Option<HornConstraint> {
    let pred = |&(c, a, v): &(usize, usize, i64)| {
        let attr = catalog.attr_ref(&format!("c{c}"), &format!("a{a}")).unwrap();
        Predicate::sel(attr, CompOp::Eq, v)
    };
    // Drop clauses with duplicate antecedent sites — same-attribute equality
    // pairs are either redundant or contradictory, both rejected anyway.
    let mut sites: Vec<(usize, usize)> = raw.antecedents.iter().map(|&(c, a, _)| (c, a)).collect();
    sites.push((raw.consequent.0, raw.consequent.1));
    sites.sort_unstable();
    sites.dedup();
    if sites.len() != raw.antecedents.len() + 1 {
        return None;
    }
    HornConstraint::new(
        catalog,
        "p",
        raw.antecedents.iter().map(pred).collect(),
        raw.rels.iter().map(|&r| RelId(r as u32)).collect(),
        pred(&raw.consequent),
        vec![],
        Origin::Declared,
    )
    .ok()
}

/// A raw retrieval probe: any class subset and relationship subset. The
/// retrieval APIs only consult these two lists, so the probe need not be an
/// executable (connected, projected) query.
fn raw_query() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (
        proptest::collection::vec(0..CLASSES, 0..CLASSES),
        proptest::collection::vec(0..(CLASSES - 1), 0..3),
    )
}

fn probe(classes: &[usize], rels: &[usize]) -> Query {
    let mut q = Query::new();
    q.classes = classes.iter().map(|&c| ClassId(c as u32)).collect();
    q.classes.sort_unstable();
    q.classes.dedup();
    q.relationships = rels.iter().map(|&r| RelId(r as u32)).collect();
    q.relationships.sort_unstable();
    q.relationships.dedup();
    q
}

fn assert_equivalent(store: &ConstraintStore, query: &Query) {
    let mut indexed = store.relevant_for_indexed(query);
    let mut grouped = store.relevant_for(query);
    let mut linear = store.relevant_for_ungrouped(query);
    indexed.sort_unstable();
    grouped.sort_unstable();
    linear.sort_unstable();
    assert_eq!(indexed, linear, "index must match the linear scan exactly");
    assert_eq!(grouped, linear, "grouped retrieval must match the linear scan exactly");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `(ClassId, attr)` antecedent postings are complete and exact:
    /// `watchers(key)` returns precisely the constraints holding a value
    /// antecedent on that attribute — the candidate set a predicate on the
    /// attribute could enable (implication never crosses attributes).
    #[test]
    fn antecedent_watchers_match_brute_force(
        raws in proptest::collection::vec(raw_constraint(), 0..16),
    ) {
        let catalog = catalog();
        let constraints: Vec<HornConstraint> =
            raws.iter().filter_map(|r| materialize(&catalog, r)).collect();
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            constraints,
            StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
        ).unwrap();
        for c in 0..CLASSES {
            for a in 0..ATTRS {
                let attr = catalog.attr_ref(&format!("c{c}"), &format!("a{a}")).unwrap();
                let probe = Predicate::sel(attr, CompOp::Eq, 0i64);
                let mut indexed: Vec<_> =
                    store.index().watchers(sqo_constraints::AttrKey::of(&probe)).to_vec();
                indexed.sort_unstable();
                let mut brute: Vec<_> = store
                    .constraints()
                    .filter(|(_, hc)| hc.antecedents.iter().any(
                        |p| sqo_constraints::AttrKey::of(p) == sqo_constraints::AttrKey::of(&probe),
                    ))
                    .map(|(id, _)| id)
                    .collect();
                brute.sort_unstable();
                assert_eq!(indexed, brute, "watchers must equal the brute-force antecedent scan");
            }
        }
    }

    /// Build-time index: equivalence over arbitrary stores and probes.
    #[test]
    fn indexed_retrieval_equals_linear_scan(
        raws in proptest::collection::vec(raw_constraint(), 0..16),
        probes in proptest::collection::vec(raw_query(), 1..8),
        materialize_closure in (0..2usize).prop_map(|b| b == 1),
    ) {
        let catalog = catalog();
        let constraints: Vec<HornConstraint> =
            raws.iter().filter_map(|r| materialize(&catalog, r)).collect();
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            constraints,
            StoreOptions { materialize_closure, ..StoreOptions::paper_defaults() },
        ).unwrap();
        for (classes, rels) in &probes {
            assert_equivalent(&store, &probe(classes, rels));
        }
    }

    /// The index stays exact across in-place inserts and copy-on-write
    /// copies (the serving layer's constraint-update path).
    #[test]
    fn index_survives_inserts_and_cow_copies(
        base in proptest::collection::vec(raw_constraint(), 0..8),
        extra in proptest::collection::vec(raw_constraint(), 1..6),
        probes in proptest::collection::vec(raw_query(), 1..6),
    ) {
        let catalog = catalog();
        let constraints: Vec<HornConstraint> =
            base.iter().filter_map(|r| materialize(&catalog, r)).collect();
        let mut store = ConstraintStore::build(
            Arc::clone(&catalog),
            constraints,
            StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
        ).unwrap();
        let seeds: Vec<HornConstraint> =
            extra.iter().filter_map(|r| materialize(&catalog, r)).collect();
        prop_assume!(!seeds.is_empty());
        // Keep the in-place store and the copy-on-write chain in lockstep.
        store.insert_constraint(seeds[0].clone());
        let mut cow = ConstraintStore::build(
            Arc::clone(&catalog),
            base.iter().filter_map(|r| materialize(&catalog, r)).collect(),
            StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
        ).unwrap().with_constraint(seeds[0].clone());
        for c in &seeds[1..] {
            store.insert_constraint(c.clone());
            cow = cow.with_constraint(c.clone());
        }
        for (classes, rels) in &probes {
            let q = probe(classes, rels);
            assert_equivalent(&store, &q);
            assert_equivalent(&cow, &q);
        }
    }
}
