//! Horn-clause semantic constraints.
//!
//! A constraint has the paper's shape (Figure 2.2):
//!
//! ```text
//! antecedent₁ ∧ … ∧ antecedentₖ  →  consequent
//! ```
//!
//! where the antecedents are value predicates plus *structural* conditions:
//! the object classes mentioned and the relationships correlating them
//! (c1's shared `collects` variable becomes an explicit relationship
//! requirement — DESIGN.md §3.3). A constraint with no value antecedents
//! (like c4, "only research staff members can be appointed as managers")
//! fires for any query touching its classes.

use std::fmt;

use serde::{Deserialize, Serialize};
use sqo_catalog::{Catalog, ClassId, RelId};
use sqo_query::{Predicate, Query};

use crate::error::ConstraintError;

/// Identifier of a constraint within a [`ConstraintStore`](crate::ConstraintStore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConstraintId(pub u32);

impl ConstraintId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConstraintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The paper's intra/inter classification (§3.2): intra-class constraints
/// reference attributes of exactly one object class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintClass {
    Intra,
    Inter,
}

/// Where a constraint came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Origin {
    /// Declared integrity constraint (always true of the database).
    Declared,
    /// Derived by the transitive-closure precompilation (§3).
    Derived,
    /// Siegel-style rule reflecting only the *current* database state; kept
    /// separate so callers can invalidate them on update (§1 discussion).
    Dynamic,
}

/// A validated Horn-clause constraint over a catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HornConstraint {
    /// Human-oriented label ("c1", "refrigerated-trucks-carry-frozen-food").
    pub name: String,
    /// Conjunction of value predicates that must hold.
    pub antecedents: Vec<Predicate>,
    /// Relationships correlating the referenced classes.
    pub relationships: Vec<RelId>,
    /// The single derived predicate.
    pub consequent: Predicate,
    /// Classes referenced anywhere in the constraint (sorted, deduped).
    pub classes: Vec<ClassId>,
    pub origin: Origin,
}

impl HornConstraint {
    /// Builds and validates a constraint. The class set is *computed*: union
    /// of predicate classes, relationship endpoints and `extra_classes`
    /// (membership-only references like c4's `manager`).
    pub fn new(
        catalog: &Catalog,
        name: impl Into<String>,
        antecedents: Vec<Predicate>,
        relationships: Vec<RelId>,
        consequent: Predicate,
        extra_classes: Vec<ClassId>,
        origin: Origin,
    ) -> Result<Self, ConstraintError> {
        let mut classes: Vec<ClassId> = Vec::new();
        let add = |cs: Vec<ClassId>, classes: &mut Vec<ClassId>| {
            for c in cs {
                if !classes.contains(&c) {
                    classes.push(c);
                }
            }
        };
        for p in antecedents.iter().chain(std::iter::once(&consequent)) {
            check_predicate_types(catalog, p)?;
            add(p.classes(), &mut classes);
        }
        for &r in &relationships {
            let def = catalog.relationship(r)?;
            let (a, b) = def.classes();
            add(vec![a, b], &mut classes);
        }
        add(extra_classes, &mut classes);
        classes.sort_unstable();

        // Reject degenerate clauses early.
        for a in &antecedents {
            if a.implies(&consequent) {
                return Err(ConstraintError::Tautology);
            }
        }
        for (i, a) in antecedents.iter().enumerate() {
            for b in &antecedents[i + 1..] {
                if let (Predicate::Sel(x), Predicate::Sel(y)) = (a, b) {
                    if x.contradicts(y) {
                        return Err(ConstraintError::UnsatisfiableAntecedent);
                    }
                }
            }
        }

        Ok(Self { name: name.into(), antecedents, relationships, consequent, classes, origin })
    }

    /// Intra iff exactly one class is referenced (§3.2).
    pub fn classification(&self) -> ConstraintClass {
        if self.classes.len() <= 1 {
            ConstraintClass::Intra
        } else {
            ConstraintClass::Inter
        }
    }

    /// §3's relevance test: "a semantic constraint cᵢ is relevant to a query
    /// q iff all the object classes cᵢ references also appear in q" —
    /// extended with the relationship requirement (DESIGN.md §3.3).
    pub fn relevant_to(&self, query: &Query) -> bool {
        self.classes.iter().all(|c| query.has_class(*c))
            && self.relationships.iter().all(|r| query.has_relationship(*r))
    }

    /// Semantic check against concrete bindings: if every antecedent holds,
    /// does the consequent? Used by data generators and property tests; the
    /// optimizer itself never evaluates constraints against data.
    pub fn is_horn(&self) -> bool {
        true // single consequent by construction; method kept for API clarity
    }
}

fn check_predicate_types(catalog: &Catalog, p: &Predicate) -> Result<(), ConstraintError> {
    match p {
        Predicate::Sel(s) => {
            let ty = catalog.attr_type(s.attr)?;
            if s.value.data_type() != ty {
                return Err(ConstraintError::TypeMismatch {
                    context: format!(
                        "constraint predicate on {} compares {ty} with {}",
                        catalog.qualified_attr_name(s.attr),
                        s.value.data_type()
                    ),
                });
            }
        }
        Predicate::Join(j) => {
            let lt = catalog.attr_type(j.left)?;
            let rt = catalog.attr_type(j.right)?;
            if lt != rt {
                return Err(ConstraintError::TypeMismatch {
                    context: format!(
                        "constraint join compares {} ({lt}) with {} ({rt})",
                        catalog.qualified_attr_name(j.left),
                        catalog.qualified_attr_name(j.right)
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Renders `antecedents, rels → consequent` with catalog names.
#[derive(Debug)]
pub struct ConstraintDisplay<'a> {
    pub constraint: &'a HornConstraint,
    pub catalog: &'a Catalog,
}

impl fmt::Display for ConstraintDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.constraint;
        write!(f, "{}: ", c.name)?;
        let mut first = true;
        for p in &c.antecedents {
            if !first {
                write!(f, " ∧ ")?;
            }
            write!(f, "{}", p.display(self.catalog))?;
            first = false;
        }
        for r in &c.relationships {
            if !first {
                write!(f, " ∧ ")?;
            }
            write!(f, "⟨{}⟩", self.catalog.rel_name(*r))?;
            first = false;
        }
        if first {
            write!(f, "⊤")?;
        }
        write!(f, " → {}", c.consequent.display(self.catalog))
    }
}

impl HornConstraint {
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> ConstraintDisplay<'a> {
        ConstraintDisplay { constraint: self, catalog }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::example::figure21;
    use sqo_query::{CompOp, QueryBuilder};

    fn c1(cat: &Catalog) -> HornConstraint {
        HornConstraint::new(
            cat,
            "c1",
            vec![Predicate::sel(
                cat.attr_ref("vehicle", "desc").unwrap(),
                CompOp::Eq,
                "refrigerated truck",
            )],
            vec![cat.rel_id("collects").unwrap()],
            Predicate::sel(cat.attr_ref("cargo", "desc").unwrap(), CompOp::Eq, "frozen food"),
            vec![],
            Origin::Declared,
        )
        .unwrap()
    }

    #[test]
    fn classes_are_computed_from_parts() {
        let cat = figure21().unwrap();
        let c = c1(&cat);
        let mut expect = vec![cat.class_id("cargo").unwrap(), cat.class_id("vehicle").unwrap()];
        expect.sort_unstable();
        assert_eq!(c.classes, expect);
        assert_eq!(c.classification(), ConstraintClass::Inter);
    }

    #[test]
    fn intra_classification() {
        let cat = figure21().unwrap();
        // c4: manager → rank = "research staff member"
        let c4 = HornConstraint::new(
            &cat,
            "c4",
            vec![],
            vec![],
            Predicate::sel(
                cat.attr_ref("manager", "rank").unwrap(),
                CompOp::Eq,
                "research staff member",
            ),
            vec![],
            Origin::Declared,
        )
        .unwrap();
        assert_eq!(c4.classification(), ConstraintClass::Intra);
        assert!(c4.antecedents.is_empty());
    }

    #[test]
    fn relevance_requires_all_classes_and_rels() {
        let cat = figure21().unwrap();
        let c = c1(&cat);
        let with_rel =
            QueryBuilder::new(&cat).select("cargo.desc").via("collects").build().unwrap();
        assert!(c.relevant_to(&with_rel));
        // Same classes, but no `collects` edge: not relevant.
        let mut without_rel = with_rel.clone();
        without_rel.relationships.clear();
        assert!(!c.relevant_to(&without_rel));
        // Missing the vehicle class: not relevant.
        let cargo_only = QueryBuilder::new(&cat).select("cargo.desc").build().unwrap();
        assert!(!c.relevant_to(&cargo_only));
    }

    #[test]
    fn tautologies_rejected() {
        let cat = figure21().unwrap();
        let p = Predicate::sel(cat.attr_ref("cargo", "desc").unwrap(), CompOp::Eq, "frozen food");
        let err =
            HornConstraint::new(&cat, "t", vec![p.clone()], vec![], p, vec![], Origin::Declared);
        assert_eq!(err.unwrap_err(), ConstraintError::Tautology);
    }

    #[test]
    fn weaker_consequent_is_still_a_tautology() {
        let cat = figure21().unwrap();
        let qty = cat.attr_ref("cargo", "quantity").unwrap();
        let err = HornConstraint::new(
            &cat,
            "t",
            vec![Predicate::sel(qty, CompOp::Gt, 20i64)],
            vec![],
            Predicate::sel(qty, CompOp::Gt, 10i64),
            vec![],
            Origin::Declared,
        );
        assert_eq!(err.unwrap_err(), ConstraintError::Tautology);
    }

    #[test]
    fn contradictory_antecedents_rejected() {
        let cat = figure21().unwrap();
        let desc = cat.attr_ref("cargo", "desc").unwrap();
        let err = HornConstraint::new(
            &cat,
            "u",
            vec![
                Predicate::sel(desc, CompOp::Eq, "frozen food"),
                Predicate::sel(desc, CompOp::Eq, "durian"),
            ],
            vec![],
            Predicate::sel(cat.attr_ref("cargo", "quantity").unwrap(), CompOp::Gt, 0i64),
            vec![],
            Origin::Declared,
        );
        assert_eq!(err.unwrap_err(), ConstraintError::UnsatisfiableAntecedent);
    }

    #[test]
    fn type_mismatch_rejected() {
        let cat = figure21().unwrap();
        let err = HornConstraint::new(
            &cat,
            "m",
            vec![],
            vec![],
            Predicate::sel(cat.attr_ref("cargo", "quantity").unwrap(), CompOp::Eq, "lots"),
            vec![],
            Origin::Declared,
        );
        assert!(matches!(err, Err(ConstraintError::TypeMismatch { .. })));
    }

    #[test]
    fn display_renders_readably() {
        let cat = figure21().unwrap();
        let c = c1(&cat);
        let s = c.display(&cat).to_string();
        assert!(s.contains("vehicle.desc = \"refrigerated truck\""), "{s}");
        assert!(s.contains("⟨collects⟩"), "{s}");
        assert!(s.contains("→ cargo.desc = \"frozen food\""), "{s}");
    }
}
