//! A small name-based DSL for declaring constraints.
//!
//! ```
//! use sqo_catalog::example::figure21;
//! use sqo_constraints::ConstraintBuilder;
//! use sqo_query::CompOp;
//!
//! let catalog = figure21().unwrap();
//! // c1: refrigerated trucks can only carry frozen food.
//! let c1 = ConstraintBuilder::new(&catalog, "c1")
//!     .when("vehicle.desc", CompOp::Eq, "refrigerated truck")
//!     .via("collects")
//!     .then("cargo.desc", CompOp::Eq, "frozen food")
//!     .build()
//!     .unwrap();
//! assert_eq!(c1.classes.len(), 2);
//! ```

use sqo_catalog::{Catalog, ClassId, RelId, Value};
use sqo_query::{CompOp, Predicate};

use crate::error::ConstraintError;
use crate::horn::{HornConstraint, Origin};

/// Fluent builder; errors surface at [`ConstraintBuilder::build`].
#[derive(Debug)]
pub struct ConstraintBuilder<'a> {
    catalog: &'a Catalog,
    name: String,
    antecedents: Vec<Predicate>,
    relationships: Vec<RelId>,
    consequent: Option<Predicate>,
    extra_classes: Vec<ClassId>,
    origin: Origin,
    errors: Vec<ConstraintError>,
}

impl<'a> ConstraintBuilder<'a> {
    pub fn new(catalog: &'a Catalog, name: impl Into<String>) -> Self {
        Self {
            catalog,
            name: name.into(),
            antecedents: Vec::new(),
            relationships: Vec::new(),
            consequent: None,
            extra_classes: Vec::new(),
            origin: Origin::Declared,
            errors: Vec::new(),
        }
    }

    fn attr(&mut self, path: &str) -> Option<sqo_catalog::AttrRef> {
        let mut it = path.splitn(2, '.');
        let (Some(class), Some(attr)) = (it.next(), it.next()) else {
            self.errors.push(ConstraintError::TypeMismatch {
                context: format!("expected `class.attr`, got `{path}`"),
            });
            return None;
        };
        match self.catalog.attr_ref(class, attr) {
            Ok(r) => Some(r),
            Err(e) => {
                self.errors.push(e.into());
                None
            }
        }
    }

    /// Antecedent value predicate.
    pub fn when(mut self, path: &str, op: CompOp, value: impl Into<Value>) -> Self {
        if let Some(r) = self.attr(path) {
            self.antecedents.push(Predicate::sel(r, op, value.into()));
        }
        self
    }

    /// Antecedent join predicate (attribute-to-attribute).
    pub fn when_join(mut self, left: &str, op: CompOp, right: &str) -> Self {
        let l = self.attr(left);
        let r = self.attr(right);
        if let (Some(l), Some(r)) = (l, r) {
            self.antecedents.push(Predicate::join(l, op, r));
        }
        self
    }

    /// Structural requirement: the classes are correlated through `rel`.
    pub fn via(mut self, rel: &str) -> Self {
        match self.catalog.rel_id(rel) {
            Ok(r) => {
                if !self.relationships.contains(&r) {
                    self.relationships.push(r);
                }
            }
            Err(e) => self.errors.push(e.into()),
        }
        self
    }

    /// Membership-only class reference (c4's bare `manager(...)` atom).
    pub fn scope(mut self, class: &str) -> Self {
        match self.catalog.class_id(class) {
            Ok(c) => self.extra_classes.push(c),
            Err(e) => self.errors.push(e.into()),
        }
        self
    }

    /// Consequent value predicate.
    pub fn then(mut self, path: &str, op: CompOp, value: impl Into<Value>) -> Self {
        if let Some(r) = self.attr(path) {
            self.consequent = Some(Predicate::sel(r, op, value.into()));
        }
        self
    }

    /// Consequent join predicate (c3's `licenseClass >= class`).
    pub fn then_join(mut self, left: &str, op: CompOp, right: &str) -> Self {
        let l = self.attr(left);
        let r = self.attr(right);
        if let (Some(l), Some(r)) = (l, r) {
            self.consequent = Some(Predicate::join(l, op, r));
        }
        self
    }

    /// Marks the constraint as a Siegel-style dynamic rule.
    pub fn dynamic(mut self) -> Self {
        self.origin = Origin::Dynamic;
        self
    }

    pub fn build(self) -> Result<HornConstraint, ConstraintError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let consequent = self.consequent.ok_or_else(|| ConstraintError::TypeMismatch {
            context: format!("constraint `{}` has no consequent", self.name),
        })?;
        HornConstraint::new(
            self.catalog,
            self.name,
            self.antecedents,
            self.relationships,
            consequent,
            self.extra_classes,
            self.origin,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::horn::ConstraintClass;
    use sqo_catalog::example::figure21;

    #[test]
    fn builds_join_consequent() {
        let cat = figure21().unwrap();
        let c3 = ConstraintBuilder::new(&cat, "c3")
            .via("drives")
            .then_join("driver.license_class", CompOp::Ge, "vehicle.class")
            .build()
            .unwrap();
        assert_eq!(c3.classification(), ConstraintClass::Inter);
        assert_eq!(c3.classes.len(), 2);
        assert!(c3.antecedents.is_empty());
    }

    #[test]
    fn builds_scoped_intra_constraint() {
        let cat = figure21().unwrap();
        let c4 = ConstraintBuilder::new(&cat, "c4")
            .scope("manager")
            .then("manager.rank", CompOp::Eq, "research staff member")
            .build()
            .unwrap();
        assert_eq!(c4.classification(), ConstraintClass::Intra);
    }

    #[test]
    fn missing_consequent_is_an_error() {
        let cat = figure21().unwrap();
        let err =
            ConstraintBuilder::new(&cat, "x").when("cargo.desc", CompOp::Eq, "frozen food").build();
        assert!(err.is_err());
    }

    #[test]
    fn unknown_names_surface() {
        let cat = figure21().unwrap();
        assert!(ConstraintBuilder::new(&cat, "x")
            .when("warp.core", CompOp::Eq, 1i64)
            .then("cargo.quantity", CompOp::Gt, 0i64)
            .build()
            .is_err());
        assert!(ConstraintBuilder::new(&cat, "x")
            .via("beams")
            .then("cargo.quantity", CompOp::Gt, 0i64)
            .build()
            .is_err());
    }

    #[test]
    fn dynamic_origin() {
        let cat = figure21().unwrap();
        let c = ConstraintBuilder::new(&cat, "d1")
            .scope("cargo")
            .then("cargo.quantity", CompOp::Ge, 0i64)
            .dynamic()
            .build()
            .unwrap();
        assert_eq!(c.origin, Origin::Dynamic);
    }
}
