//! The paper's semantic constraints (Figure 2.2) over the Figure 2.1 schema.

use sqo_catalog::Catalog;
use sqo_query::CompOp;

use crate::dsl::ConstraintBuilder;
use crate::error::ConstraintError;
use crate::horn::HornConstraint;

/// Builds c1–c5 of Figure 2.2.
///
/// 1. *Refrigerated trucks can only be used to carry frozen food.*
/// 2. *We get frozen food only from the Singapore Food Industries (SFI).*
/// 3. *A driver can only drive vehicles whose classification is not higher
///    than his license classification.*
/// 4. *Only research staff members can be appointed as managers.*
/// 5. *Only employees whose security clearance is top secret can belong to
///    the development department.*
pub fn figure22(catalog: &Catalog) -> Result<Vec<HornConstraint>, ConstraintError> {
    let c1 = ConstraintBuilder::new(catalog, "c1")
        .when("vehicle.desc", CompOp::Eq, "refrigerated truck")
        .via("collects")
        .then("cargo.desc", CompOp::Eq, "frozen food")
        .build()?;
    let c2 = ConstraintBuilder::new(catalog, "c2")
        .when("cargo.desc", CompOp::Eq, "frozen food")
        .via("supplies")
        .then("supplier.name", CompOp::Eq, "SFI")
        .build()?;
    let c3 = ConstraintBuilder::new(catalog, "c3")
        .via("drives")
        .then_join("driver.license_class", CompOp::Ge, "vehicle.class")
        .build()?;
    let c4 = ConstraintBuilder::new(catalog, "c4")
        .scope("manager")
        .then("manager.rank", CompOp::Eq, "research staff member")
        .build()?;
    let c5 = ConstraintBuilder::new(catalog, "c5")
        .when("department.name", CompOp::Eq, "development")
        .via("belongs_to")
        .then("employee.clearance", CompOp::Eq, "top secret")
        .build()?;
    Ok(vec![c1, c2, c3, c4, c5])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::horn::ConstraintClass;
    use sqo_catalog::example::figure21;

    #[test]
    fn figure22_builds_five_constraints() {
        let cat = figure21().unwrap();
        let cs = figure22(&cat).unwrap();
        assert_eq!(cs.len(), 5);
        assert_eq!(cs[0].name, "c1");
        assert_eq!(cs[4].name, "c5");
    }

    #[test]
    fn only_c4_is_intra() {
        let cat = figure21().unwrap();
        let cs = figure22(&cat).unwrap();
        let intra: Vec<&str> = cs
            .iter()
            .filter(|c| c.classification() == ConstraintClass::Intra)
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(intra, vec!["c4"], "the paper: all of Figure 2.2 except c4 are inter-class");
    }

    #[test]
    fn c3_has_join_consequent() {
        let cat = figure21().unwrap();
        let cs = figure22(&cat).unwrap();
        assert!(cs[2].consequent.as_join().is_some());
    }
}
