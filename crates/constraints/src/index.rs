//! The secondary constraint index — the cold path's fast lane.
//!
//! The paper's grouping scheme (§3) fetches whole per-class groups and then
//! filters them, which is correct but pays for every irrelevant constraint
//! riding along in a group (the E6 *waste ratio*). This module adds an exact
//! inverted index over the compiled constraints so the optimizer probes only
//! by what the query actually mentions:
//!
//! * `by_class` / `by_rel` — postings lists keyed by referenced [`ClassId`]
//!   and required [`RelId`]. Relevance (`classes ⊆ q.classes ∧ rels ⊆
//!   q.rels`) is decided by *counting* postings hits per constraint: a
//!   constraint is relevant iff every one of its references is matched, i.e.
//!   its hit count reaches `needs`. No candidate set is ever materialized,
//!   no irrelevant constraint is ever touched twice.
//! * `by_antecedent_attr` — postings keyed by the `(ClassId, attr)` of each
//!   value antecedent. Because predicate implication only ever holds between
//!   predicates on the *same* attribute(s) (`sqo-query`'s `implies`), this
//!   is exactly the set of compiled constraints a derived or introduced
//!   predicate on that attribute could enable — the probe set for
//!   antecedent-driven match loops over a built store (e.g. waking
//!   constraints when a serving-layer rewrite introduces a predicate). The
//!   transitive-closure fixpoint applies the same [`AttrKey`] probing
//!   through its own pre-compilation postings (`closure.rs`'s
//!   `ResolutionIndex`), since it runs before constraints are compiled into
//!   a store.
//!
//! Lookups write into a caller-provided [`RetrievalScratch`] so a serving
//! thread performs no transient allocation after warm-up. Recall-equivalence
//! against the linear scan is property-tested in
//! `tests/prop_index_recall.rs`.

use std::collections::HashMap;

use sqo_catalog::{AttrRef, ClassId, RelId};
use sqo_query::{Predicate, Query};

use crate::horn::ConstraintId;
use crate::store::CompiledConstraint;

/// Key of an antecedent posting: the attribute(s) a predicate constrains.
/// Implication never crosses attributes, so equal keys are a *complete*
/// candidate filter for "could this predicate satisfy that antecedent".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKey {
    /// A selective predicate on one attribute.
    Sel(AttrRef),
    /// A join predicate on a canonical (left ≤ right) attribute pair.
    Join(AttrRef, AttrRef),
}

impl AttrKey {
    /// The key under which `pred` files (and is probed).
    pub fn of(pred: &Predicate) -> AttrKey {
        match pred {
            Predicate::Sel(s) => AttrKey::Sel(s.attr),
            Predicate::Join(j) => AttrKey::Join(j.left, j.right),
        }
    }
}

/// Exact inverted index over a store's compiled constraints.
#[derive(Debug, Clone, Default)]
pub struct ConstraintIndex {
    /// class → constraints referencing that class (each listed once).
    by_class: Vec<Vec<ConstraintId>>,
    /// relationship → constraints requiring that relationship.
    by_rel: Vec<Vec<ConstraintId>>,
    /// Total references (`classes.len() + relationships.len()`) per
    /// constraint — the hit count at which a constraint becomes relevant.
    needs: Vec<u32>,
    /// `(ClassId, attr)` of each value antecedent → constraints listing it.
    by_antecedent_attr: HashMap<AttrKey, Vec<ConstraintId>>,
}

impl ConstraintIndex {
    /// An empty index dimensioned for `classes` object classes and `rels`
    /// relationship types.
    pub fn new(classes: usize, rels: usize) -> Self {
        Self {
            by_class: vec![Vec::new(); classes],
            by_rel: vec![Vec::new(); rels],
            needs: Vec::new(),
            by_antecedent_attr: HashMap::new(),
        }
    }

    /// Builds the index over `compiled` (constraint antecedents are read
    /// from `preds`, the store's shared predicate pool).
    pub fn build<'a>(
        classes: usize,
        rels: usize,
        compiled: impl IntoIterator<Item = (&'a CompiledConstraint, Vec<&'a Predicate>)>,
    ) -> Self {
        let mut index = Self::new(classes, rels);
        for (c, antecedents) in compiled {
            index.insert(c, &antecedents);
        }
        index
    }

    /// Adds one compiled constraint (its id must equal the current
    /// [`ConstraintIndex::len`]). `antecedents` are the constraint's value
    /// antecedents, resolved from the predicate pool.
    pub fn insert(&mut self, c: &CompiledConstraint, antecedents: &[&Predicate]) {
        debug_assert_eq!(c.id.index(), self.needs.len(), "constraints indexed in id order");
        for &class in &c.classes {
            self.by_class[class.index()].push(c.id);
        }
        for &rel in &c.relationships {
            self.by_rel[rel.index()].push(c.id);
        }
        self.needs.push((c.classes.len() + c.relationships.len()) as u32);
        for p in antecedents {
            let bucket = self.by_antecedent_attr.entry(AttrKey::of(p)).or_default();
            if bucket.last() != Some(&c.id) {
                bucket.push(c.id);
            }
        }
    }

    /// Number of indexed constraints.
    pub fn len(&self) -> usize {
        self.needs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.needs.is_empty()
    }

    /// Constraints with a value antecedent on `key` — the complete candidate
    /// set a predicate filing under `key` could enable (implication never
    /// crosses attribute keys, so no constraint outside this list can have
    /// an antecedent discharged by such a predicate).
    pub fn watchers(&self, key: AttrKey) -> &[ConstraintId] {
        self.by_antecedent_attr.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Constraints referencing `class`.
    pub fn of_class(&self, class: ClassId) -> &[ConstraintId] {
        self.by_class.get(class.index()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Constraints requiring `rel`.
    pub fn of_rel(&self, rel: RelId) -> &[ConstraintId] {
        self.by_rel.get(rel.index()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The classes whose by-class postings carry constraint `id` — the
    /// touched class set a serving layer tests cache entries against when
    /// `id` is inserted (class-overlap invalidation).
    pub fn classes_of(&self, id: ConstraintId) -> impl Iterator<Item = ClassId> + '_ {
        self.by_class
            .iter()
            .enumerate()
            .filter(move |(_, posting)| posting.contains(&id))
            .map(|(c, _)| ClassId(c as u32))
    }

    /// Computes the exact relevant set for `query` into `out` (ascending
    /// [`ConstraintId`] order), by counting postings hits: a constraint is
    /// relevant iff all of its `needs` references are present in the query.
    /// Equivalent to the linear `relevant_to` scan, but touches only
    /// postings of classes/relationships the query mentions.
    pub fn relevant_into(
        &self,
        query: &Query,
        scratch: &mut RetrievalScratch,
        out: &mut Vec<ConstraintId>,
    ) {
        out.clear();
        scratch.begin(self.needs.len());
        let gen = scratch.gen;
        scratch.seen_classes.clear();
        for &class in &query.classes {
            if scratch.seen_classes.contains(&class.0) {
                continue; // validated queries are duplicate-free; stay exact anyway
            }
            scratch.seen_classes.push(class.0);
            for &id in self.of_class(class) {
                scratch.hit(id, gen, &self.needs, out);
            }
        }
        scratch.seen_rels.clear();
        for &rel in &query.relationships {
            if scratch.seen_rels.contains(&rel.0) {
                continue;
            }
            scratch.seen_rels.push(rel.0);
            for &id in self.of_rel(rel) {
                scratch.hit(id, gen, &self.needs, out);
            }
        }
        out.sort_unstable();
    }
}

/// Reusable buffers for [`ConstraintIndex::relevant_into`]: a generation-
/// stamped hit counter per constraint, so consecutive queries share one
/// allocation and never pay a clearing pass.
#[derive(Debug, Default)]
pub struct RetrievalScratch {
    stamp: Vec<u64>,
    hits: Vec<u32>,
    gen: u64,
    seen_classes: Vec<u32>,
    seen_rels: Vec<u32>,
}

impl RetrievalScratch {
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, constraints: usize) {
        if self.stamp.len() < constraints {
            self.stamp.resize(constraints, 0);
            self.hits.resize(constraints, 0);
        }
        self.gen += 1;
    }

    #[inline]
    fn hit(&mut self, id: ConstraintId, gen: u64, needs: &[u32], out: &mut Vec<ConstraintId>) {
        let i = id.index();
        if self.stamp[i] != gen {
            self.stamp[i] = gen;
            self.hits[i] = 0;
        }
        self.hits[i] += 1;
        if self.hits[i] == needs[i] {
            out.push(id);
        }
    }
}
