//! # sqo-constraints
//!
//! Horn-clause semantic constraints for the `sqo` workspace — the knowledge
//! substrate of Pang, Lu & Ooi (ICDE 1991).
//!
//! Three pieces, all prescribed by §3 of the paper:
//!
//! * **Constraints** ([`HornConstraint`]) with the intra/inter-class
//!   classification the transformation tables branch on;
//! * **Transitive-closure materialization** ([`transitive_closure`]) at
//!   precompile time, so query-time relevance reduces to a class-set test;
//! * the **grouped constraint store** ([`ConstraintStore`]): constraints are
//!   attached to one of their referenced classes (arbitrary /
//!   least-frequently-accessed / balanced policies), and only groups attached
//!   to a query's classes are consulted, with a shared [`PredicatePool`] so
//!   the materialized closure stores each predicate once.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

mod closure;
mod dsl;
mod error;
mod examples;
mod horn;
mod index;
mod pool;
mod store;

pub use closure::{transitive_closure, ClosureOptions, ClosureResult};
pub use dsl::ConstraintBuilder;
pub use error::ConstraintError;
pub use examples::figure22;
pub use horn::{ConstraintClass, ConstraintDisplay, ConstraintId, HornConstraint, Origin};
pub use index::{AttrKey, ConstraintIndex, RetrievalScratch};
pub use pool::{PredId, PredicatePool};
pub use store::{
    AssignmentPolicy, CompiledConstraint, ConstraintStore, RetrievalMetrics, StoreOptions,
    StoreVersion,
};
