//! The shared predicate pool.
//!
//! §3 of the paper: to keep materialized transitive closures cheap, "extract
//! all the predicates into a separate structure, and [modify] the constraints
//! to contain only pointers to relevant predicates in the structure". This is
//! that structure: an interner mapping canonical [`Predicate`]s to dense
//! [`PredId`]s. Compiled constraints, the transformation table's columns and
//! the closure algorithm all speak `PredId`.

use std::collections::HashMap;
use std::fmt;

use sqo_query::Predicate;

/// Index of a predicate within a [`PredicatePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

impl PredId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Deduplicating predicate storage. Since predicates are canonicalized by
/// `sqo-query`, structural interning equates logically equal atoms within
/// the supported fragment (e.g. `b.y > a.x` and `a.x < b.y`).
#[derive(Debug, Clone, Default)]
pub struct PredicatePool {
    preds: Vec<Predicate>,
    index: HashMap<Predicate, PredId>,
}

impl PredicatePool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the pool while keeping its allocations, so one pool can be
    /// reused across many per-query builds (the optimizer-scratch pattern).
    pub fn clear(&mut self) {
        self.preds.clear();
        self.index.clear();
    }

    /// Interns a predicate, returning its id (existing or fresh).
    pub fn intern(&mut self, pred: Predicate) -> PredId {
        if let Some(&id) = self.index.get(&pred) {
            return id;
        }
        let id = PredId(self.preds.len() as u32);
        self.index.insert(pred.clone(), id);
        self.preds.push(pred);
        id
    }

    /// Looks up an already-interned predicate.
    pub fn lookup(&self, pred: &Predicate) -> Option<PredId> {
        self.index.get(pred).copied()
    }

    pub fn get(&self, id: PredId) -> &Predicate {
        &self.preds[id.index()]
    }

    pub fn len(&self) -> usize {
        self.preds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (PredId, &Predicate)> {
        self.preds.iter().enumerate().map(|(i, p)| (PredId(i as u32), p))
    }

    /// Ids of pool predicates implied by `pred` (including itself, if
    /// interned). Used by implication-aware matching.
    pub fn implied_by(&self, pred: &Predicate) -> Vec<PredId> {
        self.iter().filter(|(_, q)| pred.implies(q)).map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::{AttrId, AttrRef, ClassId};
    use sqo_query::CompOp;

    fn aref(c: u32, a: u32) -> AttrRef {
        AttrRef::new(ClassId(c), AttrId(a))
    }

    #[test]
    fn interning_deduplicates() {
        let mut pool = PredicatePool::new();
        let p1 = Predicate::sel(aref(0, 0), CompOp::Eq, "frozen food");
        let p2 = Predicate::sel(aref(0, 0), CompOp::Eq, "frozen food");
        let id1 = pool.intern(p1.clone());
        let id2 = pool.intern(p2);
        assert_eq!(id1, id2);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.get(id1), &p1);
        assert_eq!(pool.lookup(&p1), Some(id1));
    }

    #[test]
    fn canonicalized_joins_share_an_id() {
        let mut pool = PredicatePool::new();
        let a = Predicate::join(aref(0, 0), CompOp::Lt, aref(1, 0));
        let b = Predicate::join(aref(1, 0), CompOp::Gt, aref(0, 0));
        assert_eq!(pool.intern(a), pool.intern(b));
    }

    #[test]
    fn distinct_predicates_get_distinct_ids() {
        let mut pool = PredicatePool::new();
        let a = pool.intern(Predicate::sel(aref(0, 0), CompOp::Gt, 1i64));
        let b = pool.intern(Predicate::sel(aref(0, 0), CompOp::Gt, 2i64));
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn implied_by_finds_weaker_atoms() {
        let mut pool = PredicatePool::new();
        let weak = pool.intern(Predicate::sel(aref(0, 0), CompOp::Gt, 10i64));
        let _other = pool.intern(Predicate::sel(aref(0, 1), CompOp::Gt, 10i64));
        let strong = Predicate::sel(aref(0, 0), CompOp::Gt, 15i64);
        assert_eq!(pool.implied_by(&strong), vec![weak]);
    }
}
