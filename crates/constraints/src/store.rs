//! The grouped constraint store (paper §3).
//!
//! Constraints are grouped by one of the object classes they reference; to
//! optimize a query, only groups attached to the query's classes are fetched.
//! The paper proves the scheme *correct* (all relevant constraints are always
//! retrieved) but not optimal — irrelevant constraints ride along. The
//! assignment policy controls how many:
//!
//! * [`AssignmentPolicy::Arbitrary`] — the paper's base scheme;
//! * [`AssignmentPolicy::LeastFrequentlyAccessed`] — the paper's refinement
//!   ("assigned to the group attached to the less frequently accessed
//!   classes");
//! * [`AssignmentPolicy::Balanced`] — the paper's alternative ("distribute
//!   constraints as evenly as possible among the groups").
//!
//! Retrieval metrics are tracked so the E6 experiment can compare policies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use sqo_catalog::{AccessTracker, Catalog, ClassId, RelId};
use sqo_query::Query;

use crate::closure::{transitive_closure, ClosureOptions};
use crate::error::ConstraintError;
use crate::horn::{ConstraintClass, ConstraintId, HornConstraint, Origin};
use crate::index::{ConstraintIndex, RetrievalScratch};
use crate::pool::{PredId, PredicatePool};

/// How a constraint picks its home group among the classes it references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignmentPolicy {
    /// First referenced class (deterministic stand-in for "arbitrarily").
    Arbitrary,
    /// The least frequently accessed referenced class — the paper's
    /// enhancement; requires access statistics.
    #[default]
    LeastFrequentlyAccessed,
    /// The referenced class whose group is currently smallest.
    Balanced,
}

/// Store construction options.
#[derive(Debug, Clone, Default)]
pub struct StoreOptions {
    /// Materialize the transitive closure at build time (§3; on by default
    /// via [`StoreOptions::paper_defaults`]).
    pub materialize_closure: bool,
    pub closure: ClosureOptions,
    pub policy: AssignmentPolicy,
}

impl StoreOptions {
    /// The configuration the paper describes: closure materialized,
    /// least-frequently-accessed grouping.
    pub fn paper_defaults() -> Self {
        Self {
            materialize_closure: true,
            closure: ClosureOptions::default(),
            policy: AssignmentPolicy::LeastFrequentlyAccessed,
        }
    }
}

/// A constraint compiled against the shared [`PredicatePool`]: antecedents
/// and consequent are pool pointers, exactly as §3 prescribes for storage
/// economy.
#[derive(Debug, Clone)]
pub struct CompiledConstraint {
    pub id: ConstraintId,
    pub antecedents: Vec<PredId>,
    pub consequent: PredId,
    pub relationships: Vec<RelId>,
    pub classes: Vec<ClassId>,
    pub classification: ConstraintClass,
    pub origin: Origin,
}

/// Counters for grouping-scheme effectiveness (experiment E6).
#[derive(Debug, Default)]
pub struct RetrievalMetrics {
    pub queries: AtomicU64,
    /// Constraints fetched by the group union.
    pub retrieved: AtomicU64,
    /// Of those, constraints actually relevant to the query.
    pub relevant: AtomicU64,
}

impl RetrievalMetrics {
    /// Fraction of retrieved constraints that were irrelevant, over the
    /// store's lifetime.
    pub fn waste_ratio(&self) -> f64 {
        // ordering: advisory ratio over monotone counters; a slightly
        // stale numerator/denominator pair is still a valid estimate.
        let retrieved = self.retrieved.load(Ordering::Relaxed);
        if retrieved == 0 {
            return 0.0;
        }
        let relevant = self.relevant.load(Ordering::Relaxed); // ordering: see above
        1.0 - relevant as f64 / retrieved as f64
    }
}

/// The unambiguous cache identity of a store state: which store *instance*
/// (`generation`, globally unique per [`ConstraintStore`] ever constructed
/// in this process) at which of its semantic [`ConstraintStore::epoch`]s.
///
/// Epochs alone are **not** an identity: a copy-on-write successor starts
/// at `source.epoch() + 1`, a value the source can independently reach via
/// [`ConstraintStore::note_statistics_change`] /
/// [`ConstraintStore::insert_constraint`] — two stores with different
/// constraint sets then share an epoch, and an epoch-keyed plan cache can
/// serve a rewrite derived under the wrong constraints. Pairing the epoch
/// with a generation drawn from a process-global allocator makes collisions
/// impossible (property-tested in `tests/prop_store_version.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreVersion {
    /// Globally unique id of the store instance.
    pub generation: u64,
    /// The instance's semantic epoch at observation time.
    pub epoch: u64,
}

/// Allocates a process-globally unique store generation.
fn next_generation() -> u64 {
    static NEXT_GENERATION: AtomicU64 = AtomicU64::new(0);
    // ordering: uniqueness comes from RMW atomicity alone; generation
    // ids carry no payload that needs publishing.
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// The grouped semantic-constraint store.
#[derive(Debug)]
pub struct ConstraintStore {
    catalog: Arc<Catalog>,
    constraints: Vec<HornConstraint>,
    compiled: Vec<CompiledConstraint>,
    pool: PredicatePool,
    /// groups[class] = constraints assigned to that class.
    groups: RwLock<Vec<Vec<ConstraintId>>>,
    /// Exact inverted index over the compiled constraints — the production
    /// retrieval path ([`ConstraintStore::relevant_into`]); the grouped
    /// scheme above stays as the paper's measured baseline.
    index: ConstraintIndex,
    policy: AssignmentPolicy,
    /// Closure limits this store was built under — persisted by snapshots
    /// so an Audit-level load can reproduce the derivation.
    closure: ClosureOptions,
    access: AccessTracker,
    metrics: RetrievalMetrics,
    /// Monotone semantic version: bumped whenever the constraint population
    /// or the statistics the optimizer consults change. Downstream caches
    /// key on the full [`StoreVersion`] (generation + epoch) — the epoch
    /// alone is ambiguous across copy-on-write store copies.
    epoch: AtomicU64,
    /// Process-globally unique instance id (see [`StoreVersion`]).
    generation: u64,
    /// Closure bookkeeping for reporting.
    pub derived_count: usize,
    pub closure_truncated: bool,
}

impl ConstraintStore {
    /// Builds the store: optional closure materialization, compilation into
    /// the predicate pool, then group assignment.
    pub fn build(
        catalog: Arc<Catalog>,
        constraints: Vec<HornConstraint>,
        options: StoreOptions,
    ) -> Result<Self, ConstraintError> {
        let (constraints, derived_count, closure_truncated) = if options.materialize_closure {
            let res = transitive_closure(&catalog, constraints, options.closure)?;
            (res.constraints, res.derived_count, res.truncated)
        } else {
            (constraints, 0, false)
        };

        let mut pool = PredicatePool::new();
        let compiled: Vec<CompiledConstraint> = constraints
            .iter()
            .enumerate()
            .map(|(i, c)| CompiledConstraint {
                id: ConstraintId(i as u32),
                antecedents: c.antecedents.iter().cloned().map(|p| pool.intern(p)).collect(),
                consequent: pool.intern(c.consequent.clone()),
                relationships: c.relationships.clone(),
                classes: c.classes.clone(),
                classification: c.classification(),
                origin: c.origin,
            })
            .collect();

        let access = AccessTracker::new(catalog.class_count());
        let index = ConstraintIndex::build(
            catalog.class_count(),
            catalog.relationship_count(),
            compiled.iter().map(|c| (c, c.antecedents.iter().map(|&a| pool.get(a)).collect())),
        );
        let store = Self {
            groups: RwLock::new(vec![Vec::new(); catalog.class_count()]),
            catalog,
            constraints,
            compiled,
            pool,
            index,
            policy: options.policy,
            closure: options.closure,
            access,
            metrics: RetrievalMetrics::default(),
            epoch: AtomicU64::new(0),
            generation: next_generation(),
            derived_count,
            closure_truncated,
        };
        store.regroup();
        Ok(store)
    }

    /// Convenience: paper defaults.
    pub fn with_paper_defaults(
        catalog: Arc<Catalog>,
        constraints: Vec<HornConstraint>,
    ) -> Result<Self, ConstraintError> {
        Self::build(catalog, constraints, StoreOptions::paper_defaults())
    }

    /// (Re)assigns every constraint to a group according to the policy.
    /// The paper notes the LFA grouping "has to be updated as database access
    /// pattern changes" — callers invoke this periodically.
    pub fn regroup(&self) {
        let mut groups = vec![Vec::new(); self.catalog.class_count()];
        for c in &self.compiled {
            if c.classes.is_empty() {
                continue; // unreachable for validated constraints
            }
            let home = match self.policy {
                AssignmentPolicy::Arbitrary => c.classes[0],
                AssignmentPolicy::LeastFrequentlyAccessed => {
                    self.access.least_accessed(&c.classes).expect("non-empty class list")
                }
                AssignmentPolicy::Balanced => c
                    .classes
                    .iter()
                    .copied()
                    .min_by_key(|cl| (groups[cl.index()].len(), cl.index()))
                    .expect("non-empty class list"),
            };
            groups[home.index()].push(c.id);
        }
        *self.groups.write() = groups;
    }

    // ---- versioning & growth --------------------------------------------

    /// The store's current semantic epoch. Two calls returning the same
    /// value bracket a window in which no constraint or statistics change
    /// occurred **on this instance**, so any optimization derived in between
    /// is still valid. Cross-instance comparisons need [`ConstraintStore::version`].
    pub fn epoch(&self) -> u64 {
        // ordering: Acquire pairs with the AcqRel epoch bumps so an
        // observed epoch implies the store mutation that produced it.
        self.epoch.load(Ordering::Acquire)
    }

    /// This instance's process-globally unique generation id.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The store's unambiguous cache identity: `(generation, epoch)`.
    pub fn version(&self) -> StoreVersion {
        StoreVersion { generation: self.generation, epoch: self.epoch() }
    }

    /// Records an external change to the statistics the optimizer's cost
    /// decisions consult (e.g. a refreshed catalog snapshot), bumping the
    /// epoch so cached rewrites are re-derived. Returns the new epoch.
    pub fn note_statistics_change(&self) -> u64 {
        // ordering: AcqRel keeps statistics bumps in the epoch's single
        // total modification order; pairs with the Acquire in epoch().
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Raises the epoch to at least `floor` (monotone; never lowers it).
    /// Used when a rebuilt store replaces an older one so that epoch
    /// *sequences* keep increasing across the swap for readability — cache
    /// identity does not depend on it (the rebuilt store already has its own
    /// generation, so its versions can never collide with the old store's).
    pub fn raise_epoch_to(&self, floor: u64) {
        // ordering: AcqRel keeps the monotone fetch_max totally ordered with
        // the epoch bumps in note_*_change; pairs with the Acquire in epoch().
        self.epoch.fetch_max(floor, Ordering::AcqRel);
    }

    /// Raises the epoch strictly past `other`'s current epoch (the blessed
    /// form of `raise_epoch_to(other.epoch() + 1)`, which callers must not
    /// hand-roll — see the epoch-discipline rules in `docs/ANALYSIS.md`).
    pub fn raise_epoch_above(&self, other: &ConstraintStore) {
        self.raise_epoch_to(other.epoch().saturating_add(1));
    }

    /// Appends one constraint to the store in place, compiling it into the
    /// predicate pool, assigning it to a group under the current policy, and
    /// bumping the epoch.
    ///
    /// The incremental path deliberately does **not** extend the transitive
    /// closure: derived shortcuts only accelerate transformation chains that
    /// remain reachable through the declared constraints, so skipping them
    /// never affects correctness. Rebuild via [`ConstraintStore::build`]
    /// when closure freshness matters.
    pub fn insert_constraint(&mut self, constraint: HornConstraint) -> ConstraintId {
        let id = ConstraintId(self.compiled.len() as u32);
        let compiled = CompiledConstraint {
            id,
            antecedents: constraint
                .antecedents
                .iter()
                .cloned()
                .map(|p| self.pool.intern(p))
                .collect(),
            consequent: self.pool.intern(constraint.consequent.clone()),
            relationships: constraint.relationships.clone(),
            classes: constraint.classes.clone(),
            classification: constraint.classification(),
            origin: constraint.origin,
        };
        let home = self.home_of(&compiled);
        let antecedents: Vec<&sqo_query::Predicate> =
            compiled.antecedents.iter().map(|&a| self.pool.get(a)).collect();
        self.index.insert(&compiled, &antecedents);
        self.compiled.push(compiled);
        self.constraints.push(constraint);
        if let Some(home) = home {
            self.groups.write()[home.index()].push(id);
        }
        // ordering: Release half publishes the insertion above to
        // epoch() readers; Acquire half orders it after prior bumps.
        self.epoch.fetch_add(1, Ordering::AcqRel);
        id
    }

    /// A new store equal to this one plus `constraint`, with the epoch
    /// advanced past this store's. The copy-on-write companion of
    /// [`ConstraintStore::insert_constraint`] for stores shared behind an
    /// `Arc` (the serving layer swaps the new store in while in-flight
    /// queries drain against the old one).
    ///
    /// The copy is **incremental**: the predicate pool, compiled
    /// constraints, secondary index, groups and access counters are cloned
    /// as-is and only the new constraint is compiled and filed — O(new
    /// constraint + store size in `memcpy`), not O(store × re-intern) as a
    /// from-scratch rebuild would be. Existing constraints keep their group
    /// homes; the newcomer is assigned under the current policy and live
    /// access statistics. Retrieval metrics restart from zero.
    pub fn with_constraint(&self, constraint: HornConstraint) -> Self {
        self.with_constraint_tracked(constraint).0
    }

    /// [`ConstraintStore::with_constraint`], also reporting the id the
    /// constraint received in the successor store. Serving layers combine it
    /// with [`ConstraintStore::touched_classes`] to invalidate only the
    /// cache entries whose class set overlaps the new constraint's, instead
    /// of orphaning every entry.
    pub fn with_constraint_tracked(&self, constraint: HornConstraint) -> (Self, ConstraintId) {
        let access = AccessTracker::new(self.catalog.class_count());
        for c in 0..self.catalog.class_count() as u32 {
            access.seed(ClassId(c), self.access.count(ClassId(c)));
        }
        let mut store = Self {
            groups: RwLock::new(self.groups.read().clone()),
            catalog: Arc::clone(&self.catalog),
            constraints: self.constraints.clone(),
            compiled: self.compiled.clone(),
            pool: self.pool.clone(),
            index: self.index.clone(),
            policy: self.policy,
            closure: self.closure,
            access,
            metrics: RetrievalMetrics::default(),
            epoch: AtomicU64::new(self.epoch() + 1),
            // A fresh generation: the successor is a *different* store even
            // when the source later reaches the same epoch value.
            generation: next_generation(),
            derived_count: self.derived_count,
            closure_truncated: self.closure_truncated,
        };
        let id = store.insert_constraint(constraint);
        // `insert_constraint` bumped the epoch once more; keep the contract
        // "exactly one past the source store" stable for readability of
        // epoch sequences (identity comes from the generation).
        store.epoch = AtomicU64::new(self.epoch() + 1);
        (store, id)
    }

    /// The classes whose by-class postings in the [`ConstraintIndex`] carry
    /// constraint `id` — exactly the class set a cached query must overlap
    /// for `id` to ever become relevant to it (relevance requires
    /// `classes(id) ⊆ classes(query)`, so disjointness proves the cached
    /// rewrite untouched).
    ///
    /// The postings are populated verbatim from the compiled constraint's
    /// class list, so this reads it directly instead of scanning the
    /// postings; [`ConstraintIndex::classes_of`] derives the same set from
    /// the index side, and the store tests assert the two agree.
    pub fn touched_classes(&self, id: ConstraintId) -> Vec<ClassId> {
        self.compiled[id.index()].classes.clone()
    }

    /// The group a constraint should live in under the current policy and
    /// group occupancy. `None` only for class-less constraints, which
    /// validated constraints never are.
    fn home_of(&self, c: &CompiledConstraint) -> Option<ClassId> {
        if c.classes.is_empty() {
            return None;
        }
        Some(match self.policy {
            AssignmentPolicy::Arbitrary => c.classes[0],
            AssignmentPolicy::LeastFrequentlyAccessed => {
                self.access.least_accessed(&c.classes).expect("non-empty class list")
            }
            AssignmentPolicy::Balanced => {
                let groups = self.groups.read();
                c.classes
                    .iter()
                    .copied()
                    .min_by_key(|cl| (groups[cl.index()].len(), cl.index()))
                    .expect("non-empty class list")
            }
        })
    }

    // ---- retrieval -------------------------------------------------------

    /// §3 group fetch: the union of groups attached to the query's classes.
    /// Every relevant constraint is guaranteed to be in the result.
    pub fn retrieve_candidates(&self, query: &Query) -> Vec<ConstraintId> {
        let groups = self.groups.read();
        let mut out = Vec::new();
        for class in &query.classes {
            if let Some(g) = groups.get(class.index()) {
                for &id in g {
                    if !out.contains(&id) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    /// Candidates filtered down to constraints relevant to `query`
    /// (classes ⊆ query classes ∧ relationships ⊆ query relationships).
    /// Updates retrieval metrics and the access-frequency counters.
    pub fn relevant_for(&self, query: &Query) -> Vec<ConstraintId> {
        let candidates = self.retrieve_candidates(query);
        // ordering: retrieval metrics are advisory counters read only
        // by waste_ratio / reports; no cross-data ordering needed.
        self.metrics.queries.fetch_add(1, Ordering::Relaxed);
        self.metrics.retrieved.fetch_add(candidates.len() as u64, Ordering::Relaxed); // ordering: see above
        self.access.record(query.classes.iter().copied());
        let relevant: Vec<ConstraintId> = candidates
            .into_iter()
            .filter(|id| self.constraints[id.index()].relevant_to(query))
            .collect();
        self.metrics.relevant.fetch_add(relevant.len() as u64, Ordering::Relaxed); // ordering: see above
        relevant
    }

    /// The exact relevant set via the secondary [`ConstraintIndex`] — the
    /// production retrieval path. Writes ascending [`ConstraintId`]s into
    /// `out` without allocating (given a warm `scratch`), records the
    /// access-frequency counters that drive LFA regrouping, and returns the
    /// same set as [`ConstraintStore::relevant_for`] /
    /// [`ConstraintStore::relevant_for_ungrouped`] (property-tested in
    /// `tests/prop_index_recall.rs`). Group-waste metrics are *not* touched:
    /// the indexed path retrieves no irrelevant constraint to measure.
    pub fn relevant_into(
        &self,
        query: &Query,
        scratch: &mut RetrievalScratch,
        out: &mut Vec<ConstraintId>,
    ) {
        self.access.record(query.classes.iter().copied());
        self.index.relevant_into(query, scratch, out);
    }

    /// Allocating convenience wrapper around [`ConstraintStore::relevant_into`].
    pub fn relevant_for_indexed(&self, query: &Query) -> Vec<ConstraintId> {
        let mut scratch = RetrievalScratch::new();
        let mut out = Vec::new();
        self.relevant_into(query, &mut scratch, &mut out);
        out
    }

    /// The secondary index over compiled constraints.
    pub fn index(&self) -> &ConstraintIndex {
        &self.index
    }

    /// Exhaustive relevance scan, bypassing the grouping scheme — the
    /// ungrouped baseline for experiment E6 and the recall property tests.
    pub fn relevant_for_ungrouped(&self, query: &Query) -> Vec<ConstraintId> {
        self.constraints
            .iter()
            .enumerate()
            .filter(|(_, c)| c.relevant_to(query))
            .map(|(i, _)| ConstraintId(i as u32))
            .collect()
    }

    // ---- accessors ---------------------------------------------------------

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The group-assignment policy this store was built with (persisted by
    /// snapshots so a warm-started store groups the same way).
    pub fn policy(&self) -> AssignmentPolicy {
        self.policy
    }

    /// The closure limits this store was built under (persisted by
    /// snapshots so an Audit-level load reproduces the same derivation).
    pub fn closure_options(&self) -> ClosureOptions {
        self.closure
    }

    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    pub fn constraint(&self, id: ConstraintId) -> &HornConstraint {
        &self.constraints[id.index()]
    }

    pub fn compiled(&self, id: ConstraintId) -> &CompiledConstraint {
        &self.compiled[id.index()]
    }

    pub fn constraints(&self) -> impl Iterator<Item = (ConstraintId, &HornConstraint)> {
        self.constraints.iter().enumerate().map(|(i, c)| (ConstraintId(i as u32), c))
    }

    pub fn pool(&self) -> &PredicatePool {
        &self.pool
    }

    pub fn metrics(&self) -> &RetrievalMetrics {
        &self.metrics
    }

    pub fn access_tracker(&self) -> &AccessTracker {
        &self.access
    }

    /// Group sizes per class, for diagnostics and the E6 report.
    pub fn group_sizes(&self) -> Vec<(ClassId, usize)> {
        self.groups.read().iter().enumerate().map(|(i, g)| (ClassId(i as u32), g.len())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::figure22;
    use sqo_catalog::example::figure21;
    use sqo_query::{CompOp, QueryBuilder};

    fn setup(policy: AssignmentPolicy) -> (Arc<Catalog>, ConstraintStore) {
        let catalog = Arc::new(figure21().unwrap());
        let constraints = figure22(&catalog).unwrap();
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            constraints,
            StoreOptions { materialize_closure: true, closure: ClosureOptions::default(), policy },
        )
        .unwrap();
        (catalog, store)
    }

    fn figure23_query(catalog: &Catalog) -> Query {
        QueryBuilder::new(catalog)
            .select("vehicle.vehicle_no")
            .select("cargo.desc")
            .select("cargo.quantity")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("supplier.name", CompOp::Eq, "SFI")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap()
    }

    #[test]
    fn closure_derives_c1_c2_chain() {
        let (_, store) = setup(AssignmentPolicy::Arbitrary);
        // c1: vehicle desc -> cargo desc; c2: cargo desc -> supplier name.
        // Derived: vehicle desc -> supplier name.
        assert!(store.derived_count >= 1, "derived {}", store.derived_count);
        assert!(!store.closure_truncated);
        assert!(store
            .constraints()
            .any(|(_, c)| c.origin == Origin::Derived && c.name.contains("c1")));
    }

    #[test]
    fn grouping_recall_matches_ungrouped_scan() {
        let (catalog, store) = setup(AssignmentPolicy::LeastFrequentlyAccessed);
        let q = figure23_query(&catalog);
        let mut grouped = store.relevant_for(&q);
        let mut full = store.relevant_for_ungrouped(&q);
        grouped.sort_unstable();
        full.sort_unstable();
        assert_eq!(grouped, full, "grouping must never lose a relevant constraint");
        assert!(!full.is_empty(), "c1 and c2 are relevant to the Figure 2.3 query");
    }

    #[test]
    fn relevant_set_for_figure23() {
        let (catalog, store) = setup(AssignmentPolicy::Arbitrary);
        let q = figure23_query(&catalog);
        let relevant = store.relevant_for(&q);
        let names: Vec<&str> =
            relevant.iter().map(|&id| store.constraint(id).name.as_str()).collect();
        assert!(names.contains(&"c1"), "{names:?}");
        assert!(names.contains(&"c2"), "{names:?}");
        assert!(!names.contains(&"c3"), "driver/vehicle constraint is irrelevant: {names:?}");
        assert!(!names.contains(&"c4"), "{names:?}");
        assert!(!names.contains(&"c5"), "{names:?}");
    }

    #[test]
    fn metrics_accumulate() {
        let (catalog, store) = setup(AssignmentPolicy::Arbitrary);
        let q = figure23_query(&catalog);
        let _ = store.relevant_for(&q);
        let m = store.metrics();
        assert_eq!(m.queries.load(Ordering::Relaxed), 1);
        assert!(m.retrieved.load(Ordering::Relaxed) >= m.relevant.load(Ordering::Relaxed));
        // Access counters bumped for the query's classes.
        let cargo = catalog.class_id("cargo").unwrap();
        assert_eq!(store.access_tracker().count(cargo), 1);
    }

    #[test]
    fn balanced_policy_spreads_groups() {
        let (_, store) = setup(AssignmentPolicy::Balanced);
        let sizes: Vec<usize> = store.group_sizes().iter().map(|(_, s)| *s).collect();
        let max = sizes.iter().copied().max().unwrap();
        let total: usize = sizes.iter().sum();
        assert_eq!(total, store.len());
        // With balancing, no single group may hoard everything.
        assert!(max < store.len(), "sizes = {sizes:?}");
    }

    #[test]
    fn lfa_regroup_follows_access_pattern() {
        let (catalog, store) = setup(AssignmentPolicy::LeastFrequentlyAccessed);
        // Hammer cargo+vehicle+supplier, leaving others cold.
        let q = figure23_query(&catalog);
        for _ in 0..10 {
            let _ = store.relevant_for(&q);
        }
        store.regroup();
        // c1 references cargo and vehicle (both hot, equally) — the tie falls
        // to the smaller id; the important property is that every constraint
        // still lives in exactly one group.
        let total: usize = store.group_sizes().iter().map(|(_, s)| *s).sum();
        assert_eq!(total, store.len());
    }

    #[test]
    fn epoch_starts_at_zero_and_bumps_on_changes() {
        let (_, mut store) = setup(AssignmentPolicy::Arbitrary);
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.note_statistics_change(), 1);
        assert_eq!(store.epoch(), 1);
        // Retrieval and regrouping are semantics-preserving: no bump.
        store.regroup();
        assert_eq!(store.epoch(), 1);
        let extra = store.constraint(ConstraintId(0)).clone();
        let before = store.len();
        let id = store.insert_constraint(extra);
        assert_eq!(store.epoch(), 2);
        assert_eq!(store.len(), before + 1);
        assert_eq!(id.index(), before);
        // The inserted constraint is retrievable and lives in some group.
        let total: usize = store.group_sizes().iter().map(|(_, s)| *s).sum();
        assert_eq!(total, store.len());
    }

    #[test]
    fn raise_epoch_is_monotone() {
        let (_, store) = setup(AssignmentPolicy::Arbitrary);
        store.raise_epoch_to(7);
        assert_eq!(store.epoch(), 7);
        store.raise_epoch_to(3); // never lowers
        assert_eq!(store.epoch(), 7);
    }

    #[test]
    fn with_constraint_advances_epoch_and_preserves_recall() {
        let (catalog, store) = setup(AssignmentPolicy::LeastFrequentlyAccessed);
        store.note_statistics_change();
        let extra = store.constraint(ConstraintId(0)).clone();
        let bigger = store.with_constraint(extra);
        assert!(bigger.epoch() > store.epoch(), "epochs must keep increasing across swaps");
        assert_eq!(bigger.len(), store.len() + 1);
        // The grouped retrieval invariant survives the rebuild.
        let q = figure23_query(&catalog);
        let mut grouped = bigger.relevant_for(&q);
        let mut full = bigger.relevant_for_ungrouped(&q);
        grouped.sort_unstable();
        full.sort_unstable();
        assert_eq!(grouped, full);
    }

    #[test]
    fn cow_copies_get_their_own_generation() {
        // The epoch-collision regression: the source can independently reach
        // the derived store's epoch, but the *versions* must stay distinct.
        let (_, store) = setup(AssignmentPolicy::Arbitrary);
        let extra = store.constraint(ConstraintId(0)).clone();
        let derived = store.with_constraint(extra);
        store.note_statistics_change();
        assert_eq!(store.epoch(), derived.epoch(), "the collision the old scheme keyed on");
        assert_ne!(store.generation(), derived.generation());
        assert_ne!(store.version(), derived.version());
        // In-place mutation keeps the generation; only the epoch moves.
        let g = store.generation();
        store.note_statistics_change();
        assert_eq!(store.generation(), g);
    }

    #[test]
    fn touched_classes_come_from_the_index_postings() {
        let (catalog, mut store) = setup(AssignmentPolicy::Arbitrary);
        // c1 relates vehicles and the cargo they collect.
        let cargo = catalog.class_id("cargo").unwrap();
        let vehicle = catalog.class_id("vehicle").unwrap();
        let c1 = store.constraint(ConstraintId(0)).clone();
        let mut expected = c1.classes.clone();
        expected.sort_unstable();
        // Via the COW path.
        let (bigger, id) = store.with_constraint_tracked(c1.clone());
        let mut touched = bigger.touched_classes(id);
        touched.sort_unstable();
        assert_eq!(touched, expected);
        assert!(touched.contains(&cargo) && touched.contains(&vehicle), "{touched:?}");
        // Via the in-place path.
        let id = store.insert_constraint(c1);
        let mut touched = store.touched_classes(id);
        touched.sort_unstable();
        assert_eq!(touched, expected);
        // The invariant touched_classes relies on: the index's by-class
        // postings derive exactly the same set.
        let mut from_postings: Vec<_> = store.index().classes_of(id).collect();
        from_postings.sort_unstable();
        assert_eq!(from_postings, touched);
    }

    #[test]
    fn inserted_constraint_participates_in_retrieval() {
        let (catalog, mut store) = setup(AssignmentPolicy::Balanced);
        let q = figure23_query(&catalog);
        let before = store.relevant_for(&q).len();
        // Re-inserting a relevant constraint must surface the new copy.
        let names: Vec<String> = store.constraints().map(|(_, c)| c.name.clone()).collect();
        let c1_pos = names.iter().position(|n| n == "c1").expect("c1 exists");
        let dup = store.constraint(ConstraintId(c1_pos as u32)).clone();
        store.insert_constraint(dup);
        let after = store.relevant_for(&q).len();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn compiled_constraints_point_into_pool() {
        let (_, store) = setup(AssignmentPolicy::Arbitrary);
        for (id, _) in store.constraints() {
            let c = store.compiled(id);
            let _ = store.pool().get(c.consequent);
            for &a in &c.antecedents {
                let _ = store.pool().get(a);
            }
        }
        // Pool deduplicates: c1's consequent (cargo.desc = "frozen food")
        // equals c2's antecedent — one entry serves both.
        assert!(store.pool().len() < store.len() * 2 + 2);
    }
}
