//! Constraint validation errors.

use std::fmt;

use sqo_catalog::CatalogError;
use sqo_query::QueryError;

/// Errors raised while building or compiling semantic constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    Catalog(CatalogError),
    Query(QueryError),
    /// The consequent already appears among the antecedents — a tautology
    /// that can never drive a useful transformation.
    Tautology,
    /// Antecedents are mutually contradictory: the constraint can never fire
    /// and would silently licence arbitrary conclusions.
    UnsatisfiableAntecedent,
    /// Type error inside a predicate.
    TypeMismatch {
        context: String,
    },
    /// The closure computation exceeded its configured limits.
    ClosureLimitExceeded {
        derived: usize,
        limit: usize,
    },
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::Catalog(e) => write!(f, "catalog error: {e}"),
            ConstraintError::Query(e) => write!(f, "query error: {e}"),
            ConstraintError::Tautology => {
                write!(f, "constraint consequent is implied by its own antecedents")
            }
            ConstraintError::UnsatisfiableAntecedent => {
                write!(f, "constraint antecedents are mutually contradictory")
            }
            ConstraintError::TypeMismatch { context } => {
                write!(f, "type mismatch: {context}")
            }
            ConstraintError::ClosureLimitExceeded { derived, limit } => {
                write!(
                    f,
                    "transitive closure derived {derived} constraints, exceeding the limit of {limit}"
                )
            }
        }
    }
}

impl std::error::Error for ConstraintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConstraintError::Catalog(e) => Some(e),
            ConstraintError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for ConstraintError {
    fn from(e: CatalogError) -> Self {
        ConstraintError::Catalog(e)
    }
}

impl From<QueryError> for ConstraintError {
    fn from(e: QueryError) -> Self {
        ConstraintError::Query(e)
    }
}
