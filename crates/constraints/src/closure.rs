//! Transitive-closure materialization (paper §3).
//!
//! > "the transitive closures of the constraints are materialized during
//! > precompilation … e.g. if (A = a) → (B > 20) and (B > 10) → (C = c) then
//! > deduce (A = a) → (C = c)"
//!
//! The derivation step is resolution with *implication-aware* unification
//! (the `B > 20` / `B > 10` pair above): whenever `cᵢ`'s consequent implies
//! one or more antecedents of `cⱼ`, a new constraint is derived with those
//! antecedents discharged. The computation runs to a fixpoint under
//! configurable limits; truncation is safe (the closure only *adds*
//! optimization opportunities, never correctness).

use std::collections::{HashMap, HashSet};

use sqo_catalog::Catalog;

use crate::error::ConstraintError;
use crate::horn::{HornConstraint, Origin};
use crate::index::AttrKey;
use crate::pool::PredicatePool;

/// Limits for the fixpoint computation.
#[derive(Debug, Clone, Copy)]
pub struct ClosureOptions {
    /// Maximum number of *derived* constraints to keep.
    pub max_derived: usize,
    /// Maximum fixpoint rounds.
    pub max_rounds: usize,
}

impl Default for ClosureOptions {
    fn default() -> Self {
        Self { max_derived: 4096, max_rounds: 8 }
    }
}

/// Outcome of the closure computation.
#[derive(Debug, Clone)]
pub struct ClosureResult {
    /// Original constraints followed by derived ones.
    pub constraints: Vec<HornConstraint>,
    pub derived_count: usize,
    pub rounds: usize,
    /// True if a limit stopped the fixpoint before convergence.
    pub truncated: bool,
}

/// Canonical dedup key: order-insensitive in the antecedents. Predicates
/// are interned into a shared [`PredicatePool`] so the key is three small
/// integer lists instead of a formatted string — canonical predicates make
/// structural interning coincide with logical equality.
type DedupKey = (Vec<u32>, Vec<u32>, u32);

fn key(pool: &mut PredicatePool, c: &HornConstraint) -> DedupKey {
    let mut ants: Vec<u32> = c.antecedents.iter().map(|p| pool.intern(p.clone()).0).collect();
    ants.sort_unstable();
    let mut rels: Vec<u32> = c.relationships.iter().map(|r| r.0).collect();
    rels.sort_unstable();
    (ants, rels, pool.intern(c.consequent.clone()).0)
}

/// Attribute-keyed postings over the working constraint set: which
/// constraints *consume* (have an antecedent on) and which *produce* (have
/// their consequent on) a given attribute key. Because implication never
/// crosses attribute keys, these postings are a complete candidate filter
/// for [`resolve`] — the fixpoint probes them instead of pairing every
/// frontier constraint against the whole set.
#[derive(Debug, Default)]
struct ResolutionIndex {
    consumers: HashMap<AttrKey, Vec<usize>>,
    producers: HashMap<AttrKey, Vec<usize>>,
}

impl ResolutionIndex {
    fn file(&mut self, i: usize, c: &HornConstraint) {
        for a in &c.antecedents {
            let bucket = self.consumers.entry(AttrKey::of(a)).or_default();
            if bucket.last() != Some(&i) {
                bucket.push(i);
            }
        }
        self.producers.entry(AttrKey::of(&c.consequent)).or_default().push(i);
    }

    fn consumers_of(&self, key: AttrKey) -> &[usize] {
        self.consumers.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Constraints whose consequent could discharge one of `c`'s
    /// antecedents, ascending and deduplicated.
    fn producers_for(&self, c: &HornConstraint, out: &mut Vec<usize>) {
        out.clear();
        for a in &c.antecedents {
            out.extend_from_slice(
                self.producers.get(&AttrKey::of(a)).map(|v| v.as_slice()).unwrap_or(&[]),
            );
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// Attempts the resolution of `ci` into `cj`: discharge every antecedent of
/// `cj` that `ci`'s consequent implies.
fn resolve(catalog: &Catalog, ci: &HornConstraint, cj: &HornConstraint) -> Option<HornConstraint> {
    let discharged: Vec<bool> = cj.antecedents.iter().map(|a| ci.consequent.implies(a)).collect();
    if !discharged.iter().any(|&d| d) {
        return None;
    }
    let mut antecedents = ci.antecedents.clone();
    for (a, &d) in cj.antecedents.iter().zip(&discharged) {
        if !d && !antecedents.contains(a) {
            antecedents.push(a.clone());
        }
    }
    let mut relationships = ci.relationships.clone();
    for r in &cj.relationships {
        if !relationships.contains(r) {
            relationships.push(*r);
        }
    }
    let mut extra = ci.classes.clone();
    extra.extend(cj.classes.iter().copied());
    let name = format!("{}*{}", ci.name, cj.name);
    HornConstraint::new(
        catalog,
        name,
        antecedents,
        relationships,
        cj.consequent.clone(),
        extra,
        Origin::Derived,
    )
    .ok() // tautologies / contradictions are silently dropped
}

/// Materializes the transitive closure of `constraints`.
pub fn transitive_closure(
    catalog: &Catalog,
    constraints: Vec<HornConstraint>,
    options: ClosureOptions,
) -> Result<ClosureResult, ConstraintError> {
    let mut all = constraints;
    let mut pool = PredicatePool::new();
    let mut seen: HashSet<DedupKey> = HashSet::with_capacity(all.len() * 2);
    let mut index = ResolutionIndex::default();
    for (i, c) in all.iter().enumerate() {
        seen.insert(key(&mut pool, c));
        index.file(i, c);
    }
    let mut derived_count = 0usize;
    let mut truncated = false;
    let mut rounds = 0usize;

    // Frontier-based semi-naive iteration, probing the attribute-keyed
    // postings instead of pairing each new constraint with the whole set:
    // only constraints sharing an attribute key can ever resolve, so the
    // probe is recall-complete and the derived set matches the exhaustive
    // pairing exactly (same discovery order, see the merge walk below).
    let mut producers: Vec<usize> = Vec::new();
    let mut frontier: Vec<usize> = (0..all.len()).collect();
    while !frontier.is_empty() && rounds < options.max_rounds {
        rounds += 1;
        let mut fresh: Vec<HornConstraint> = Vec::new();
        for &fi in &frontier {
            // `consumers` could absorb fi's consequent (direction fi → j);
            // `producers` could discharge one of fi's antecedents (j → fi).
            // Walk both ascending, trying (fi, j) before (j, fi) per j — the
            // candidate order of the exhaustive double loop.
            let consumers = index.consumers_of(AttrKey::of(&all[fi].consequent));
            index.producers_for(&all[fi], &mut producers);
            let (mut ci, mut pi) = (0usize, 0usize);
            while ci < consumers.len() || pi < producers.len() {
                let j = match (consumers.get(ci), producers.get(pi)) {
                    (Some(&c), Some(&p)) => c.min(p),
                    (Some(&c), None) => c,
                    (None, Some(&p)) => p,
                    // invariant: the loop condition holds ci or pi in
                    // bounds, so at least one side is Some.
                    (None, None) => unreachable!(),
                };
                let as_consumer = consumers.get(ci) == Some(&j);
                let as_producer = producers.get(pi) == Some(&j);
                ci += usize::from(as_consumer);
                pi += usize::from(as_producer);
                if j == fi {
                    continue;
                }
                let dirs = [as_consumer.then_some((fi, j)), as_producer.then_some((j, fi))];
                for (a, b) in dirs.into_iter().flatten() {
                    if let Some(d) = resolve(catalog, &all[a], &all[b]) {
                        let k = key(&mut pool, &d);
                        if seen.insert(k) {
                            if derived_count >= options.max_derived {
                                truncated = true;
                            } else {
                                derived_count += 1;
                                fresh.push(d);
                            }
                        }
                    }
                }
            }
        }
        if truncated {
            break;
        }
        let start = all.len();
        all.extend(fresh);
        for (i, c) in all.iter().enumerate().skip(start) {
            index.file(i, c);
        }
        frontier = (start..all.len()).collect();
    }
    if !frontier.is_empty() && rounds >= options.max_rounds {
        truncated = true;
    }
    Ok(ClosureResult { constraints: all, derived_count, rounds, truncated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::{AttributeDef, Catalog, DataType};
    use sqo_query::{CompOp, Predicate};

    /// One class with attributes a, b, c, d — enough for chains.
    fn chain_catalog() -> Catalog {
        let mut b = Catalog::builder();
        b.class(
            "t",
            vec![
                AttributeDef::new("a", DataType::Int),
                AttributeDef::new("b", DataType::Int),
                AttributeDef::new("c", DataType::Int),
                AttributeDef::new("d", DataType::Int),
            ],
        )
        .unwrap();
        b.build().unwrap()
    }

    fn mk(
        cat: &Catalog,
        name: &str,
        ante: (&str, CompOp, i64),
        cons: (&str, CompOp, i64),
    ) -> HornConstraint {
        HornConstraint::new(
            cat,
            name,
            vec![Predicate::sel(cat.attr_ref("t", ante.0).unwrap(), ante.1, ante.2)],
            vec![],
            Predicate::sel(cat.attr_ref("t", cons.0).unwrap(), cons.1, cons.2),
            vec![],
            Origin::Declared,
        )
        .unwrap()
    }

    #[test]
    fn derives_the_papers_example() {
        // (A = 1) -> (B > 20), (B > 10) -> (C = 3)  ⊢  (A = 1) -> (C = 3)
        let cat = chain_catalog();
        let c1 = mk(&cat, "c1", ("a", CompOp::Eq, 1), ("b", CompOp::Gt, 20));
        let c2 = mk(&cat, "c2", ("b", CompOp::Gt, 10), ("c", CompOp::Eq, 3));
        let res = transitive_closure(&cat, vec![c1, c2], ClosureOptions::default()).unwrap();
        assert_eq!(res.derived_count, 1);
        assert!(!res.truncated);
        let derived = &res.constraints[2];
        assert_eq!(derived.origin, Origin::Derived);
        assert_eq!(
            derived.antecedents,
            vec![Predicate::sel(cat.attr_ref("t", "a").unwrap(), CompOp::Eq, 1i64)]
        );
        assert_eq!(
            derived.consequent,
            Predicate::sel(cat.attr_ref("t", "c").unwrap(), CompOp::Eq, 3i64)
        );
    }

    #[test]
    fn no_derivation_without_implication() {
        // (A = 1) -> (B > 5) does NOT discharge (B > 10).
        let cat = chain_catalog();
        let c1 = mk(&cat, "c1", ("a", CompOp::Eq, 1), ("b", CompOp::Gt, 5));
        let c2 = mk(&cat, "c2", ("b", CompOp::Gt, 10), ("c", CompOp::Eq, 3));
        let res = transitive_closure(&cat, vec![c1, c2], ClosureOptions::default()).unwrap();
        assert_eq!(res.derived_count, 0);
    }

    #[test]
    fn three_step_chain_closes() {
        let cat = chain_catalog();
        let c1 = mk(&cat, "c1", ("a", CompOp::Eq, 1), ("b", CompOp::Eq, 2));
        let c2 = mk(&cat, "c2", ("b", CompOp::Eq, 2), ("c", CompOp::Eq, 3));
        let c3 = mk(&cat, "c3", ("c", CompOp::Eq, 3), ("d", CompOp::Eq, 4));
        let res = transitive_closure(&cat, vec![c1, c2, c3], ClosureOptions::default()).unwrap();
        // Derived: a->c, b->d, a->d  (a->d reachable in round 2)
        assert_eq!(res.derived_count, 3);
        assert!(res.rounds >= 2);
        let a_to_d = res.constraints.iter().any(|c| {
            c.antecedents == vec![Predicate::sel(cat.attr_ref("t", "a").unwrap(), CompOp::Eq, 1i64)]
                && c.consequent == Predicate::sel(cat.attr_ref("t", "d").unwrap(), CompOp::Eq, 4i64)
        });
        assert!(a_to_d, "a -> d must be derived transitively");
    }

    #[test]
    fn cycles_terminate() {
        // a=1 -> b=2, b=2 -> a=1: derivations are tautologies, dropped.
        let cat = chain_catalog();
        let c1 = mk(&cat, "c1", ("a", CompOp::Eq, 1), ("b", CompOp::Eq, 2));
        let c2 = mk(&cat, "c2", ("b", CompOp::Eq, 2), ("a", CompOp::Eq, 1));
        let res = transitive_closure(&cat, vec![c1, c2], ClosureOptions::default()).unwrap();
        assert_eq!(res.derived_count, 0);
        assert!(!res.truncated);
    }

    #[test]
    fn limit_truncates_gracefully() {
        let cat = chain_catalog();
        let c1 = mk(&cat, "c1", ("a", CompOp::Eq, 1), ("b", CompOp::Eq, 2));
        let c2 = mk(&cat, "c2", ("b", CompOp::Eq, 2), ("c", CompOp::Eq, 3));
        let c3 = mk(&cat, "c3", ("c", CompOp::Eq, 3), ("d", CompOp::Eq, 4));
        let res = transitive_closure(
            &cat,
            vec![c1, c2, c3],
            ClosureOptions { max_derived: 1, max_rounds: 8 },
        )
        .unwrap();
        assert!(res.truncated);
        assert_eq!(res.derived_count, 1);
    }

    #[test]
    fn multi_antecedent_discharge_keeps_remainder() {
        let cat = chain_catalog();
        // c1: (a=1) -> (b=2).  c2: (b=2) ∧ (c=3) -> (d=4).
        let c1 = mk(&cat, "c1", ("a", CompOp::Eq, 1), ("b", CompOp::Eq, 2));
        let c2 = HornConstraint::new(
            &cat,
            "c2",
            vec![
                Predicate::sel(cat.attr_ref("t", "b").unwrap(), CompOp::Eq, 2i64),
                Predicate::sel(cat.attr_ref("t", "c").unwrap(), CompOp::Eq, 3i64),
            ],
            vec![],
            Predicate::sel(cat.attr_ref("t", "d").unwrap(), CompOp::Eq, 4i64),
            vec![],
            Origin::Declared,
        )
        .unwrap();
        let res = transitive_closure(&cat, vec![c1, c2], ClosureOptions::default()).unwrap();
        assert_eq!(res.derived_count, 1);
        let d = &res.constraints[2];
        // Derived: (a=1) ∧ (c=3) -> (d=4)
        assert_eq!(d.antecedents.len(), 2);
        assert!(d.antecedents.contains(&Predicate::sel(
            cat.attr_ref("t", "a").unwrap(),
            CompOp::Eq,
            1i64
        )));
        assert!(d.antecedents.contains(&Predicate::sel(
            cat.attr_ref("t", "c").unwrap(),
            CompOp::Eq,
            3i64
        )));
    }
}
