//! Transitive-closure materialization (paper §3).
//!
//! > "the transitive closures of the constraints are materialized during
//! > precompilation … e.g. if (A = a) → (B > 20) and (B > 10) → (C = c) then
//! > deduce (A = a) → (C = c)"
//!
//! The derivation step is resolution with *implication-aware* unification
//! (the `B > 20` / `B > 10` pair above): whenever `cᵢ`'s consequent implies
//! one or more antecedents of `cⱼ`, a new constraint is derived with those
//! antecedents discharged. The computation runs to a fixpoint under
//! configurable limits; truncation is safe (the closure only *adds*
//! optimization opportunities, never correctness).

use std::collections::HashSet;

use sqo_catalog::Catalog;

use crate::error::ConstraintError;
use crate::horn::{HornConstraint, Origin};

/// Limits for the fixpoint computation.
#[derive(Debug, Clone, Copy)]
pub struct ClosureOptions {
    /// Maximum number of *derived* constraints to keep.
    pub max_derived: usize,
    /// Maximum fixpoint rounds.
    pub max_rounds: usize,
}

impl Default for ClosureOptions {
    fn default() -> Self {
        Self { max_derived: 4096, max_rounds: 8 }
    }
}

/// Outcome of the closure computation.
#[derive(Debug, Clone)]
pub struct ClosureResult {
    /// Original constraints followed by derived ones.
    pub constraints: Vec<HornConstraint>,
    pub derived_count: usize,
    pub rounds: usize,
    /// True if a limit stopped the fixpoint before convergence.
    pub truncated: bool,
}

/// Canonical dedup key: order-insensitive in the antecedents.
fn key(c: &HornConstraint) -> String {
    let mut ants: Vec<String> = c.antecedents.iter().map(|p| format!("{p:?}")).collect();
    ants.sort_unstable();
    let mut rels: Vec<u32> = c.relationships.iter().map(|r| r.0).collect();
    rels.sort_unstable();
    format!("{ants:?}|{rels:?}|{:?}", c.consequent)
}

/// Attempts the resolution of `ci` into `cj`: discharge every antecedent of
/// `cj` that `ci`'s consequent implies.
fn resolve(catalog: &Catalog, ci: &HornConstraint, cj: &HornConstraint) -> Option<HornConstraint> {
    let discharged: Vec<bool> = cj.antecedents.iter().map(|a| ci.consequent.implies(a)).collect();
    if !discharged.iter().any(|&d| d) {
        return None;
    }
    let mut antecedents = ci.antecedents.clone();
    for (a, &d) in cj.antecedents.iter().zip(&discharged) {
        if !d && !antecedents.contains(a) {
            antecedents.push(a.clone());
        }
    }
    let mut relationships = ci.relationships.clone();
    for r in &cj.relationships {
        if !relationships.contains(r) {
            relationships.push(*r);
        }
    }
    let mut extra = ci.classes.clone();
    extra.extend(cj.classes.iter().copied());
    let name = format!("{}*{}", ci.name, cj.name);
    HornConstraint::new(
        catalog,
        name,
        antecedents,
        relationships,
        cj.consequent.clone(),
        extra,
        Origin::Derived,
    )
    .ok() // tautologies / contradictions are silently dropped
}

/// Materializes the transitive closure of `constraints`.
pub fn transitive_closure(
    catalog: &Catalog,
    constraints: Vec<HornConstraint>,
    options: ClosureOptions,
) -> Result<ClosureResult, ConstraintError> {
    let mut all = constraints;
    let mut seen: HashSet<String> = all.iter().map(key).collect();
    let mut derived_count = 0usize;
    let mut truncated = false;
    let mut rounds = 0usize;

    // Frontier-based semi-naive iteration: only pair new constraints against
    // everything each round.
    let mut frontier: Vec<usize> = (0..all.len()).collect();
    while !frontier.is_empty() && rounds < options.max_rounds {
        rounds += 1;
        let mut fresh: Vec<HornConstraint> = Vec::new();
        for &fi in &frontier {
            for j in 0..all.len() {
                if fi == j {
                    continue;
                }
                // Both directions: frontier as producer and as consumer.
                for (a, b) in [(fi, j), (j, fi)] {
                    if let Some(d) = resolve(catalog, &all[a], &all[b]) {
                        let k = key(&d);
                        if seen.insert(k) {
                            if derived_count >= options.max_derived {
                                truncated = true;
                            } else {
                                derived_count += 1;
                                fresh.push(d);
                            }
                        }
                    }
                }
            }
        }
        if truncated {
            break;
        }
        let start = all.len();
        all.extend(fresh);
        frontier = (start..all.len()).collect();
    }
    if !frontier.is_empty() && rounds >= options.max_rounds {
        truncated = true;
    }
    Ok(ClosureResult { constraints: all, derived_count, rounds, truncated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::{AttributeDef, Catalog, DataType};
    use sqo_query::{CompOp, Predicate};

    /// One class with attributes a, b, c, d — enough for chains.
    fn chain_catalog() -> Catalog {
        let mut b = Catalog::builder();
        b.class(
            "t",
            vec![
                AttributeDef::new("a", DataType::Int),
                AttributeDef::new("b", DataType::Int),
                AttributeDef::new("c", DataType::Int),
                AttributeDef::new("d", DataType::Int),
            ],
        )
        .unwrap();
        b.build().unwrap()
    }

    fn mk(
        cat: &Catalog,
        name: &str,
        ante: (&str, CompOp, i64),
        cons: (&str, CompOp, i64),
    ) -> HornConstraint {
        HornConstraint::new(
            cat,
            name,
            vec![Predicate::sel(cat.attr_ref("t", ante.0).unwrap(), ante.1, ante.2)],
            vec![],
            Predicate::sel(cat.attr_ref("t", cons.0).unwrap(), cons.1, cons.2),
            vec![],
            Origin::Declared,
        )
        .unwrap()
    }

    #[test]
    fn derives_the_papers_example() {
        // (A = 1) -> (B > 20), (B > 10) -> (C = 3)  ⊢  (A = 1) -> (C = 3)
        let cat = chain_catalog();
        let c1 = mk(&cat, "c1", ("a", CompOp::Eq, 1), ("b", CompOp::Gt, 20));
        let c2 = mk(&cat, "c2", ("b", CompOp::Gt, 10), ("c", CompOp::Eq, 3));
        let res = transitive_closure(&cat, vec![c1, c2], ClosureOptions::default()).unwrap();
        assert_eq!(res.derived_count, 1);
        assert!(!res.truncated);
        let derived = &res.constraints[2];
        assert_eq!(derived.origin, Origin::Derived);
        assert_eq!(
            derived.antecedents,
            vec![Predicate::sel(cat.attr_ref("t", "a").unwrap(), CompOp::Eq, 1i64)]
        );
        assert_eq!(
            derived.consequent,
            Predicate::sel(cat.attr_ref("t", "c").unwrap(), CompOp::Eq, 3i64)
        );
    }

    #[test]
    fn no_derivation_without_implication() {
        // (A = 1) -> (B > 5) does NOT discharge (B > 10).
        let cat = chain_catalog();
        let c1 = mk(&cat, "c1", ("a", CompOp::Eq, 1), ("b", CompOp::Gt, 5));
        let c2 = mk(&cat, "c2", ("b", CompOp::Gt, 10), ("c", CompOp::Eq, 3));
        let res = transitive_closure(&cat, vec![c1, c2], ClosureOptions::default()).unwrap();
        assert_eq!(res.derived_count, 0);
    }

    #[test]
    fn three_step_chain_closes() {
        let cat = chain_catalog();
        let c1 = mk(&cat, "c1", ("a", CompOp::Eq, 1), ("b", CompOp::Eq, 2));
        let c2 = mk(&cat, "c2", ("b", CompOp::Eq, 2), ("c", CompOp::Eq, 3));
        let c3 = mk(&cat, "c3", ("c", CompOp::Eq, 3), ("d", CompOp::Eq, 4));
        let res = transitive_closure(&cat, vec![c1, c2, c3], ClosureOptions::default()).unwrap();
        // Derived: a->c, b->d, a->d  (a->d reachable in round 2)
        assert_eq!(res.derived_count, 3);
        assert!(res.rounds >= 2);
        let a_to_d = res.constraints.iter().any(|c| {
            c.antecedents == vec![Predicate::sel(cat.attr_ref("t", "a").unwrap(), CompOp::Eq, 1i64)]
                && c.consequent == Predicate::sel(cat.attr_ref("t", "d").unwrap(), CompOp::Eq, 4i64)
        });
        assert!(a_to_d, "a -> d must be derived transitively");
    }

    #[test]
    fn cycles_terminate() {
        // a=1 -> b=2, b=2 -> a=1: derivations are tautologies, dropped.
        let cat = chain_catalog();
        let c1 = mk(&cat, "c1", ("a", CompOp::Eq, 1), ("b", CompOp::Eq, 2));
        let c2 = mk(&cat, "c2", ("b", CompOp::Eq, 2), ("a", CompOp::Eq, 1));
        let res = transitive_closure(&cat, vec![c1, c2], ClosureOptions::default()).unwrap();
        assert_eq!(res.derived_count, 0);
        assert!(!res.truncated);
    }

    #[test]
    fn limit_truncates_gracefully() {
        let cat = chain_catalog();
        let c1 = mk(&cat, "c1", ("a", CompOp::Eq, 1), ("b", CompOp::Eq, 2));
        let c2 = mk(&cat, "c2", ("b", CompOp::Eq, 2), ("c", CompOp::Eq, 3));
        let c3 = mk(&cat, "c3", ("c", CompOp::Eq, 3), ("d", CompOp::Eq, 4));
        let res = transitive_closure(
            &cat,
            vec![c1, c2, c3],
            ClosureOptions { max_derived: 1, max_rounds: 8 },
        )
        .unwrap();
        assert!(res.truncated);
        assert_eq!(res.derived_count, 1);
    }

    #[test]
    fn multi_antecedent_discharge_keeps_remainder() {
        let cat = chain_catalog();
        // c1: (a=1) -> (b=2).  c2: (b=2) ∧ (c=3) -> (d=4).
        let c1 = mk(&cat, "c1", ("a", CompOp::Eq, 1), ("b", CompOp::Eq, 2));
        let c2 = HornConstraint::new(
            &cat,
            "c2",
            vec![
                Predicate::sel(cat.attr_ref("t", "b").unwrap(), CompOp::Eq, 2i64),
                Predicate::sel(cat.attr_ref("t", "c").unwrap(), CompOp::Eq, 3i64),
            ],
            vec![],
            Predicate::sel(cat.attr_ref("t", "d").unwrap(), CompOp::Eq, 4i64),
            vec![],
            Origin::Declared,
        )
        .unwrap();
        let res = transitive_closure(&cat, vec![c1, c2], ClosureOptions::default()).unwrap();
        assert_eq!(res.derived_count, 1);
        let d = &res.constraints[2];
        // Derived: (a=1) ∧ (c=3) -> (d=4)
        assert_eq!(d.antecedents.len(), 2);
        assert!(d.antecedents.contains(&Predicate::sel(
            cat.attr_ref("t", "a").unwrap(),
            CompOp::Eq,
            1i64
        )));
        assert!(d.antecedents.contains(&Predicate::sel(
            cat.attr_ref("t", "c").unwrap(),
            CompOp::Eq,
            3i64
        )));
    }
}
