//! Incremental rebuild ≡ full rebuild: for arbitrary write batches over
//! arbitrary mini-databases, the `Arc`-sharded clone-and-patch successor of
//! [`Database::with_writes`] must be indistinguishable from the from-scratch
//! [`Database::with_writes_full`] oracle on **every** read API — extents,
//! link traversals in both directions (exact order, thanks to the canonical
//! adjacency invariant), index probes (hash and B-tree, including probe
//! counts), statistics, receipts, the data epoch — and both paths must
//! accept/reject identically, error for error. Covered write shapes:
//! inserts (with possibly-dangling links), deletes (with swap-remove
//! renumbering, including on a self-relationship), links/unlinks and
//! in-place attribute updates, chained across multiple batches so patched
//! snapshots are themselves patched again.

use proptest::prelude::*;
use std::sync::Arc;

use sqo_catalog::{
    AttrId, AttributeDef, Catalog, ClassId, DataType, IndexKind, Multiplicity, RelId,
    RelationshipEnd, Value,
};
use sqo_query::{Bound, ValueSet};
use sqo_storage::{DataWrite, Database, IntegrityOptions, ObjectId, StorageError};

const CLASSES: usize = 3;
const ATTRS: usize = 3;
const RELS: usize = 3;

/// Three int-attribute classes (one hash-indexed, one B-tree-indexed, one
/// plain attribute each), a many-many relationship, a to-one relationship
/// and a self-relationship — every structural case the write path handles.
fn catalog() -> Arc<Catalog> {
    let mut b = Catalog::builder();
    let mut ids = Vec::new();
    for c in 0..CLASSES {
        ids.push(
            b.class(
                format!("c{c}"),
                vec![
                    AttributeDef::indexed("a0", DataType::Int, IndexKind::Hash),
                    AttributeDef::indexed("a1", DataType::Int, IndexKind::BTree),
                    AttributeDef::new("a2", DataType::Int),
                ],
            )
            .unwrap(),
        );
    }
    b.relationship(
        "r0",
        RelationshipEnd::new(ids[0], Multiplicity::Many, false),
        RelationshipEnd::new(ids[1], Multiplicity::Many, false),
    )
    .unwrap();
    b.relationship(
        "r1",
        RelationshipEnd::new(ids[1], Multiplicity::One, false),
        RelationshipEnd::new(ids[2], Multiplicity::Many, false),
    )
    .unwrap();
    b.relationship(
        "r2",
        RelationshipEnd::new(ids[2], Multiplicity::Many, false),
        RelationshipEnd::new(ids[2], Multiplicity::Many, false),
    )
    .unwrap();
    Arc::new(b.build().unwrap())
}

#[derive(Debug, Clone)]
enum RawWrite {
    Insert { class: usize, vals: (i64, i64, i64), links: Vec<(usize, u32)> },
    Delete { class: usize, oid: u32 },
    Update { class: usize, oid: u32, attr: u32, val: i64 },
    Link { rel: usize, l: u32, r: u32 },
    Unlink { rel: usize, l: u32, r: u32 },
}

fn raw_write() -> impl Strategy<Value = RawWrite> {
    let val = -2i64..4;
    prop_oneof![
        (
            0..CLASSES,
            (val.clone(), val.clone(), val.clone()),
            prop::collection::vec((0..RELS, 0u32..10), 0..3)
        )
            .prop_map(|(class, vals, links)| RawWrite::Insert { class, vals, links }),
        (0..CLASSES, 0u32..12).prop_map(|(class, oid)| RawWrite::Delete { class, oid }),
        (0..CLASSES, 0u32..12, 0u32..4, val.clone())
            .prop_map(|(class, oid, attr, val)| RawWrite::Update { class, oid, attr, val }),
        (0..RELS, 0u32..12, 0u32..12).prop_map(|(rel, l, r)| RawWrite::Link { rel, l, r }),
        (0..RELS, 0u32..12, 0u32..12).prop_map(|(rel, l, r)| RawWrite::Unlink { rel, l, r }),
    ]
}

/// Builds the base instance: arbitrary tuples per class, arbitrary (valid)
/// links. Integrity is off — any link shape is a legal starting state.
fn build_base(
    catalog: &Arc<Catalog>,
    tuples: &[Vec<(i64, i64, i64)>],
    links: &[(usize, u32, u32)],
) -> Database {
    let mut b = Database::builder(Arc::clone(catalog));
    for (c, rows) in tuples.iter().enumerate() {
        for &(a0, a1, a2) in rows {
            b.insert(ClassId(c as u32), vec![Value::Int(a0), Value::Int(a1), Value::Int(a2)])
                .unwrap();
        }
    }
    for &(rel, l, r) in links {
        let rel = RelId((rel % RELS) as u32);
        let def = catalog.relationship(rel).unwrap();
        let lcard = tuples[def.left.class.index()].len();
        let rcard = tuples[def.right.class.index()].len();
        if lcard == 0 || rcard == 0 {
            continue;
        }
        b.link(rel, ObjectId(l % lcard as u32), ObjectId(r % rcard as u32)).unwrap();
    }
    b.finalize(IntegrityOptions { enforce_total_participation: false, enforce_multiplicity: false })
        .unwrap()
}

fn materialize(raw: &RawWrite) -> DataWrite {
    match raw {
        RawWrite::Insert { class, vals, links } => DataWrite::Insert {
            class: ClassId(*class as u32),
            tuple: vec![Value::Int(vals.0), Value::Int(vals.1), Value::Int(vals.2)],
            links: links.iter().map(|&(rel, o)| (RelId(rel as u32), ObjectId(o))).collect(),
        },
        RawWrite::Delete { class, oid } => {
            DataWrite::Delete { class: ClassId(*class as u32), object: ObjectId(*oid) }
        }
        RawWrite::Update { class, oid, attr, val } => DataWrite::Update {
            class: ClassId(*class as u32),
            object: ObjectId(*oid),
            attr: AttrId(*attr),
            value: Value::Int(*val),
        },
        RawWrite::Link { rel, l, r } => {
            DataWrite::Link { rel: RelId(*rel as u32), left: ObjectId(*l), right: ObjectId(*r) }
        }
        RawWrite::Unlink { rel, l, r } => {
            DataWrite::Unlink { rel: RelId(*rel as u32), left: ObjectId(*l), right: ObjectId(*r) }
        }
    }
}

/// Every read API must agree, exactly.
fn assert_equivalent(catalog: &Catalog, inc: &Database, full: &Database) {
    assert_eq!(inc.data_version(), full.data_version());
    for (cid, cdef) in catalog.classes() {
        assert_eq!(inc.cardinality(cid), full.cardinality(cid), "{}", cdef.name);
        for o in 0..inc.cardinality(cid) as u32 {
            assert_eq!(
                inc.tuple(cid, ObjectId(o)).unwrap(),
                full.tuple(cid, ObjectId(o)).unwrap(),
                "{} object {o}",
                cdef.name
            );
        }
        for ai in 0..ATTRS as u32 {
            let attr = sqo_catalog::AttrRef::new(cid, AttrId(ai));
            let (Some(ix_inc), Some(ix_full)) = (inc.index(attr), full.index(attr)) else {
                assert_eq!(inc.index(attr).is_some(), full.index(attr).is_some());
                continue;
            };
            assert_eq!(ix_inc.len(), ix_full.len());
            for v in -3i64..6 {
                assert_eq!(
                    ix_inc.probe_eq(&Value::Int(v)),
                    ix_full.probe_eq(&Value::Int(v)),
                    "{}.a{ai} = {v}",
                    cdef.name
                );
            }
            // Range probes must touch identical entries (oids *and* probe
            // counts — a patched B-tree may not keep empty posting keys).
            for lo in [-3i64, 0, 2] {
                let set =
                    ValueSet::Range { lo: Bound::Included(Value::Int(lo)), hi: Bound::Unbounded };
                match (ix_inc.probe(&set), ix_full.probe(&set)) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.oids, b.oids, "{}.a{ai} >= {lo}", cdef.name);
                        assert_eq!(a.probes, b.probes, "{}.a{ai} >= {lo}", cdef.name);
                    }
                    (a, b) => assert_eq!(a.is_some(), b.is_some()),
                }
            }
        }
    }
    for (rel, def) in catalog.relationships() {
        assert_eq!(inc.links(rel).link_count(), full.links(rel).link_count());
        for o in 0..inc.cardinality(def.left.class) as u32 {
            assert_eq!(
                inc.traverse(rel, def.left.class, ObjectId(o)).unwrap(),
                full.traverse(rel, def.left.class, ObjectId(o)).unwrap(),
                "{} from left {o}",
                def.name
            );
        }
        // `traverse` resolves self-relationships to the left side; compare
        // the right side through the link table directly.
        for o in 0..inc.cardinality(def.right.class) as u32 {
            assert_eq!(
                inc.links(rel).from_right(ObjectId(o)),
                full.links(rel).from_right(ObjectId(o)),
                "{} from right {o}",
                def.name
            );
        }
    }
    assert_eq!(inc.stats(), full.stats(), "statistics snapshots diverged");
    assert_eq!(inc.stats(), &inc.rebuild_statistics(), "folded stats != from-scratch rescan");
}

proptest! {
    #[test]
    fn incremental_equals_full_rebuild(
        tuples in prop::collection::vec(
            prop::collection::vec((-2i64..4, -2i64..4, -2i64..4), 0..7), CLASSES..(CLASSES + 1)),
        base_links in prop::collection::vec((0..RELS, 0u32..16, 0u32..16), 0..12),
        batches in prop::collection::vec(prop::collection::vec(raw_write(), 0..6), 1..4),
        enforce in 0u32..2,
    ) {
        let catalog = catalog();
        let base = build_base(&catalog, &tuples, &base_links);
        let integrity = (enforce == 1).then_some(IntegrityOptions {
            enforce_total_participation: false, // never declared by the schema
            enforce_multiplicity: true,         // r1's to-one end can trip
        });
        let mut inc = base;
        // An independently evolved full-rebuild twin: identical logical
        // state, produced only by `with_writes_full`.
        let mut full = build_base(&catalog, &tuples, &base_links);
        for batch in &batches {
            let writes: Vec<DataWrite> = batch.iter().map(materialize).collect();
            let a = inc.with_writes(&writes, integrity);
            let b = full.with_writes_full(&writes, integrity);
            match (a, b) {
                (Ok((ndb, ra)), Ok((fdb, rb))) => {
                    assert_eq!(ra, rb, "receipts diverged for {writes:?}");
                    assert_equivalent(&catalog, &ndb, &fdb);
                    inc = ndb;
                    full = fdb;
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea, eb, "error values diverged for {writes:?}");
                    // Atomicity: both bases must be untouched and still agree.
                    assert_equivalent(&catalog, &inc, &full);
                }
                (a, b) => panic!(
                    "accept/reject diverged for {writes:?}: incremental {a:?} vs full {b:?}"
                ),
            }
        }
    }
}

/// Both write paths must reject an undeclared-integrity violation the same
/// way: a second `r1` edge for one `c1` object trips the to-one end.
#[test]
fn scoped_integrity_rejects_identically() {
    let catalog = catalog();
    let base =
        build_base(&catalog, &[vec![], vec![(0, 0, 0)], vec![(1, 1, 1), (2, 2, 2)]], &[(1, 0, 0)]);
    let batch = vec![DataWrite::Link { rel: RelId(1), left: ObjectId(0), right: ObjectId(1) }];
    let options =
        IntegrityOptions { enforce_total_participation: false, enforce_multiplicity: true };
    let a = base.with_writes(&batch, Some(options));
    let b = base.with_writes_full(&batch, Some(options));
    assert!(matches!(a, Err(StorageError::MultiplicityViolated { .. })), "{a:?}");
    match (a, b) {
        (Err(ea), Err(eb)) => assert_eq!(ea, eb),
        other => panic!("paths diverged: {other:?}"),
    }
}
