//! Table-driven corruption suite: every damaged snapshot must be rejected
//! with the [`LoadError`] variant that `docs/VALIDATION.md` documents, at
//! the validation level that document assigns to the broken invariant —
//! and, for Strict/Audit-level damage, must still *load* at the levels
//! below, because graceful degradation is part of the contract.
//!
//! The corrupt payloads are hand-encoded from the byte layouts in
//! `docs/FORMAT.md`, not produced by mutating encoder output blindly; a
//! companion test pins the hand encodings against the real encoder so the
//! fixtures cannot drift from the format they claim to corrupt.

use std::sync::Arc;

use sqo_catalog::{
    AttributeDef, Catalog, ClassId, DataType, IndexKind, Multiplicity, RelId, RelationshipEnd,
    Value,
};
use sqo_snapshot::{
    write_stats, write_value, ByteWriter, LoadError, SnapshotBuilder, ValidationLevel, SEC_CATALOG,
    SEC_EXTENTS, SEC_INDEXES, SEC_LINKS, SEC_STATS,
};
use sqo_storage::{
    database_sections, decode_database, encode_database, Database, IntegrityOptions, ObjectId,
};

/// A tiny database with exactly known bytes in every section:
///
/// - `c0` — 3 objects, attrs `k: Int` (hash-indexed) and `t: Str`:
///   `(5, "x")`, `(5, "y")`, `(7, "x")`. Hash index: `5 → [0, 1]`,
///   `7 → [2]`. String dictionary: `["x", "y"]`.
/// - `c1` — 2 objects, attr `v: Int`: `(10)`, `(20)`.
/// - `r0` — c0 ↔ c1 many-to-many with edges (0,0), (1,0), (1,1):
///   left adjacency `[[0], [0, 1], []]`, right adjacency `[[0, 1], [1]]`.
fn fixture() -> Database {
    let mut b = Catalog::builder();
    let c0 = b
        .class(
            "c0",
            vec![
                AttributeDef::indexed("k", DataType::Int, IndexKind::Hash),
                AttributeDef::new("t", DataType::Str),
            ],
        )
        .unwrap();
    let c1 = b.class("c1", vec![AttributeDef::new("v", DataType::Int)]).unwrap();
    b.relationship(
        "r0",
        RelationshipEnd::new(c0, Multiplicity::Many, false),
        RelationshipEnd::new(c1, Multiplicity::Many, false),
    )
    .unwrap();
    let catalog = Arc::new(b.build().unwrap());

    let mut db = Database::builder(catalog);
    for (k, t) in [(5, "x"), (5, "y"), (7, "x")] {
        db.insert(ClassId(0), vec![Value::Int(k), Value::str(t)]).unwrap();
    }
    for v in [10, 20] {
        db.insert(ClassId(1), vec![Value::Int(v)]).unwrap();
    }
    for (l, r) in [(0, 0), (1, 0), (1, 1)] {
        db.link(RelId(0), ObjectId(l), ObjectId(r)).unwrap();
    }
    db.finalize(IntegrityOptions {
        enforce_total_participation: false,
        enforce_multiplicity: false,
    })
    .unwrap()
}

/// Re-encodes the fixture with one section's payload replaced, through the
/// real [`SnapshotBuilder`] so the container (offsets, checksums) stays
/// valid and only the targeted section is damaged.
fn with_section(db: &Database, replace: u32, payload: Vec<u8>) -> Vec<u8> {
    let mut b = SnapshotBuilder::new();
    for (id, p) in database_sections(db) {
        b.section(id, if id == replace { payload.clone() } else { p });
    }
    b.finish()
}

/// Hand-encodes an EXTENTS payload for the fixture (`docs/FORMAT.md` §3.2)
/// with a chosen dictionary index for object 0's `t` value (0 is correct).
fn extents_payload(data_version: u64, first_t_ix: u32) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(data_version);
    w.u32(2); // class count
    w.u32(3); // |c0|
    w.u32(2); // |c1|
    w.u32(2); // dictionary entries, first-appearance order
    w.str("x");
    w.str("y");
    // c0 tuples: untagged Int payload then Str dictionary index.
    w.i64(5);
    w.u32(first_t_ix);
    w.i64(5);
    w.u32(1);
    w.i64(7);
    w.u32(0);
    // c1 tuples.
    w.i64(10);
    w.i64(20);
    w.finish()
}

/// Hand-encodes a LINKS payload (`docs/FORMAT.md` §3.3) for a single
/// relationship with the given cardinalities and adjacency lists.
fn links_payload(left_card: u32, right_card: u32, left: &[&[u32]], right: &[&[u32]]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(1); // relationship count
    w.u32(left_card);
    w.u32(right_card);
    for list in left.iter().chain(right) {
        w.u32(list.len() as u32);
        for &o in *list {
            w.u32(o);
        }
    }
    w.finish()
}

/// Hand-encodes an INDEXES payload (`docs/FORMAT.md` §3.4) for the fixture
/// with the given hash entries on `c0.k` (`kind_tag` is 1 for hash).
fn indexes_payload(kind_tag: u8, entries: &[(Value, &[u32])]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(2); // index banks (one per class)
    w.u32(2); // c0 slots
    w.u8(kind_tag); // c0.k
    if kind_tag != 0 {
        w.u32(entries.len() as u32);
        for (key, posting) in entries {
            write_value(&mut w, key);
            w.u32(posting.len() as u32);
            for &o in *posting {
                w.u32(o);
            }
        }
    }
    w.u8(0); // c0.t: not indexed
    w.u32(1); // c1 slots
    w.u8(0); // c1.v: not indexed
    w.finish()
}

/// The fixture's STATS payload after an arbitrary in-memory edit.
fn stats_payload(db: &Database, tamper: impl FnOnce(&mut sqo_catalog::StatsSnapshot)) -> Vec<u8> {
    let mut stats = db.stats().clone();
    tamper(&mut stats);
    let mut w = ByteWriter::new();
    write_stats(&mut w, &stats);
    w.finish()
}

/// The hand encodings above *are* `docs/FORMAT.md`; this test pins them
/// against the real encoder so a format change that forgets the spec (or a
/// spec change that forgets the code) fails loudly here.
#[test]
fn handcrafted_payloads_match_the_encoder() {
    let db = fixture();
    let sections: std::collections::HashMap<u32, Vec<u8>> =
        database_sections(&db).into_iter().collect();
    assert_eq!(sections[&SEC_EXTENTS], extents_payload(db.data_version(), 0), "EXTENTS layout");
    assert_eq!(
        sections[&SEC_LINKS],
        links_payload(3, 2, &[&[0], &[0, 1], &[]], &[&[0, 1], &[1]]),
        "LINKS layout"
    );
    assert_eq!(
        sections[&SEC_INDEXES],
        indexes_payload(1, &[(Value::Int(5), &[0, 1]), (Value::Int(7), &[2])]),
        "INDEXES layout"
    );
    assert_eq!(sections[&SEC_STATS], stats_payload(&db, |_| ()), "STATS layout");
}

/// Unknown section ids are the format's forward-compatibility rule: a v1
/// reader skips them and still validates everything it understands.
#[test]
fn unknown_sections_are_skipped() {
    let db = fixture();
    let mut b = SnapshotBuilder::new();
    for (id, p) in database_sections(&db) {
        b.section(id, p);
    }
    b.section(999, b"from a future writer".to_vec());
    let loaded = decode_database(&b.finish(), ValidationLevel::Audit).unwrap();
    assert_eq!(loaded.data_version(), db.data_version());
}

struct Case {
    name: &'static str,
    /// The level whose documented check must reject these bytes.
    fails_at: ValidationLevel,
    /// The variant documented for this damage (display name only).
    expect: &'static str,
    matches: fn(&LoadError) -> bool,
    /// Levels that must still accept the same bytes — the documented
    /// degradation when a cheaper level skips the broken invariant.
    loads_at: &'static [ValidationLevel],
    bytes: Vec<u8>,
}

#[test]
fn corruption_is_rejected_at_the_documented_level() {
    use ValidationLevel::{Audit, Standard, Strict};
    let db = fixture();
    let good = encode_database(&db);
    let dv = db.data_version();

    // Raw container damage (docs/VALIDATION.md §2, all Standard-level).
    let truncated = good[..11].to_vec();
    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xff;
    let mut future_version = good.clone();
    future_version[4..6].copy_from_slice(&2u16.to_le_bytes());
    let mut runaway_table = good.clone();
    runaway_table[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut entry_past_eof = good.clone();
    entry_past_eof[16..24].copy_from_slice(&(good.len() as u64).to_le_bytes());
    let mut bit_flip = good.clone();
    *bit_flip.last_mut().unwrap() ^= 0x01;
    let duplicate = {
        let mut b = SnapshotBuilder::new();
        for (id, p) in database_sections(&db) {
            if id == SEC_CATALOG {
                b.section(id, p.clone());
                b.section(100, p); // same payload, then…
            } else {
                b.section(id, p);
            }
        }
        b.section(SEC_CATALOG, Vec::new()); // …the id again.
        b.finish()
    };
    let missing_stats = {
        let mut b = SnapshotBuilder::new();
        for (id, p) in database_sections(&db).into_iter().filter(|(id, _)| *id != SEC_STATS) {
            b.section(id, p);
        }
        b.finish()
    };

    let cases = vec![
        Case {
            name: "file shorter than the 12-byte header",
            fails_at: Standard,
            expect: "TruncatedHeader",
            matches: |e| matches!(e, LoadError::TruncatedHeader),
            loads_at: &[],
            bytes: truncated,
        },
        Case {
            name: "empty file",
            fails_at: Standard,
            expect: "TruncatedHeader",
            matches: |e| matches!(e, LoadError::TruncatedHeader),
            loads_at: &[],
            bytes: Vec::new(),
        },
        Case {
            name: "first magic byte flipped",
            fails_at: Standard,
            expect: "BadMagic",
            matches: |e| matches!(e, LoadError::BadMagic),
            loads_at: &[],
            bytes: bad_magic,
        },
        Case {
            name: "format version from the future",
            fails_at: Standard,
            expect: "UnsupportedVersion(2)",
            matches: |e| matches!(e, LoadError::UnsupportedVersion(2)),
            loads_at: &[],
            bytes: future_version,
        },
        Case {
            name: "section count larger than the file",
            fails_at: Standard,
            expect: "SectionOutOfBounds{0}",
            matches: |e| matches!(e, LoadError::SectionOutOfBounds { section: 0 }),
            loads_at: &[],
            bytes: runaway_table,
        },
        Case {
            name: "section offset pointing past end of file",
            fails_at: Standard,
            expect: "SectionOutOfBounds{CATALOG}",
            matches: |e| matches!(e, LoadError::SectionOutOfBounds { section } if *section == SEC_CATALOG),
            loads_at: &[],
            bytes: entry_past_eof,
        },
        Case {
            name: "single bit flipped in a payload",
            fails_at: Standard,
            expect: "ChecksumMismatch",
            matches: |e| matches!(e, LoadError::ChecksumMismatch { .. }),
            loads_at: &[],
            bytes: bit_flip,
        },
        Case {
            name: "same section id twice in the table",
            fails_at: Standard,
            expect: "DuplicateSection(CATALOG)",
            matches: |e| matches!(e, LoadError::DuplicateSection(id) if *id == SEC_CATALOG),
            loads_at: &[],
            bytes: duplicate,
        },
        Case {
            name: "STATS section absent",
            fails_at: Standard,
            expect: "MissingSection(STATS)",
            matches: |e| matches!(e, LoadError::MissingSection("STATS")),
            loads_at: &[],
            bytes: missing_stats,
        },
        // Structural payload damage (Standard-level shape checks).
        Case {
            name: "trailing garbage after the last extent tuple",
            fails_at: Standard,
            expect: "Malformed(EXTENTS)",
            matches: |e| matches!(e, LoadError::Malformed { section: "EXTENTS", .. }),
            loads_at: &[],
            bytes: with_section(&db, SEC_EXTENTS, {
                let mut p = extents_payload(dv, 0);
                p.push(0);
                p
            }),
        },
        Case {
            name: "string value indexing beyond the dictionary",
            fails_at: Standard,
            expect: "Malformed(EXTENTS)",
            matches: |e| matches!(e, LoadError::Malformed { section: "EXTENTS", .. }),
            loads_at: &[],
            bytes: with_section(&db, SEC_EXTENTS, extents_payload(dv, 9)),
        },
        Case {
            name: "stored index kind contradicting the catalog",
            fails_at: Standard,
            expect: "Malformed(INDEXES)",
            matches: |e| matches!(e, LoadError::Malformed { section: "INDEXES", .. }),
            loads_at: &[],
            bytes: with_section(
                &db,
                SEC_INDEXES,
                indexes_payload(2, &[(Value::Int(5), &[0, 1]), (Value::Int(7), &[2])]),
            ),
        },
        Case {
            name: "link cardinality contradicting the extents preamble",
            fails_at: Standard,
            expect: "Malformed(LINKS)",
            matches: |e| matches!(e, LoadError::Malformed { section: "LINKS", .. }),
            loads_at: &[],
            bytes: with_section(
                &db,
                SEC_LINKS,
                links_payload(2, 2, &[&[0], &[0, 1]], &[&[0, 1], &[1]]),
            ),
        },
        Case {
            name: "a class's statistics entry missing",
            fails_at: Standard,
            expect: "Malformed(STATS)",
            matches: |e| matches!(e, LoadError::Malformed { section: "STATS", .. }),
            loads_at: &[],
            bytes: with_section(
                &db,
                SEC_STATS,
                stats_payload(&db, |s| {
                    s.classes.pop();
                }),
            ),
        },
        // Semantic invariants (Strict-level; Standard must still load).
        Case {
            name: "index posting out of ascending order",
            fails_at: Strict,
            expect: "UnsortedPosting(INDEXES)",
            matches: |e| matches!(e, LoadError::UnsortedPosting { section: "INDEXES", .. }),
            loads_at: &[Standard],
            bytes: with_section(
                &db,
                SEC_INDEXES,
                indexes_payload(1, &[(Value::Int(5), &[1, 0]), (Value::Int(7), &[2])]),
            ),
        },
        Case {
            name: "index posting naming an object beyond the extent",
            fails_at: Strict,
            expect: "DanglingReference(INDEXES)",
            matches: |e| matches!(e, LoadError::DanglingReference { section: "INDEXES", .. }),
            loads_at: &[Standard],
            bytes: with_section(
                &db,
                SEC_INDEXES,
                indexes_payload(1, &[(Value::Int(5), &[0, 7]), (Value::Int(7), &[2])]),
            ),
        },
        Case {
            name: "index keys out of ascending order",
            fails_at: Strict,
            expect: "UnsortedPosting(INDEXES)",
            matches: |e| matches!(e, LoadError::UnsortedPosting { section: "INDEXES", .. }),
            loads_at: &[Standard],
            bytes: with_section(
                &db,
                SEC_INDEXES,
                indexes_payload(1, &[(Value::Int(7), &[2]), (Value::Int(5), &[0, 1])]),
            ),
        },
        Case {
            name: "empty index posting",
            fails_at: Strict,
            expect: "Malformed(INDEXES)",
            matches: |e| matches!(e, LoadError::Malformed { section: "INDEXES", .. }),
            loads_at: &[Standard],
            bytes: with_section(
                &db,
                SEC_INDEXES,
                indexes_payload(1, &[(Value::Int(5), &[]), (Value::Int(7), &[2])]),
            ),
        },
        Case {
            name: "index key of the wrong type for its attribute",
            fails_at: Strict,
            expect: "Malformed(INDEXES)",
            matches: |e| matches!(e, LoadError::Malformed { section: "INDEXES", .. }),
            loads_at: &[Standard],
            bytes: with_section(
                &db,
                SEC_INDEXES,
                indexes_payload(1, &[(Value::str("5"), &[0, 1]), (Value::Int(7), &[2])]),
            ),
        },
        Case {
            name: "right adjacency list out of canonical order",
            fails_at: Strict,
            expect: "UnsortedPosting(LINKS)",
            matches: |e| matches!(e, LoadError::UnsortedPosting { section: "LINKS", .. }),
            loads_at: &[Standard],
            bytes: with_section(
                &db,
                SEC_LINKS,
                links_payload(3, 2, &[&[0], &[0, 1], &[]], &[&[1, 0], &[1]]),
            ),
        },
        Case {
            name: "link to an object beyond the opposite extent",
            fails_at: Strict,
            expect: "DanglingReference(LINKS)",
            matches: |e| matches!(e, LoadError::DanglingReference { section: "LINKS", .. }),
            loads_at: &[Standard],
            bytes: with_section(
                &db,
                SEC_LINKS,
                links_payload(3, 2, &[&[0], &[0, 5], &[]], &[&[0, 1], &[1]]),
            ),
        },
        Case {
            name: "left and right edge counts disagreeing",
            fails_at: Strict,
            expect: "Malformed(LINKS)",
            matches: |e| matches!(e, LoadError::Malformed { section: "LINKS", .. }),
            loads_at: &[Standard],
            bytes: with_section(
                &db,
                SEC_LINKS,
                links_payload(3, 2, &[&[0], &[0, 1], &[]], &[&[0], &[1]]),
            ),
        },
        Case {
            name: "statistics cardinality contradicting the extent",
            fails_at: Strict,
            expect: "Malformed(STATS)",
            matches: |e| matches!(e, LoadError::Malformed { section: "STATS", .. }),
            loads_at: &[Standard],
            bytes: with_section(
                &db,
                SEC_STATS,
                stats_payload(&db, |s| {
                    s.classes[0].cardinality += 1;
                }),
            ),
        },
        // Re-derivation cross-checks (Audit-level; Strict must still load,
        // because the damage is internally consistent).
        Case {
            name: "index membership swapped between keys",
            fails_at: Audit,
            expect: "AuditMismatch",
            matches: |e| matches!(e, LoadError::AuditMismatch { .. }),
            loads_at: &[Standard, Strict],
            bytes: with_section(
                &db,
                SEC_INDEXES,
                indexes_payload(1, &[(Value::Int(5), &[0]), (Value::Int(7), &[1, 2])]),
            ),
        },
        Case {
            name: "right adjacency sorted but not the canonical rebuild",
            fails_at: Audit,
            expect: "AuditMismatch",
            matches: |e| matches!(e, LoadError::AuditMismatch { .. }),
            loads_at: &[Standard, Strict],
            bytes: with_section(
                &db,
                SEC_LINKS,
                links_payload(3, 2, &[&[0], &[0, 1], &[]], &[&[0, 1], &[0]]),
            ),
        },
        Case {
            name: "statistics internally consistent but drifted from the data",
            fails_at: Audit,
            expect: "AuditMismatch",
            matches: |e| matches!(e, LoadError::AuditMismatch { .. }),
            loads_at: &[Standard, Strict],
            bytes: with_section(
                &db,
                SEC_STATS,
                stats_payload(&db, |s| {
                    s.classes[0].attrs[0].distinct += 1;
                }),
            ),
        },
    ];

    for case in &cases {
        let err = decode_database(&case.bytes, case.fails_at).expect_err(&format!(
            "{}: expected {} at {:?}, but the snapshot loaded",
            case.name, case.expect, case.fails_at
        ));
        assert!(
            (case.matches)(&err),
            "{}: expected {} at {:?}, got {err:?}",
            case.name,
            case.expect,
            case.fails_at
        );
        // Higher levels run every cheaper check too, so the damage must
        // also be rejected (with *some* clean error) above `fails_at`.
        for level in [Standard, Strict, Audit] {
            if level > case.fails_at {
                decode_database(&case.bytes, level).expect_err(&format!(
                    "{}: loaded at {level:?} despite failing at {:?}",
                    case.name, case.fails_at
                ));
            }
        }
        for &level in case.loads_at {
            decode_database(&case.bytes, level).unwrap_or_else(|e| {
                panic!(
                    "{}: documented to degrade gracefully at {level:?}, but got {e:?}",
                    case.name
                )
            });
        }
    }
}
