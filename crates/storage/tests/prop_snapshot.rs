//! Snapshot round-trip oracle: for arbitrary mixed-type mini-databases,
//! `decode_database(encode_database(db), Audit)` must be indistinguishable
//! from the original on **every** read API — extents, hash and B-tree
//! index probes (oids *and* probe counts), link traversals in both
//! directions (exact canonical order), the folded statistics snapshot and
//! the data epoch. Audit is the strictest level, so a pass here also
//! certifies the Standard and Strict ladders on well-formed input; all
//! three levels are exercised anyway, because a snapshot that loads at
//! Audit but not at Standard would mean the ladder is not monotone.

use proptest::prelude::*;
use std::sync::Arc;

use sqo_catalog::{
    AttrId, AttrRef, AttributeDef, Catalog, ClassId, DataType, IndexKind, Multiplicity, RelId,
    RelationshipEnd, Value,
};
use sqo_query::{Bound, ValueSet};
use sqo_snapshot::ValidationLevel;
use sqo_storage::{decode_database, encode_database, Database, IntegrityOptions, ObjectId};

const RELS: usize = 2;

/// Two classes covering every persisted value type and both index kinds,
/// plus a cross relationship and a self relationship for the link tables.
fn catalog() -> Arc<Catalog> {
    let mut b = Catalog::builder();
    let c0 = b
        .class(
            "c0",
            vec![
                AttributeDef::indexed("name", DataType::Str, IndexKind::Hash),
                AttributeDef::indexed("rank", DataType::Int, IndexKind::BTree),
                AttributeDef::new("score", DataType::Float),
            ],
        )
        .unwrap();
    let c1 = b
        .class(
            "c1",
            vec![
                AttributeDef::indexed("key", DataType::Int, IndexKind::Hash),
                AttributeDef::indexed("tag", DataType::Str, IndexKind::BTree),
                AttributeDef::new("flag", DataType::Bool),
            ],
        )
        .unwrap();
    b.relationship(
        "r0",
        RelationshipEnd::new(c0, Multiplicity::Many, false),
        RelationshipEnd::new(c1, Multiplicity::Many, false),
    )
    .unwrap();
    b.relationship(
        "r1",
        RelationshipEnd::new(c1, Multiplicity::Many, false),
        RelationshipEnd::new(c1, Multiplicity::Many, false),
    )
    .unwrap();
    Arc::new(b.build().unwrap())
}

const VOCAB: [&str; 5] = ["alpha", "beta", "gamma", "", "αβ-utf8"];

type Row0 = (i64, usize, i32);
type Row1 = (i64, usize, u32);

fn build(
    catalog: &Arc<Catalog>,
    rows0: &[Row0],
    rows1: &[Row1],
    links: &[(usize, u32, u32)],
) -> Database {
    let mut b = Database::builder(Arc::clone(catalog));
    for &(rank, name, score) in rows0 {
        b.insert(
            ClassId(0),
            vec![
                Value::str(VOCAB[name % VOCAB.len()]),
                Value::Int(rank),
                Value::float(f64::from(score) / 4.0).unwrap(),
            ],
        )
        .unwrap();
    }
    for &(key, tag, flag) in rows1 {
        b.insert(
            ClassId(1),
            vec![Value::Int(key), Value::str(VOCAB[tag % VOCAB.len()]), Value::Bool(flag % 2 == 1)],
        )
        .unwrap();
    }
    for &(rel, l, r) in links {
        let rel = RelId((rel % RELS) as u32);
        let def = catalog.relationship(rel).unwrap();
        let (lcard, rcard) = if def.left.class == ClassId(0) {
            (rows0.len(), rows1.len())
        } else {
            (rows1.len(), rows1.len())
        };
        if lcard == 0 || rcard == 0 {
            continue;
        }
        b.link(rel, ObjectId(l % lcard as u32), ObjectId(r % rcard as u32)).unwrap();
    }
    b.finalize(IntegrityOptions { enforce_total_participation: false, enforce_multiplicity: false })
        .unwrap()
}

/// Every read API must agree, exactly.
fn assert_equivalent(catalog: &Catalog, orig: &Database, loaded: &Database) {
    assert_eq!(orig.data_version(), loaded.data_version(), "data epoch");
    for (cid, cdef) in catalog.classes() {
        assert_eq!(orig.cardinality(cid), loaded.cardinality(cid), "{}", cdef.name);
        for o in 0..orig.cardinality(cid) as u32 {
            assert_eq!(
                orig.tuple(cid, ObjectId(o)).unwrap(),
                loaded.tuple(cid, ObjectId(o)).unwrap(),
                "{} object {o}",
                cdef.name
            );
        }
        for (ai, _) in cdef.attributes.iter().enumerate() {
            let attr = AttrRef::new(cid, AttrId(ai as u32));
            let (Some(ix_orig), Some(ix_loaded)) = (orig.index(attr), loaded.index(attr)) else {
                assert_eq!(orig.index(attr).is_some(), loaded.index(attr).is_some());
                continue;
            };
            assert_eq!(ix_orig.len(), ix_loaded.len(), "{}.{ai} size", cdef.name);
            // Probe with every value that exists plus one that does not.
            let mut probes: Vec<Value> = (0..orig.cardinality(cid) as u32)
                .map(|o| orig.value(attr, ObjectId(o)).unwrap().clone())
                .collect();
            probes.push(Value::str("no-such-value"));
            probes.push(Value::Int(i64::MIN));
            for v in &probes {
                assert_eq!(
                    ix_orig.probe_eq(v),
                    ix_loaded.probe_eq(v),
                    "{}.{ai} = {v:?}",
                    cdef.name
                );
            }
            for lo in [Value::Int(-1), Value::Int(2), Value::str("b")] {
                let set = ValueSet::Range { lo: Bound::Included(lo.clone()), hi: Bound::Unbounded };
                match (ix_orig.probe(&set), ix_loaded.probe(&set)) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.oids, b.oids, "{}.{ai} >= {lo:?}", cdef.name);
                        assert_eq!(a.probes, b.probes, "{}.{ai} >= {lo:?}", cdef.name);
                    }
                    (a, b) => assert_eq!(a.is_some(), b.is_some()),
                }
            }
        }
    }
    for (rel, def) in catalog.relationships() {
        assert_eq!(orig.links(rel).link_count(), loaded.links(rel).link_count());
        for o in 0..orig.cardinality(def.left.class) as u32 {
            assert_eq!(
                orig.traverse(rel, def.left.class, ObjectId(o)).unwrap(),
                loaded.traverse(rel, def.left.class, ObjectId(o)).unwrap(),
                "{} from left {o}",
                def.name
            );
        }
        for o in 0..orig.cardinality(def.right.class) as u32 {
            assert_eq!(
                orig.links(rel).from_right(ObjectId(o)),
                loaded.links(rel).from_right(ObjectId(o)),
                "{} from right {o}",
                def.name
            );
        }
    }
    assert_eq!(orig.stats(), loaded.stats(), "statistics snapshots diverged");
    assert_eq!(
        loaded.stats(),
        &loaded.rebuild_statistics(),
        "loaded stats != from-scratch rescan of the loaded extents"
    );
}

proptest! {
    #[test]
    fn snapshot_roundtrips_at_every_level(
        rows0 in prop::collection::vec((-3i64..5, 0usize..8, -8i32..8), 0..7),
        rows1 in prop::collection::vec((-3i64..5, 0usize..8, 0u32..2), 0..7),
        links in prop::collection::vec((0..RELS, 0u32..16, 0u32..16), 0..10),
    ) {
        let catalog = catalog();
        let db = build(&catalog, &rows0, &rows1, &links);
        let bytes = encode_database(&db);
        for level in [ValidationLevel::Standard, ValidationLevel::Strict, ValidationLevel::Audit] {
            let loaded = decode_database(&bytes, level)
                .unwrap_or_else(|e| panic!("well-formed snapshot rejected at {level:?}: {e}"));
            assert_equivalent(&catalog, &db, &loaded);
        }
    }
}

/// The data epoch survives the round trip: a written-to snapshot loads
/// back with the successor's epoch, not zero.
#[test]
fn data_epoch_survives_round_trip() {
    let catalog = catalog();
    let db = build(&catalog, &[(1, 0, 4)], &[(2, 1, 1)], &[(0, 0, 0)]);
    let batch = vec![sqo_storage::DataWrite::Update {
        class: ClassId(0),
        object: ObjectId(0),
        attr: AttrId(1),
        value: Value::Int(9),
    }];
    let (next, _) = db.with_writes(&batch, None).unwrap();
    assert_ne!(next.data_version(), db.data_version());
    let loaded = decode_database(&encode_database(&next), ValidationLevel::Audit).unwrap();
    assert_eq!(loaded.data_version(), next.data_version());
    assert_eq!(
        loaded.value(AttrRef::new(ClassId(0), AttrId(1)), ObjectId(0)).unwrap(),
        &Value::Int(9)
    );
}
