//! Object identifiers and tuples at rest.

use std::fmt;

/// Class-local object identifier: the position of the object in its class
/// extent. `(ClassId, ObjectId)` is globally unique within a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl ObjectId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_ordering() {
        assert!(ObjectId(1) < ObjectId(2));
        assert_eq!(ObjectId(7).index(), 7);
        assert_eq!(ObjectId(7).to_string(), "o7");
    }
}
