//! Storage-layer errors.

use std::fmt;

use sqo_catalog::{AttrId, CatalogError, ClassId, RelId};

use crate::object::ObjectId;

/// Errors raised while loading or validating a database instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    Catalog(CatalogError),
    /// Tuple arity differs from the class's attribute count.
    ArityMismatch {
        class: ClassId,
        expected: usize,
        got: usize,
    },
    /// Tuple value type differs from the attribute declaration.
    TypeMismatch {
        class: ClassId,
        attr: usize,
        context: String,
    },
    UnknownObject {
        class: ClassId,
        object: ObjectId,
    },
    /// An update targeted an attribute the class does not declare.
    UnknownAttribute {
        class: ClassId,
        attr: AttrId,
    },
    /// A link references a class that is not an endpoint of the relationship.
    LinkClassMismatch {
        rel: RelId,
    },
    /// Referential integrity: an end declared `total` has unlinked objects.
    TotalParticipationViolated {
        rel: RelId,
        class: ClassId,
        object: ObjectId,
    },
    /// A to-one end carries more than one link for an object.
    MultiplicityViolated {
        rel: RelId,
        class: ClassId,
        object: ObjectId,
        links: usize,
    },
    /// An unlink targeted a link edge that does not exist.
    LinkNotFound {
        rel: RelId,
        left: ObjectId,
        right: ObjectId,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Catalog(e) => write!(f, "catalog error: {e}"),
            StorageError::ArityMismatch { class, expected, got } => {
                write!(f, "{class}: tuple has {got} values, class declares {expected}")
            }
            StorageError::TypeMismatch { class, attr, context } => {
                write!(f, "{class} attribute {attr}: {context}")
            }
            StorageError::UnknownObject { class, object } => {
                write!(f, "{class} has no object {object}")
            }
            StorageError::UnknownAttribute { class, attr } => {
                write!(f, "{class} declares no attribute {attr}")
            }
            StorageError::LinkClassMismatch { rel } => {
                write!(f, "link endpoints do not match {rel}")
            }
            StorageError::TotalParticipationViolated { rel, class, object } => {
                write!(f, "{class} {object} must participate in {rel} (declared total)")
            }
            StorageError::MultiplicityViolated { rel, class, object, links } => {
                write!(f, "{class} {object} has {links} links in {rel}, but the end is to-one")
            }
            StorageError::LinkNotFound { rel, left, right } => {
                write!(f, "no {rel} link between {left} and {right}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Catalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for StorageError {
    fn from(e: CatalogError) -> Self {
        StorageError::Catalog(e)
    }
}
