//! Database snapshot persistence: encoding a [`Database`] into `.sqos`
//! sections and loading one back through the tiered validation API.
//!
//! Five sections carry the database state (`docs/FORMAT.md` §3):
//! CATALOG (schema definitions), EXTENTS (tuples + data epoch), LINKS
//! (canonical-order adjacency), INDEXES (ascending-oid postings) and STATS
//! (the folded statistics snapshot). Loading runs the level the caller
//! picked — [`ValidationLevel::Standard`] container/shape checks,
//! [`ValidationLevel::Strict`] semantic invariants, or
//! [`ValidationLevel::Audit`] full re-derivation cross-checks
//! (`docs/VALIDATION.md` specifies the exact split) — and fails with a
//! clean [`LoadError`] rather than ever constructing a corrupt snapshot.

#![deny(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;

use sqo_catalog::{Catalog, ClassId, DataType, Finite, IndexKind, StatsSnapshot, Value};
use sqo_snapshot::{
    read_catalog, read_stats, read_value_pooled, section_name, write_catalog, write_stats,
    write_value, write_value_raw, ByteReader, ByteWriter, LoadError, SnapshotBuilder, SnapshotFile,
    StrPool, ValidationLevel, SEC_CATALOG, SEC_EXTENTS, SEC_INDEXES, SEC_LINKS, SEC_STATS,
};

use crate::db::{self, Database, Extent};
use crate::index::{AttrIndex, OrdValue};
use crate::links::RelLinks;
use crate::object::ObjectId;

// ---- encoding -------------------------------------------------------------

/// Encodes the EXTENTS payload: the data epoch and every class cardinality
/// up front (the *preamble*), then the string dictionary, then each
/// class's tuples in object-id order. The preamble exists so a loader can
/// learn every cardinality — which the LINKS, INDEXES and STATS decoders
/// validate against — without parsing a single tuple, unlocking
/// section-parallel decoding.
///
/// Tuple values are written *untagged*: arity and per-attribute type are
/// both implied by the catalog, so each value is payload bytes only.
/// String values are a `u32` index into the dictionary (first-appearance
/// order), so each distinct string is stored — and, on load, allocated —
/// exactly once no matter how often the extents repeat it.
fn encode_extents(db: &Database) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(db.data_version());
    w.u32(db.extent_shards().len() as u32);
    for extent in db.extent_shards() {
        w.u32(extent.len() as u32);
    }
    let mut dict: HashMap<&str, u32> = HashMap::new();
    let mut dict_order: Vec<&str> = Vec::new();
    for extent in db.extent_shards() {
        for tuple in extent.iter() {
            for v in tuple {
                if let Value::Str(s) = v {
                    dict.entry(s.as_ref()).or_insert_with(|| {
                        dict_order.push(s.as_ref());
                        dict_order.len() as u32 - 1
                    });
                }
            }
        }
    }
    w.u32(dict_order.len() as u32);
    for s in &dict_order {
        w.str(s);
    }
    for ((_, cdef), extent) in db.catalog().classes().zip(db.extent_shards()) {
        for tuple in extent.iter() {
            for (v, adef) in tuple.iter().zip(&cdef.attributes) {
                debug_assert_eq!(v.data_type(), adef.ty, "extent value drifted from its schema");
                match v {
                    Value::Str(s) => w.u32(dict[s.as_ref()]),
                    other => write_value_raw(&mut w, other),
                }
            }
        }
    }
    w.finish()
}

/// Encodes the LINKS payload: per relationship, both adjacency directions
/// in canonical order.
fn encode_links(db: &Database) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(db.link_shards().len() as u32);
    for lk in db.link_shards() {
        w.u32(lk.left_cardinality() as u32);
        w.u32(lk.right_cardinality() as u32);
        for side in [true, false] {
            let cardinality = if side { lk.left_cardinality() } else { lk.right_cardinality() };
            for o in 0..cardinality as u32 {
                let list =
                    if side { lk.from_left(ObjectId(o)) } else { lk.from_right(ObjectId(o)) };
                w.u32(list.len() as u32);
                for n in list {
                    w.u32(n.0);
                }
            }
        }
    }
    w.finish()
}

/// Encodes the INDEXES payload. Hash-index entries are sorted by
/// [`OrdValue`] so the encoding is a pure function of the logical index
/// content (B-tree entries already iterate in key order).
fn encode_indexes(db: &Database) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(db.index_shards().len() as u32);
    for bank in db.index_shards() {
        w.u32(bank.len() as u32);
        for slot in bank.iter() {
            match slot {
                None => w.u8(0),
                Some(ix) => {
                    w.u8(match ix.kind() {
                        IndexKind::Hash => 1,
                        IndexKind::BTree => 2,
                    });
                    let entries: Vec<(&sqo_catalog::Value, &Vec<ObjectId>)> = match ix {
                        AttrIndex::Hash(m) => {
                            let mut e: Vec<_> = m.iter().collect();
                            e.sort_by_key(|(v, _)| OrdValue((*v).clone()));
                            e
                        }
                        AttrIndex::BTree(m) => m.iter().map(|(k, v)| (&k.0, v)).collect(),
                    };
                    w.u32(entries.len() as u32);
                    for (value, posting) in entries {
                        write_value(&mut w, value);
                        w.u32(posting.len() as u32);
                        for o in posting {
                            w.u32(o.0);
                        }
                    }
                }
            }
        }
    }
    w.finish()
}

/// The five database sections, ready for a [`SnapshotBuilder`]. Callers
/// that persist more than the database (e.g. the serving layer) append
/// their own sections before finishing the container.
pub fn database_sections(db: &Database) -> Vec<(u32, Vec<u8>)> {
    let mut catalog = ByteWriter::new();
    write_catalog(&mut catalog, db.catalog());
    let mut stats = ByteWriter::new();
    write_stats(&mut stats, db.stats());
    vec![
        (SEC_CATALOG, catalog.finish()),
        (SEC_EXTENTS, encode_extents(db)),
        (SEC_LINKS, encode_links(db)),
        (SEC_INDEXES, encode_indexes(db)),
        (SEC_STATS, stats.finish()),
    ]
}

/// Encodes `db` into a complete `.sqos` byte image (database sections
/// only).
pub fn encode_database(db: &Database) -> Vec<u8> {
    let mut b = SnapshotBuilder::new();
    for (id, payload) in database_sections(db) {
        b.section(id, payload);
    }
    b.finish()
}

/// Writes `db` to `path` as a `.sqos` file.
///
/// # Errors
/// [`LoadError::Io`] when the file cannot be written.
pub fn save_database(db: &Database, path: impl AsRef<Path>) -> Result<(), LoadError> {
    std::fs::write(path, encode_database(db))?;
    Ok(())
}

// ---- decoding -------------------------------------------------------------

fn malformed(section: u32, detail: impl Into<String>) -> LoadError {
    LoadError::Malformed { section: section_name(section), detail: detail.into() }
}

fn decode_catalog(file: &SnapshotFile<'_>) -> Result<Arc<Catalog>, LoadError> {
    let mut r = file.require(SEC_CATALOG)?;
    let (classes, relationships) = read_catalog(&mut r)?;
    r.expect_exhausted()?;
    let catalog = Catalog::from_parts(classes, relationships)
        .map_err(|e| malformed(SEC_CATALOG, format!("catalog rejected: {e:?}")))?;
    Ok(Arc::new(catalog))
}

/// Reads the EXTENTS preamble — data epoch and per-class cardinalities —
/// leaving `r` positioned at the first tuple. The cardinalities are what
/// every other database section validates against, so reading them first
/// lets LINKS/INDEXES/STATS decode in parallel with the tuples.
fn read_extent_preamble(
    r: &mut ByteReader<'_>,
    catalog: &Catalog,
) -> Result<(u64, Vec<usize>), LoadError> {
    let data_version = r.u64()?;
    let class_count = r.count()?;
    if class_count != catalog.class_count() {
        return Err(malformed(
            SEC_EXTENTS,
            format!("{class_count} extents for {} classes", catalog.class_count()),
        ));
    }
    let mut cards = Vec::with_capacity(class_count);
    for _ in 0..class_count {
        cards.push(r.u32()? as usize);
    }
    Ok((data_version, cards))
}

/// Decodes the string dictionary and tuples that follow the EXTENTS
/// preamble. Values are untagged — each is read as the type the catalog
/// declares for its attribute, so extent tuples type-check by construction
/// at every level — and string values are dictionary indexes, so repeats
/// cost one `Arc` clone rather than an allocation.
fn decode_extent_tuples(
    r: &mut ByteReader<'_>,
    catalog: &Catalog,
    cards: &[usize],
) -> Result<Vec<Arc<Extent>>, LoadError> {
    let dict_count = r.count()?;
    // Pre-allocations bounded by the bytes actually present: a hostile
    // count cannot drive a huge reservation.
    let mut dict: Vec<Arc<str>> = Vec::with_capacity(dict_count.min(r.remaining()));
    for _ in 0..dict_count {
        dict.push(Arc::from(r.str_ref()?));
    }
    let mut extents = Vec::with_capacity(cards.len());
    for (cid, cdef) in catalog.classes() {
        let cardinality = cards[cid.index()];
        let mut extent: Extent = Vec::with_capacity(cardinality.min(r.remaining()));
        for _ in 0..cardinality {
            let mut tuple = Vec::with_capacity(cdef.attributes.len());
            for adef in &cdef.attributes {
                let v = match adef.ty {
                    DataType::Int => Value::Int(r.i64()?),
                    DataType::Float => {
                        let f = r.f64()?;
                        Finite::new(f)
                            .map(Value::Float)
                            .ok_or_else(|| r.malformed("NaN float value"))?
                    }
                    DataType::Str => {
                        let ix = r.u32()? as usize;
                        let s = dict.get(ix).ok_or_else(|| {
                            malformed(
                                SEC_EXTENTS,
                                format!(
                                    "string index {ix} beyond the {}-entry dictionary",
                                    dict.len()
                                ),
                            )
                        })?;
                        Value::Str(Arc::clone(s))
                    }
                    DataType::Bool => match r.u8()? {
                        0 => Value::Bool(false),
                        1 => Value::Bool(true),
                        b => return Err(r.malformed(format!("bool byte {b} is neither 0 nor 1"))),
                    },
                };
                tuple.push(v);
            }
            extent.push(tuple);
        }
        extents.push(Arc::new(extent));
    }
    r.expect_exhausted()?;
    Ok(extents)
}

/// Decodes one adjacency direction: `cardinality` lists of object ids.
fn decode_adjacency(
    r: &mut ByteReader<'_>,
    cardinality: usize,
) -> Result<Vec<Vec<ObjectId>>, LoadError> {
    let mut lists = Vec::with_capacity(cardinality);
    for _ in 0..cardinality {
        let n = r.count()?;
        let mut list = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            list.push(ObjectId(r.u32()?));
        }
        lists.push(list);
    }
    Ok(lists)
}

fn decode_links(
    file: &SnapshotFile<'_>,
    catalog: &Catalog,
    cards: &[usize],
    level: ValidationLevel,
) -> Result<Vec<Arc<RelLinks>>, LoadError> {
    let mut r = file.require(SEC_LINKS)?;
    let rel_count = r.count()?;
    if rel_count != catalog.relationship_count() {
        return Err(malformed(
            SEC_LINKS,
            format!("{rel_count} link tables for {} relationships", catalog.relationship_count()),
        ));
    }
    let mut links = Vec::with_capacity(rel_count);
    for (_, def) in catalog.relationships() {
        let left_card = r.u32()? as usize;
        let right_card = r.u32()? as usize;
        let expect_left = cards[def.left.class.index()];
        let expect_right = cards[def.right.class.index()];
        if left_card != expect_left || right_card != expect_right {
            return Err(malformed(
                SEC_LINKS,
                format!(
                    "relationship {}: cardinalities {left_card}/{right_card} but extents have \
                     {expect_left}/{expect_right}",
                    def.name
                ),
            ));
        }
        let left = decode_adjacency(&mut r, left_card)?;
        let right = decode_adjacency(&mut r, right_card)?;
        if level.at_least_strict() {
            strict_check_links(def, &left, &right, left_card, right_card)?;
        }
        if level.is_audit() {
            // Rebuild the canonical table from the left lists alone and
            // require bit-identity — catches any inconsistent or
            // non-canonical right side that passed the order checks.
            let mut rebuilt = RelLinks::new(left_card, right_card);
            for (l, rs) in left.iter().enumerate() {
                for &o in rs {
                    rebuilt.add(ObjectId(l as u32), o);
                }
            }
            rebuilt.canonicalize();
            let decoded = RelLinks::from_adjacency(left.clone(), right.clone());
            if rebuilt != decoded {
                return Err(LoadError::AuditMismatch {
                    detail: format!(
                        "relationship {}: right adjacency differs from canonical rebuild",
                        def.name
                    ),
                });
            }
        }
        links.push(Arc::new(RelLinks::from_adjacency(left, right)));
    }
    r.expect_exhausted()?;
    Ok(links)
}

/// Strict-level link invariants: every oid in range, right lists in
/// canonical (non-decreasing left-id) order, edge counts bidirectionally
/// consistent.
fn strict_check_links(
    def: &sqo_catalog::RelationshipDef,
    left: &[Vec<ObjectId>],
    right: &[Vec<ObjectId>],
    left_card: usize,
    right_card: usize,
) -> Result<(), LoadError> {
    for (l, list) in left.iter().enumerate() {
        for o in list {
            if o.index() >= right_card {
                return Err(LoadError::DanglingReference {
                    section: section_name(SEC_LINKS),
                    detail: format!(
                        "relationship {}: left object {l} links right object {} of {right_card}",
                        def.name, o.0
                    ),
                });
            }
        }
    }
    for (ro, list) in right.iter().enumerate() {
        let mut prev: Option<u32> = None;
        for o in list {
            if o.index() >= left_card {
                return Err(LoadError::DanglingReference {
                    section: section_name(SEC_LINKS),
                    detail: format!(
                        "relationship {}: right object {ro} links left object {} of {left_card}",
                        def.name, o.0
                    ),
                });
            }
            if let Some(p) = prev {
                if o.0 < p {
                    return Err(LoadError::UnsortedPosting {
                        section: section_name(SEC_LINKS),
                        detail: format!(
                            "relationship {}: right object {ro}'s list goes {p} then {}",
                            def.name, o.0
                        ),
                    });
                }
            }
            prev = Some(o.0);
        }
    }
    let left_edges: usize = left.iter().map(|l| l.len()).sum();
    let right_edges: usize = right.iter().map(|l| l.len()).sum();
    if left_edges != right_edges {
        return Err(LoadError::Malformed {
            section: section_name(SEC_LINKS),
            detail: format!(
                "relationship {}: {left_edges} left edges but {right_edges} right edges",
                def.name
            ),
        });
    }
    Ok(())
}

fn decode_indexes(
    file: &SnapshotFile<'_>,
    catalog: &Catalog,
    cards: &[usize],
    level: ValidationLevel,
) -> Result<Vec<Arc<Vec<Option<AttrIndex>>>>, LoadError> {
    let mut r = file.require(SEC_INDEXES)?;
    let class_count = r.count()?;
    if class_count != catalog.class_count() {
        return Err(malformed(
            SEC_INDEXES,
            format!("{class_count} index banks for {} classes", catalog.class_count()),
        ));
    }
    let mut banks = Vec::with_capacity(class_count);
    let mut pool = StrPool::new();
    for (cid, cdef) in catalog.classes() {
        let attr_count = r.count()?;
        if attr_count != cdef.attributes.len() {
            return Err(malformed(
                SEC_INDEXES,
                format!(
                    "class {}: {attr_count} index slots for {} attributes",
                    cdef.name,
                    cdef.attributes.len()
                ),
            ));
        }
        let cardinality = cards[cid.index()];
        let mut bank: Vec<Option<AttrIndex>> = Vec::with_capacity(attr_count);
        for adef in &cdef.attributes {
            let tag = r.u8()?;
            let kind = match tag {
                0 => None,
                1 => Some(IndexKind::Hash),
                2 => Some(IndexKind::BTree),
                t => return Err(malformed(SEC_INDEXES, format!("unknown index tag {t}"))),
            };
            if kind != adef.index {
                return Err(malformed(
                    SEC_INDEXES,
                    format!(
                        "class {} attr {}: stored index {kind:?} but catalog declares {:?}",
                        cdef.name, adef.name, adef.index
                    ),
                ));
            }
            let Some(kind) = kind else {
                bank.push(None);
                continue;
            };
            let entry_count = r.count()?;
            let mut index = match kind {
                IndexKind::Hash => AttrIndex::Hash(HashMap::with_capacity(entry_count.min(1024))),
                IndexKind::BTree => AttrIndex::BTree(BTreeMap::new()),
            };
            let mut prev_key: Option<OrdValue> = None;
            for _ in 0..entry_count {
                let value = read_value_pooled(&mut r, &mut pool)?;
                let posting_count = r.count()?;
                let mut posting = Vec::with_capacity(posting_count.min(1024));
                let mut prev: Option<u32> = None;
                for _ in 0..posting_count {
                    let o = r.u32()?;
                    if level.at_least_strict() {
                        if o as usize >= cardinality {
                            return Err(LoadError::DanglingReference {
                                section: section_name(SEC_INDEXES),
                                detail: format!(
                                    "class {} attr {}: posting names object {o} of {cardinality}",
                                    cdef.name, adef.name
                                ),
                            });
                        }
                        if let Some(p) = prev {
                            if o <= p {
                                return Err(LoadError::UnsortedPosting {
                                    section: section_name(SEC_INDEXES),
                                    detail: format!(
                                        "class {} attr {}: posting goes {p} then {o}",
                                        cdef.name, adef.name
                                    ),
                                });
                            }
                        }
                    }
                    prev = Some(o);
                    posting.push(ObjectId(o));
                }
                if level.at_least_strict() {
                    if value.data_type() != adef.ty {
                        return Err(malformed(
                            SEC_INDEXES,
                            format!(
                                "class {} attr {}: {:?} key for a {:?} attribute",
                                cdef.name,
                                adef.name,
                                value.data_type(),
                                adef.ty
                            ),
                        ));
                    }
                    if posting.is_empty() {
                        return Err(malformed(
                            SEC_INDEXES,
                            format!(
                                "class {} attr {}: empty posting (keys drop with their last \
                                 entry)",
                                cdef.name, adef.name
                            ),
                        ));
                    }
                    let key = OrdValue(value.clone());
                    if let Some(p) = &prev_key {
                        if key <= *p {
                            return Err(LoadError::UnsortedPosting {
                                section: section_name(SEC_INDEXES),
                                detail: format!(
                                    "class {} attr {}: index keys out of ascending order",
                                    cdef.name, adef.name
                                ),
                            });
                        }
                    }
                    prev_key = Some(key);
                }
                match &mut index {
                    AttrIndex::Hash(m) => {
                        m.insert(value, posting);
                    }
                    AttrIndex::BTree(m) => {
                        m.insert(OrdValue(value), posting);
                    }
                }
            }
            bank.push(Some(index));
        }
        banks.push(Arc::new(bank));
    }
    r.expect_exhausted()?;
    Ok(banks)
}

fn decode_stats(
    file: &SnapshotFile<'_>,
    catalog: &Catalog,
    cards: &[usize],
    level: ValidationLevel,
) -> Result<StatsSnapshot, LoadError> {
    let mut r = file.require(SEC_STATS)?;
    let stats = read_stats(&mut r)?;
    r.expect_exhausted()?;
    if stats.classes.len() != catalog.class_count()
        || stats.relationships.len() != catalog.relationship_count()
    {
        return Err(malformed(
            SEC_STATS,
            format!(
                "{} class / {} relationship stats for a {}-class, {}-relationship catalog",
                stats.classes.len(),
                stats.relationships.len(),
                catalog.class_count(),
                catalog.relationship_count()
            ),
        ));
    }
    if level.at_least_strict() {
        for (c, cs) in stats.classes.iter().enumerate() {
            let actual = cards[c] as u64;
            if cs.cardinality != actual {
                return Err(malformed(
                    SEC_STATS,
                    format!(
                        "class {c}: stats cardinality {} but extent holds {actual}",
                        cs.cardinality
                    ),
                ));
            }
        }
    }
    Ok(stats)
}

/// Payload volume above which [`decode_database_from`] decodes the
/// independent sections on scoped worker threads. Below it the thread
/// spawns cost more than the decode; above it the three big sections
/// (EXTENTS tuples, LINKS, INDEXES) overlap instead of queueing.
const PARALLEL_DECODE_BYTES: usize = 64 * 1024;

/// Decodes a database from an already-parsed snapshot container, running
/// `level`'s checks. Exposed so callers that bundle additional sections in
/// the same file (the serving layer) parse the container once.
///
/// The EXTENTS preamble (data epoch + per-class cardinalities) is read
/// first; every other database section validates only against the catalog
/// and those cardinalities, so on large snapshots the tuple, link and
/// index decoders run on parallel scoped threads.
///
/// # Errors
/// Any [`LoadError`]; see `docs/VALIDATION.md` for which level raises what.
pub fn decode_database_from(
    file: &SnapshotFile<'_>,
    level: ValidationLevel,
) -> Result<Database, LoadError> {
    let catalog = decode_catalog(file)?;
    let mut er = file.require(SEC_EXTENTS)?;
    let (data_version, cards) = read_extent_preamble(&mut er, &catalog)?;
    let payload_bytes: usize = [SEC_EXTENTS, SEC_LINKS, SEC_INDEXES]
        .iter()
        .filter_map(|&id| file.section(id))
        .map(<[u8]>::len)
        .sum();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (extents, links, indexes, stats) = if cores > 1 && payload_bytes >= PARALLEL_DECODE_BYTES {
        let (catalog, cards) = (&catalog, &cards);
        std::thread::scope(|s| {
            let links = s.spawn(move || decode_links(file, catalog, cards, level));
            let indexes = s.spawn(move || decode_indexes(file, catalog, cards, level));
            let stats = s.spawn(move || decode_stats(file, catalog, cards, level));
            let extents = decode_extent_tuples(&mut er, catalog, cards);
            let links = links.join().expect("link decoder thread panicked");
            let indexes = indexes.join().expect("index decoder thread panicked");
            let stats = stats.join().expect("stats decoder thread panicked");
            Result::<_, LoadError>::Ok((extents?, links?, indexes?, stats?))
        })?
    } else {
        (
            decode_extent_tuples(&mut er, &catalog, &cards)?,
            decode_links(file, &catalog, &cards, level)?,
            decode_indexes(file, &catalog, &cards, level)?,
            decode_stats(file, &catalog, &cards, level)?,
        )
    };
    if level.is_audit() {
        let rebuilt = db::build_indexes(&catalog, &extents);
        for (c, (got, want)) in indexes.iter().zip(rebuilt.iter()).enumerate() {
            if **got != **want {
                return Err(LoadError::AuditMismatch {
                    detail: format!(
                        "class {}: persisted indexes differ from an extent-scan rebuild",
                        catalog.class_name(ClassId(c as u32))
                    ),
                });
            }
        }
        let restats = db::build_statistics(&catalog, &extents, &links);
        if restats != stats {
            return Err(LoadError::AuditMismatch {
                detail: "persisted statistics differ from a from-scratch rebuild".to_string(),
            });
        }
    }
    Ok(Database::from_loaded_parts(catalog, extents, indexes, links, stats, data_version))
}

/// Parses `bytes` as a `.sqos` container and decodes the database at
/// `level`.
///
/// # Errors
/// Any [`LoadError`].
pub fn decode_database(bytes: &[u8], level: ValidationLevel) -> Result<Database, LoadError> {
    let file = SnapshotFile::parse(bytes)?;
    decode_database_from(&file, level)
}

/// Reads and decodes a `.sqos` file at `level`.
///
/// # Errors
/// [`LoadError::Io`] on filesystem failures, any other [`LoadError`] on a
/// bad file.
pub fn load_database(
    path: impl AsRef<Path>,
    level: ValidationLevel,
) -> Result<Database, LoadError> {
    let bytes = std::fs::read(path)?;
    decode_database(&bytes, level)
}
