//! Attribute indexes: hash (equality) and B-tree (equality + range).
//!
//! Values within one index are homogeneous (one attribute, one type), but
//! Rust's `BTreeMap` needs a total order over the key type, so [`OrdValue`]
//! extends `Value`'s within-type order with a type-discriminant tiebreak.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound as StdBound;

use sqo_catalog::{IndexKind, Value};
use sqo_query::{Bound, ValueSet};

use crate::object::ObjectId;

/// Total-order wrapper for `Value` (type discriminant first, then value).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrdValue(pub Value);

impl OrdValue {
    fn rank(&self) -> u8 {
        match self.0 {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.0.compare(&other.0) {
            Some(o) => o,
            None => self.rank().cmp(&other.rank()),
        }
    }
}

/// A secondary index over one attribute of one class.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrIndex {
    Hash(HashMap<Value, Vec<ObjectId>>),
    BTree(BTreeMap<OrdValue, Vec<ObjectId>>),
}

impl AttrIndex {
    pub fn new(kind: IndexKind) -> Self {
        match kind {
            IndexKind::Hash => AttrIndex::Hash(HashMap::new()),
            IndexKind::BTree => AttrIndex::BTree(BTreeMap::new()),
        }
    }

    pub fn kind(&self) -> IndexKind {
        match self {
            AttrIndex::Hash(_) => IndexKind::Hash,
            AttrIndex::BTree(_) => IndexKind::BTree,
        }
    }

    pub fn insert(&mut self, value: Value, oid: ObjectId) {
        match self {
            AttrIndex::Hash(m) => m.entry(value).or_default().push(oid),
            AttrIndex::BTree(m) => m.entry(OrdValue(value)).or_default().push(oid),
        }
    }

    /// Inserts `oid` into `value`'s posting at its sorted position, so
    /// incrementally patched indexes keep the ascending-oid posting order a
    /// from-scratch extent scan produces. (Plain [`AttrIndex::insert`] is the
    /// bulk-load path: oids arrive ascending and append.)
    pub fn insert_sorted(&mut self, value: Value, oid: ObjectId) {
        let posting = match self {
            AttrIndex::Hash(m) => m.entry(value).or_default(),
            AttrIndex::BTree(m) => m.entry(OrdValue(value)).or_default(),
        };
        let at = posting.partition_point(|o| o.index() < oid.index());
        posting.insert(at, oid);
    }

    /// Removes `oid` from `value`'s posting; empty postings drop their key
    /// (so range probes of a patched index touch exactly the entries a
    /// rebuilt index would). Returns `false` when the entry was absent.
    pub fn remove(&mut self, value: &Value, oid: ObjectId) -> bool {
        match self {
            AttrIndex::Hash(m) => {
                let Some(posting) = m.get_mut(value) else { return false };
                let Some(at) = posting.iter().position(|&o| o == oid) else { return false };
                posting.remove(at);
                if posting.is_empty() {
                    m.remove(value);
                }
                true
            }
            AttrIndex::BTree(m) => {
                let key = OrdValue(value.clone());
                let Some(posting) = m.get_mut(&key) else { return false };
                let Some(at) = posting.iter().position(|&o| o == oid) else { return false };
                posting.remove(at);
                if posting.is_empty() {
                    m.remove(&key);
                }
                true
            }
        }
    }

    /// Equality probe; both index kinds support it.
    pub fn probe_eq(&self, value: &Value) -> &[ObjectId] {
        match self {
            AttrIndex::Hash(m) => m.get(value).map(|v| v.as_slice()).unwrap_or(&[]),
            AttrIndex::BTree(m) => {
                m.get(&OrdValue(value.clone())).map(|v| v.as_slice()).unwrap_or(&[])
            }
        }
    }

    /// Whether this index can serve `set` at all.
    pub fn supports(&self, set: &ValueSet) -> bool {
        match (self, set) {
            (_, ValueSet::Range { lo: Bound::Included(a), hi: Bound::Included(b) })
                if matches!(a.compare(b), Some(Ordering::Equal)) =>
            {
                true // point probe, fine for both kinds
            }
            (AttrIndex::Hash(_), _) => false,
            (AttrIndex::BTree(_), ValueSet::Hole(_)) => false,
            (AttrIndex::BTree(_), ValueSet::Range { .. }) => true,
        }
    }

    /// Probes the index with a value set; `None` when unsupported.
    /// The returned `probes` count feeds the page-cost model.
    pub fn probe(&self, set: &ValueSet) -> Option<IndexScanResult> {
        match set {
            ValueSet::Range { lo: Bound::Included(a), hi: Bound::Included(b) }
                if matches!(a.compare(b), Some(Ordering::Equal)) =>
            {
                Some(IndexScanResult { oids: self.probe_eq(a).to_vec(), probes: 1 })
            }
            ValueSet::Range { lo, hi } => match self {
                AttrIndex::Hash(_) => None,
                AttrIndex::BTree(m) => {
                    let to_std = |b: &Bound, _lower: bool| -> StdBound<OrdValue> {
                        match b {
                            Bound::Unbounded => StdBound::Unbounded,
                            Bound::Included(v) => StdBound::Included(OrdValue(v.clone())),
                            Bound::Excluded(v) => StdBound::Excluded(OrdValue(v.clone())),
                        }
                    };
                    let lo = to_std(lo, true);
                    let hi = to_std(hi, false);
                    // Guard against inverted ranges, which BTreeMap panics on.
                    if range_is_inverted(&lo, &hi) {
                        return Some(IndexScanResult { oids: vec![], probes: 1 });
                    }
                    let mut oids = Vec::new();
                    let mut probes = 1u64; // root-to-leaf descent
                    for (_, v) in m.range((lo, hi)) {
                        probes += 1; // leaf entry touch
                        oids.extend_from_slice(v);
                    }
                    Some(IndexScanResult { oids, probes })
                }
            },
            ValueSet::Hole(_) => None,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            AttrIndex::Hash(m) => m.values().map(|v| v.len()).sum(),
            AttrIndex::BTree(m) => m.values().map(|v| v.len()).sum(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn range_is_inverted(lo: &StdBound<OrdValue>, hi: &StdBound<OrdValue>) -> bool {
    let (StdBound::Included(l) | StdBound::Excluded(l)) = lo else {
        return false;
    };
    let (StdBound::Included(h) | StdBound::Excluded(h)) = hi else {
        return false;
    };
    match l.cmp(h) {
        Ordering::Greater => true,
        Ordering::Equal => {
            matches!(lo, StdBound::Excluded(_)) || matches!(hi, StdBound::Excluded(_))
        }
        Ordering::Less => false,
    }
}

/// Outcome of an index probe.
#[derive(Debug, Clone)]
pub struct IndexScanResult {
    pub oids: Vec<ObjectId>,
    /// Number of index node/entry touches (feeds the cost model).
    pub probes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded(kind: IndexKind) -> AttrIndex {
        let mut ix = AttrIndex::new(kind);
        for (i, v) in [5i64, 3, 7, 5, 9].into_iter().enumerate() {
            ix.insert(Value::Int(v), ObjectId(i as u32));
        }
        ix
    }

    #[test]
    fn hash_eq_probe() {
        let ix = loaded(IndexKind::Hash);
        let hits = ix.probe_eq(&Value::Int(5));
        assert_eq!(hits, &[ObjectId(0), ObjectId(3)]);
        assert!(ix.probe_eq(&Value::Int(42)).is_empty());
        assert_eq!(ix.len(), 5);
    }

    #[test]
    fn btree_range_probe() {
        let ix = loaded(IndexKind::BTree);
        let res = ix.probe(&ValueSet::at_least(Value::Int(6))).unwrap();
        let mut oids = res.oids.clone();
        oids.sort_unstable();
        assert_eq!(oids, vec![ObjectId(2), ObjectId(4)]); // values 7 and 9
        assert!(res.probes >= 2);
    }

    #[test]
    fn btree_point_probe() {
        let ix = loaded(IndexKind::BTree);
        let res = ix.probe(&ValueSet::point(Value::Int(5))).unwrap();
        assert_eq!(res.oids, vec![ObjectId(0), ObjectId(3)]);
        assert_eq!(res.probes, 1);
    }

    #[test]
    fn hash_rejects_ranges_but_takes_points() {
        let ix = loaded(IndexKind::Hash);
        assert!(ix.probe(&ValueSet::at_least(Value::Int(6))).is_none());
        assert!(!ix.supports(&ValueSet::at_least(Value::Int(6))));
        assert!(ix.supports(&ValueSet::point(Value::Int(5))));
        let res = ix.probe(&ValueSet::point(Value::Int(5))).unwrap();
        assert_eq!(res.oids.len(), 2);
    }

    #[test]
    fn holes_are_never_index_served() {
        let ix = loaded(IndexKind::BTree);
        assert!(ix.probe(&ValueSet::hole(Value::Int(5))).is_none());
    }

    #[test]
    fn inverted_range_is_empty_not_panicking() {
        let ix = loaded(IndexKind::BTree);
        let inverted = ValueSet::Range {
            lo: Bound::Included(Value::Int(9)),
            hi: Bound::Included(Value::Int(1)),
        };
        let res = ix.probe(&inverted).unwrap();
        assert!(res.oids.is_empty());
    }

    #[test]
    fn patched_postings_match_a_rebuild() {
        for kind in [IndexKind::Hash, IndexKind::BTree] {
            let mut ix = loaded(kind); // values [5, 3, 7, 5, 9] at oids 0..5
            assert!(ix.remove(&Value::Int(5), ObjectId(0)));
            ix.insert_sorted(Value::Int(5), ObjectId(1));
            assert_eq!(ix.probe_eq(&Value::Int(5)), &[ObjectId(1), ObjectId(3)]);
            // Removing the last entry drops the key entirely.
            assert!(ix.remove(&Value::Int(3), ObjectId(1)));
            assert!(ix.probe_eq(&Value::Int(3)).is_empty());
            assert!(!ix.remove(&Value::Int(3), ObjectId(1)), "already gone");
            assert!(!ix.remove(&Value::Int(42), ObjectId(0)), "unknown value");
            if kind == IndexKind::BTree {
                // The dropped key must not be touched by range probes.
                let res = ix.probe(&ValueSet::at_least(Value::Int(0))).unwrap();
                assert_eq!(res.oids.len(), 4);
            }
        }
    }

    #[test]
    fn ord_value_totality() {
        let mut vals = [
            OrdValue(Value::str("b")),
            OrdValue(Value::Int(2)),
            OrdValue(Value::Bool(true)),
            OrdValue(Value::Int(1)),
            OrdValue(Value::str("a")),
        ];
        vals.sort();
        assert_eq!(vals[0], OrdValue(Value::Bool(true)));
        assert_eq!(vals[1], OrdValue(Value::Int(1)));
        assert_eq!(vals[4], OrdValue(Value::str("b")));
    }
}
