//! # sqo-storage
//!
//! In-memory object store for the `sqo` workspace — the storage substrate the
//! paper's prototype ran on (their OODB plus the relational DBMS used for
//! cost measurements; see DESIGN.md S5 for the substitution argument).
//!
//! * class **extents** of typed tuples;
//! * **hash and B-tree indexes** built from catalog declarations;
//! * bidirectional **relationship links** (the pointer attributes of the
//!   paper's schema);
//! * load-time **integrity enforcement**: total participation and to-one
//!   multiplicity — the declarations that make class elimination sound;
//! * **cost accounting**: raw operation counters, a page-I/O model and
//!   scalar work units, so "execution cost" is deterministic and
//!   machine-independent;
//! * an **incremental write path** ([`VersionedDatabase`]): copy-on-write
//!   snapshot mutation behind a versioned handle with a monotone **data
//!   epoch**, distinct from the constraint epoch, so serving layers can
//!   keep plans across data writes while re-gating memoized results.
//!   Snapshot state is `Arc`-sharded per class and per relationship; a
//!   write batch clones and patches only the shards it touches (extents,
//!   index banks, link tables) and folds per-class statistics deltas into
//!   the previous snapshot, so a batch costs O(touched classes + their
//!   incident links) instead of O(database). [`Database::with_writes_full`]
//!   keeps the rebuild-everything algorithm as the equivalence oracle, and
//!   [`DataWrite::Update`] mutates attributes in place without paying
//!   delete + re-insert renumbering. Every batch returns a
//!   [`WriteReceipt`] naming inserted ids and swap-remove renumberings.
//!   See `db.rs`'s module docs for the sharing/patching model and its
//!   aliasing guarantees;
//! * **semantic-constraint checking** against the data, used by generators
//!   and property tests to certify that instances satisfy the constraint set
//!   the optimizer will trust.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

mod cost;
mod db;
mod error;
mod index;
mod links;
mod object;
mod persist;
mod versioned;

pub use cost::{CostCounters, CostWeights, PageModel};
pub use db::{DataWrite, Database, DatabaseBuilder, IntegrityOptions, Violation, WriteReceipt};
pub use error::StorageError;
pub use index::{AttrIndex, IndexScanResult, OrdValue};
pub use links::{RelLinks, Side, Traversal};
pub use object::ObjectId;
pub use persist::{
    database_sections, decode_database, decode_database_from, encode_database, load_database,
    save_database,
};
pub use versioned::{VersionedDatabase, WriteOutcome};
