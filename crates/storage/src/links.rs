//! Relationship link storage.
//!
//! The paper's OODB implements relationships as pointer attributes; we store
//! them as bidirectional adjacency lists per relationship, which gives the
//! executor O(1) pointer-chasing in either direction.
//!
//! # Canonical adjacency order
//!
//! Every snapshot assembled by `sqo-storage` keeps its adjacency lists in
//! **canonical order**, a pure function of the logical edge population (never
//! of the write history that produced it):
//!
//! * `left → right` lists keep per-left *insertion order* (edge age);
//! * `right → left` lists are stably sorted by left id, duplicates adjacent
//!   in per-left insertion order.
//!
//! [`RelLinks::canonicalize`] establishes the invariant after a bulk build;
//! the incremental patch operations ([`RelLinks::add_sorted`],
//! [`RelLinks::remove_edge`], [`RelLinks::delete_left`],
//! [`RelLinks::delete_right`]) maintain it edge by edge. Because the order is
//! canonical, a copy-on-write successor patched in place is **bit-for-bit
//! identical** to a from-scratch rebuild of the same logical state — the
//! property `crates/storage/tests/prop_incremental.rs` enforces.

use sqo_catalog::RelId;

use crate::object::ObjectId;

/// Links of one relationship: adjacency in both directions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelLinks {
    /// left object -> linked right objects.
    left_to_right: Vec<Vec<ObjectId>>,
    /// right object -> linked left objects.
    right_to_left: Vec<Vec<ObjectId>>,
    links: u64,
}

impl RelLinks {
    pub fn new(left_cardinality: usize, right_cardinality: usize) -> Self {
        Self {
            left_to_right: vec![Vec::new(); left_cardinality],
            right_to_left: vec![Vec::new(); right_cardinality],
            links: 0,
        }
    }

    pub fn add(&mut self, left: ObjectId, right: ObjectId) {
        self.left_to_right[left.index()].push(right);
        self.right_to_left[right.index()].push(left);
        self.links += 1;
    }

    /// Right-side neighbours of a left object.
    pub fn from_left(&self, left: ObjectId) -> &[ObjectId] {
        self.left_to_right.get(left.index()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Left-side neighbours of a right object.
    pub fn from_right(&self, right: ObjectId) -> &[ObjectId] {
        self.right_to_left.get(right.index()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    pub fn link_count(&self) -> u64 {
        self.links
    }

    pub fn left_cardinality(&self) -> usize {
        self.left_to_right.len()
    }

    pub fn right_cardinality(&self) -> usize {
        self.right_to_left.len()
    }

    /// Left objects with no links (total-participation check).
    pub fn unlinked_left(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.left_to_right
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_empty())
            .map(|(i, _)| ObjectId(i as u32))
    }

    pub fn unlinked_right(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.right_to_left
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_empty())
            .map(|(i, _)| ObjectId(i as u32))
    }

    /// Max links per left object (multiplicity check).
    pub fn max_left_fanout(&self) -> usize {
        self.left_to_right.iter().map(|v| v.len()).max().unwrap_or(0)
    }

    pub fn max_right_fanout(&self) -> usize {
        self.right_to_left.iter().map(|v| v.len()).max().unwrap_or(0)
    }

    /// Every `(left, right)` pair, grouped by left object. The from-scratch
    /// write path ([`crate::Database::with_writes_full`]) reconstructs a
    /// mutated link population from this flat form.
    pub fn pairs(&self) -> impl Iterator<Item = (ObjectId, ObjectId)> + '_ {
        self.left_to_right
            .iter()
            .enumerate()
            .flat_map(|(l, rs)| rs.iter().map(move |&r| (ObjectId(l as u32), r)))
    }

    /// Reassembles a link table from decoded adjacency lists — the
    /// snapshot-load path. The caller is responsible for validating the
    /// canonical order and the bidirectional invariant (the Strict/Audit
    /// levels of `sqo-storage::persist` do); `links` is recomputed from the
    /// left lists, never trusted from the file.
    pub(crate) fn from_adjacency(
        left_to_right: Vec<Vec<ObjectId>>,
        right_to_left: Vec<Vec<ObjectId>>,
    ) -> Self {
        let links = left_to_right.iter().map(|v| v.len() as u64).sum();
        Self { left_to_right, right_to_left, links }
    }

    /// Establishes the canonical adjacency order (see module docs) after a
    /// bulk [`RelLinks::add`] build: right lists stably sorted by left id.
    pub(crate) fn canonicalize(&mut self) {
        for list in &mut self.right_to_left {
            list.sort_by_key(|o| o.index()); // stable: per-left order survives
        }
    }

    /// Extends the left side by one (unlinked) object slot.
    pub(crate) fn grow_left(&mut self) {
        self.left_to_right.push(Vec::new());
    }

    /// Extends the right side by one (unlinked) object slot.
    pub(crate) fn grow_right(&mut self) {
        self.right_to_left.push(Vec::new());
    }

    /// Adds one edge maintaining the canonical order: the right list gets a
    /// per-left append, the left entry lands at its sorted position (stably
    /// after existing duplicates).
    pub(crate) fn add_sorted(&mut self, left: ObjectId, right: ObjectId) {
        self.left_to_right[left.index()].push(right);
        let list = &mut self.right_to_left[right.index()];
        let at = list.partition_point(|o| o.index() <= left.index());
        list.insert(at, left);
        self.links += 1;
    }

    /// Removes one `(left, right)` edge — the oldest in per-left order when
    /// the edge is duplicated. Returns `false` (and changes nothing) when no
    /// such edge exists.
    pub(crate) fn remove_edge(&mut self, left: ObjectId, right: ObjectId) -> bool {
        if left.index() >= self.left_to_right.len() || right.index() >= self.right_to_left.len() {
            return false;
        }
        let Some(at) = self.left_to_right[left.index()].iter().position(|&o| o == right) else {
            return false;
        };
        self.left_to_right[left.index()].remove(at);
        let list = &mut self.right_to_left[right.index()];
        let at = list.iter().position(|&o| o == left).expect("bidirectional invariant");
        list.remove(at);
        self.links -= 1;
        true
    }

    /// Removes every edge of left object `object` and swap-renumbers the left
    /// side's last object onto its id, preserving the canonical order: the
    /// moved object's right-list keeps its per-left order wholesale, and its
    /// entries in the (sorted) right→left lists are re-keyed from the old id
    /// to `object`'s. `object` must be in range; not for self-relationships
    /// (left and right sides would fall out of step — delete those via a
    /// per-relationship rebuild instead).
    pub(crate) fn delete_left(&mut self, object: ObjectId) {
        let gone = std::mem::take(&mut self.left_to_right[object.index()]);
        for &r in &gone {
            let list = &mut self.right_to_left[r.index()];
            let at = list.iter().position(|&o| o == object).expect("bidirectional invariant");
            list.remove(at);
            self.links -= 1;
        }
        let last = ObjectId((self.left_to_right.len() - 1) as u32);
        self.left_to_right.swap_remove(object.index());
        if object == last {
            return;
        }
        let moved = self.left_to_right[object.index()].clone();
        let mut seen: Vec<ObjectId> = Vec::new();
        for r in moved {
            if seen.contains(&r) {
                continue; // duplicated edges: re-key the whole run once
            }
            seen.push(r);
            let list = &mut self.right_to_left[r.index()];
            let start = list.partition_point(|o| o.index() < last.index());
            let mut end = start;
            while end < list.len() && list[end] == last {
                end += 1;
            }
            let count = end - start;
            debug_assert!(count > 0, "moved object's edges must be present");
            list.drain(start..end);
            let at = list.partition_point(|o| o.index() <= object.index());
            for k in 0..count {
                list.insert(at + k, object);
            }
        }
    }

    /// Mirror of [`RelLinks::delete_left`] for the right side. Left lists are
    /// per-left ordered, so the moved object's entries are re-keyed in place.
    pub(crate) fn delete_right(&mut self, object: ObjectId) {
        let gone = std::mem::take(&mut self.right_to_left[object.index()]);
        for &l in &gone {
            let list = &mut self.left_to_right[l.index()];
            let at = list.iter().position(|&o| o == object).expect("bidirectional invariant");
            list.remove(at);
            self.links -= 1;
        }
        let last = ObjectId((self.right_to_left.len() - 1) as u32);
        self.right_to_left.swap_remove(object.index());
        if object == last {
            return;
        }
        let moved = self.right_to_left[object.index()].clone();
        let mut seen: Vec<ObjectId> = Vec::new();
        for l in moved {
            if seen.contains(&l) {
                continue;
            }
            seen.push(l);
            for o in self.left_to_right[l.index()].iter_mut() {
                if *o == last {
                    *o = object;
                }
            }
        }
    }
}

/// A link endpoint reference used by the executor when walking either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

impl Side {
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// Convenience wrapper naming a relationship traversal direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traversal {
    pub rel: RelId,
    pub from: Side,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bidirectional_adjacency() {
        let mut l = RelLinks::new(3, 2);
        l.add(ObjectId(0), ObjectId(1));
        l.add(ObjectId(2), ObjectId(1));
        l.add(ObjectId(0), ObjectId(0));
        assert_eq!(l.from_left(ObjectId(0)), &[ObjectId(1), ObjectId(0)]);
        assert_eq!(l.from_right(ObjectId(1)), &[ObjectId(0), ObjectId(2)]);
        assert_eq!(l.link_count(), 3);
        assert_eq!(l.from_left(ObjectId(1)), &[] as &[ObjectId]);
    }

    #[test]
    fn unlinked_detection() {
        let mut l = RelLinks::new(3, 2);
        l.add(ObjectId(0), ObjectId(0));
        let unlinked: Vec<ObjectId> = l.unlinked_left().collect();
        assert_eq!(unlinked, vec![ObjectId(1), ObjectId(2)]);
        let unlinked_r: Vec<ObjectId> = l.unlinked_right().collect();
        assert_eq!(unlinked_r, vec![ObjectId(1)]);
    }

    #[test]
    fn fanout_tracking() {
        let mut l = RelLinks::new(2, 2);
        l.add(ObjectId(0), ObjectId(0));
        l.add(ObjectId(0), ObjectId(1));
        assert_eq!(l.max_left_fanout(), 2);
        assert_eq!(l.max_right_fanout(), 1);
    }

    #[test]
    fn side_opposite() {
        assert_eq!(Side::Left.opposite(), Side::Right);
        assert_eq!(Side::Right.opposite(), Side::Left);
    }

    #[test]
    fn canonicalize_sorts_right_lists_stably() {
        let mut l = RelLinks::new(3, 1);
        l.add(ObjectId(2), ObjectId(0));
        l.add(ObjectId(0), ObjectId(0));
        l.add(ObjectId(2), ObjectId(0)); // duplicate edge
        l.canonicalize();
        assert_eq!(l.from_right(ObjectId(0)), &[ObjectId(0), ObjectId(2), ObjectId(2)]);
        // Left lists keep insertion order.
        assert_eq!(l.from_left(ObjectId(2)), &[ObjectId(0), ObjectId(0)]);
    }

    #[test]
    fn add_sorted_maintains_the_canonical_order() {
        let mut l = RelLinks::new(3, 1);
        l.add(ObjectId(0), ObjectId(0));
        l.add(ObjectId(2), ObjectId(0));
        l.canonicalize();
        l.add_sorted(ObjectId(1), ObjectId(0));
        assert_eq!(l.from_right(ObjectId(0)), &[ObjectId(0), ObjectId(1), ObjectId(2)]);
        assert_eq!(l.link_count(), 3);
    }

    #[test]
    fn remove_edge_takes_the_oldest_duplicate_and_reports_missing() {
        let mut l = RelLinks::new(2, 2);
        l.add_sorted(ObjectId(0), ObjectId(1));
        l.add_sorted(ObjectId(0), ObjectId(1));
        assert!(l.remove_edge(ObjectId(0), ObjectId(1)));
        assert_eq!(l.from_left(ObjectId(0)), &[ObjectId(1)]);
        assert_eq!(l.link_count(), 1);
        assert!(!l.remove_edge(ObjectId(1), ObjectId(0)));
        assert!(!l.remove_edge(ObjectId(7), ObjectId(0)), "out of range is not-found, not a panic");
    }

    #[test]
    fn delete_left_renumbers_and_keeps_sorted_right_lists() {
        let mut l = RelLinks::new(3, 2);
        l.add(ObjectId(0), ObjectId(0));
        l.add(ObjectId(1), ObjectId(0));
        l.add(ObjectId(2), ObjectId(0));
        l.add(ObjectId(2), ObjectId(1));
        l.canonicalize();
        // Delete left object 0: object 2 takes its id, edges follow.
        l.delete_left(ObjectId(0));
        assert_eq!(l.left_cardinality(), 2);
        assert_eq!(l.from_left(ObjectId(0)), &[ObjectId(0), ObjectId(1)]);
        assert_eq!(l.from_right(ObjectId(0)), &[ObjectId(0), ObjectId(1)]);
        assert_eq!(l.from_right(ObjectId(1)), &[ObjectId(0)]);
        assert_eq!(l.link_count(), 3);
    }

    #[test]
    fn delete_right_renumbers_left_lists_in_place() {
        let mut l = RelLinks::new(2, 3);
        l.add(ObjectId(0), ObjectId(0));
        l.add(ObjectId(0), ObjectId(2));
        l.add(ObjectId(1), ObjectId(1));
        l.canonicalize();
        // Delete right object 0: right object 2 takes its id.
        l.delete_right(ObjectId(0));
        assert_eq!(l.right_cardinality(), 2);
        assert_eq!(l.from_left(ObjectId(0)), &[ObjectId(0)]);
        assert_eq!(l.from_right(ObjectId(0)), &[ObjectId(0)]);
        assert_eq!(l.from_right(ObjectId(1)), &[ObjectId(1)]);
        assert_eq!(l.link_count(), 2);
    }
}
