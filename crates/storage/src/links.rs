//! Relationship link storage.
//!
//! The paper's OODB implements relationships as pointer attributes; we store
//! them as bidirectional adjacency lists per relationship, which gives the
//! executor O(1) pointer-chasing in either direction.

use sqo_catalog::RelId;

use crate::object::ObjectId;

/// Links of one relationship: adjacency in both directions.
#[derive(Debug, Clone, Default)]
pub struct RelLinks {
    /// left object -> linked right objects.
    left_to_right: Vec<Vec<ObjectId>>,
    /// right object -> linked left objects.
    right_to_left: Vec<Vec<ObjectId>>,
    links: u64,
}

impl RelLinks {
    pub fn new(left_cardinality: usize, right_cardinality: usize) -> Self {
        Self {
            left_to_right: vec![Vec::new(); left_cardinality],
            right_to_left: vec![Vec::new(); right_cardinality],
            links: 0,
        }
    }

    pub fn add(&mut self, left: ObjectId, right: ObjectId) {
        self.left_to_right[left.index()].push(right);
        self.right_to_left[right.index()].push(left);
        self.links += 1;
    }

    /// Right-side neighbours of a left object.
    pub fn from_left(&self, left: ObjectId) -> &[ObjectId] {
        self.left_to_right.get(left.index()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Left-side neighbours of a right object.
    pub fn from_right(&self, right: ObjectId) -> &[ObjectId] {
        self.right_to_left.get(right.index()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    pub fn link_count(&self) -> u64 {
        self.links
    }

    pub fn left_cardinality(&self) -> usize {
        self.left_to_right.len()
    }

    pub fn right_cardinality(&self) -> usize {
        self.right_to_left.len()
    }

    /// Left objects with no links (total-participation check).
    pub fn unlinked_left(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.left_to_right
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_empty())
            .map(|(i, _)| ObjectId(i as u32))
    }

    pub fn unlinked_right(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.right_to_left
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_empty())
            .map(|(i, _)| ObjectId(i as u32))
    }

    /// Max links per left object (multiplicity check).
    pub fn max_left_fanout(&self) -> usize {
        self.left_to_right.iter().map(|v| v.len()).max().unwrap_or(0)
    }

    pub fn max_right_fanout(&self) -> usize {
        self.right_to_left.iter().map(|v| v.len()).max().unwrap_or(0)
    }

    /// Every `(left, right)` pair, grouped by left object. The write path
    /// reconstructs a mutated link population from this flat form.
    pub fn pairs(&self) -> impl Iterator<Item = (ObjectId, ObjectId)> + '_ {
        self.left_to_right
            .iter()
            .enumerate()
            .flat_map(|(l, rs)| rs.iter().map(move |&r| (ObjectId(l as u32), r)))
    }
}

/// A link endpoint reference used by the executor when walking either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

impl Side {
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// Convenience wrapper naming a relationship traversal direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traversal {
    pub rel: RelId,
    pub from: Side,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bidirectional_adjacency() {
        let mut l = RelLinks::new(3, 2);
        l.add(ObjectId(0), ObjectId(1));
        l.add(ObjectId(2), ObjectId(1));
        l.add(ObjectId(0), ObjectId(0));
        assert_eq!(l.from_left(ObjectId(0)), &[ObjectId(1), ObjectId(0)]);
        assert_eq!(l.from_right(ObjectId(1)), &[ObjectId(0), ObjectId(2)]);
        assert_eq!(l.link_count(), 3);
        assert_eq!(l.from_left(ObjectId(1)), &[] as &[ObjectId]);
    }

    #[test]
    fn unlinked_detection() {
        let mut l = RelLinks::new(3, 2);
        l.add(ObjectId(0), ObjectId(0));
        let unlinked: Vec<ObjectId> = l.unlinked_left().collect();
        assert_eq!(unlinked, vec![ObjectId(1), ObjectId(2)]);
        let unlinked_r: Vec<ObjectId> = l.unlinked_right().collect();
        assert_eq!(unlinked_r, vec![ObjectId(1)]);
    }

    #[test]
    fn fanout_tracking() {
        let mut l = RelLinks::new(2, 2);
        l.add(ObjectId(0), ObjectId(0));
        l.add(ObjectId(0), ObjectId(1));
        assert_eq!(l.max_left_fanout(), 2);
        assert_eq!(l.max_right_fanout(), 1);
    }

    #[test]
    fn side_opposite() {
        assert_eq!(Side::Left.opposite(), Side::Right);
        assert_eq!(Side::Right.opposite(), Side::Left);
    }
}
