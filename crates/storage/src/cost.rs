//! Execution cost accounting.
//!
//! The paper measured cost ratios on a relational DBMS; we account for work
//! explicitly so ratios are deterministic and machine-independent. Counters
//! record *raw operations*; [`PageModel`] converts them into simulated page
//! I/Os; [`CostWeights`] folds everything into one scalar "work unit" figure
//! that plays the role of the paper's execution cost.

use std::fmt;

/// Raw operation counters, incremented by the executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCounters {
    /// Tuples visited by sequential scans.
    pub seq_tuples: u64,
    /// Index descents (one per probe).
    pub index_probes: u64,
    /// Index entries touched while scanning ranges.
    pub index_entries: u64,
    /// Relationship pointer dereferences.
    pub link_traversals: u64,
    /// Predicate evaluations (the CPU cost the paper's restriction
    /// elimination is meant to save).
    pub predicate_evals: u64,
    /// Tuples materialized into intermediate or final results.
    pub tuples_out: u64,
}

impl CostCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &CostCounters) {
        self.seq_tuples += other.seq_tuples;
        self.index_probes += other.index_probes;
        self.index_entries += other.index_entries;
        self.link_traversals += other.link_traversals;
        self.predicate_evals += other.predicate_evals;
        self.tuples_out += other.tuples_out;
    }
}

impl fmt::Display for CostCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq={} probes={} entries={} links={} evals={} out={}",
            self.seq_tuples,
            self.index_probes,
            self.index_entries,
            self.link_traversals,
            self.predicate_evals,
            self.tuples_out
        )
    }
}

/// Page-level I/O simulation.
#[derive(Debug, Clone, Copy)]
pub struct PageModel {
    /// Tuples per data page (the 1991-era default of a few dozen).
    pub tuples_per_page: u64,
    /// Pages touched per index descent (≈ tree height).
    pub pages_per_probe: u64,
    /// Index entries per leaf page.
    pub entries_per_page: u64,
}

impl Default for PageModel {
    fn default() -> Self {
        Self { tuples_per_page: 32, pages_per_probe: 2, entries_per_page: 64 }
    }
}

impl PageModel {
    /// Simulated page reads for a counter snapshot. Sequential scans read
    /// `ceil(tuples / tuples_per_page)` pages; every random access (index
    /// entry fetch, link traversal) charges a fraction of a page to model
    /// scattered reads softened by a buffer pool.
    pub fn pages(&self, c: &CostCounters) -> f64 {
        let seq = (c.seq_tuples as f64 / self.tuples_per_page as f64).ceil();
        let probes = c.index_probes as f64 * self.pages_per_probe as f64;
        let entries = c.index_entries as f64 / self.entries_per_page as f64;
        // Pointer chases hit a cached page roughly 3 times in 4.
        let links = c.link_traversals as f64 * 0.25;
        seq + probes + entries + links
    }
}

/// Scalar cost weights: one simulated page read = 1.0 work unit.
#[derive(Debug, Clone, Copy)]
pub struct CostWeights {
    pub page: f64,
    pub predicate_eval: f64,
    pub tuple_out: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // A page read is ~3 orders of magnitude more expensive than an
        // in-memory predicate evaluation (the classic I/O-vs-CPU gap the
        // paper's DBMS exhibited).
        Self { page: 1.0, predicate_eval: 0.002, tuple_out: 0.001 }
    }
}

impl CostWeights {
    /// Folds counters into a single work-unit figure.
    pub fn work_units(&self, model: &PageModel, c: &CostCounters) -> f64 {
        self.page * model.pages(c)
            + self.predicate_eval * c.predicate_evals as f64
            + self.tuple_out * c.tuples_out as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut a = CostCounters { seq_tuples: 10, predicate_evals: 5, ..Default::default() };
        let b = CostCounters { seq_tuples: 2, link_traversals: 7, ..Default::default() };
        a.add(&b);
        assert_eq!(a.seq_tuples, 12);
        assert_eq!(a.link_traversals, 7);
        assert_eq!(a.predicate_evals, 5);
    }

    #[test]
    fn page_model_charges_scans_by_page() {
        let m = PageModel::default();
        let c = CostCounters { seq_tuples: 64, ..Default::default() };
        assert_eq!(m.pages(&c), 2.0);
        let c1 = CostCounters { seq_tuples: 1, ..Default::default() };
        assert_eq!(m.pages(&c1), 1.0); // partial page still costs a read
    }

    #[test]
    fn page_model_charges_probes() {
        let m = PageModel::default();
        let c = CostCounters { index_probes: 3, index_entries: 64, ..Default::default() };
        assert_eq!(m.pages(&c), 3.0 * 2.0 + 1.0);
    }

    #[test]
    fn work_units_monotone_in_counters() {
        let m = PageModel::default();
        let w = CostWeights::default();
        let small = CostCounters { seq_tuples: 32, predicate_evals: 10, ..Default::default() };
        let big = CostCounters { seq_tuples: 320, predicate_evals: 100, ..Default::default() };
        assert!(w.work_units(&m, &big) > w.work_units(&m, &small));
    }
}
