//! The concurrent write path: a versioned handle over immutable snapshots.
//!
//! A [`VersionedDatabase`] wraps an [`Arc<Database>`] behind a `RwLock` and
//! gives it a **data epoch** — an `AtomicU64` advanced by every committed
//! write batch, deliberately distinct from the *constraint* epoch of
//! `sqo-constraints` (`ConstraintStore::epoch`): constraint changes
//! invalidate cached *plans*, data changes invalidate cached *results*.
//!
//! Writers are serialized by an internal mutex and build the successor
//! snapshot **outside** the read lock ([`Database::with_writes`] is
//! copy-on-write), so concurrent readers only ever block on the pointer
//! swap. A reader's [`VersionedDatabase::snapshot`] is an immutable
//! `Arc<Database>` whose [`Database::data_version`] names the epoch it
//! belongs to — answers computed from one snapshot are internally
//! consistent by construction (no torn reads), and a memo stamped with that
//! version can be checked against the current epoch in O(1).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::db::{DataWrite, Database, IntegrityOptions, WriteReceipt};
use crate::error::StorageError;

/// What one committed write batch produced.
#[derive(Debug, Clone)]
pub struct WriteOutcome {
    /// The data epoch the batch established.
    pub epoch: u64,
    /// The snapshot materializing that epoch (readers arriving later may
    /// already observe a newer one).
    pub snapshot: Arc<Database>,
    /// Inserted ids, swap-remove renumberings and touched classes of the
    /// batch (see [`WriteReceipt`]).
    pub receipt: WriteReceipt,
}

/// A mutable database: immutable snapshots behind a versioned swap.
#[derive(Debug)]
pub struct VersionedDatabase {
    current: RwLock<Arc<Database>>,
    /// Mirror of the current snapshot's `data_version`, readable without
    /// taking the snapshot lock. Updated *after* the swap: a reader pairing
    /// `snapshot()` with the snapshot's own `data_version()` is always
    /// consistent; `data_epoch()` alone may trail by one swap.
    data_epoch: AtomicU64,
    /// Serializes writers so successor snapshots are built outside
    /// `current`'s write lock.
    writer: Mutex<()>,
    /// Integrity declarations re-checked on every batch (`None` trusts the
    /// writer, e.g. generators that only emit integrity-preserving batches).
    integrity: Option<IntegrityOptions>,
}

impl VersionedDatabase {
    /// A handle that applies writes without re-checking integrity
    /// declarations (the batches themselves are still fully validated).
    pub fn new(db: Arc<Database>) -> Self {
        Self::with_integrity_option(db, None)
    }

    /// A handle that re-enforces `options` (total participation, to-one
    /// multiplicity) on every write batch, rejecting violating batches.
    pub fn with_integrity(db: Arc<Database>, options: IntegrityOptions) -> Self {
        Self::with_integrity_option(db, Some(options))
    }

    fn with_integrity_option(db: Arc<Database>, integrity: Option<IntegrityOptions>) -> Self {
        Self {
            data_epoch: AtomicU64::new(db.data_version()),
            current: RwLock::new(db),
            writer: Mutex::new(()),
            integrity,
        }
    }

    /// The current snapshot. Immutable; callers may hold it across a write
    /// (they keep reading the epoch it was taken at).
    pub fn snapshot(&self) -> Arc<Database> {
        Arc::clone(&self.current.read())
    }

    /// The current data epoch, lock-free. May trail an in-flight swap by
    /// one; use `snapshot().data_version()` when the epoch must match a
    /// specific snapshot.
    pub fn data_epoch(&self) -> u64 {
        // ordering: Acquire pairs with the Release store in `write`,
        // so an observed epoch implies the snapshot that produced it is
        // already visible through `current`.
        self.data_epoch.load(Ordering::Acquire)
    }

    /// Applies one atomic write batch: builds the successor snapshot
    /// copy-on-write, swaps it in, and advances the data epoch. Concurrent
    /// readers keep the snapshot they started with.
    pub fn write(&self, writes: &[DataWrite]) -> Result<WriteOutcome, StorageError> {
        let _writing = self.writer.lock();
        let base = self.snapshot();
        let (db, receipt) = base.with_writes(writes, self.integrity)?;
        let epoch = db.data_version();
        let snapshot = Arc::new(db);
        *self.current.write() = Arc::clone(&snapshot);
        // ordering: Release publishes the snapshot swap above to any
        // thread that Acquire-loads this epoch.
        self.data_epoch.store(epoch, Ordering::Release);
        Ok(WriteOutcome { epoch, snapshot, receipt })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;
    use sqo_catalog::{example::figure21, Value};

    fn handle() -> (Arc<sqo_catalog::Catalog>, VersionedDatabase) {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        b.insert(supplier, vec![Value::str("SFI"), Value::str("1 Food St")]).unwrap();
        let db = b
            .finalize(IntegrityOptions {
                enforce_total_participation: false,
                enforce_multiplicity: true,
            })
            .unwrap();
        (catalog, VersionedDatabase::new(Arc::new(db)))
    }

    #[test]
    fn writes_advance_the_epoch_and_readers_keep_their_snapshot() {
        let (catalog, handle) = handle();
        let supplier = catalog.class_id("supplier").unwrap();
        assert_eq!(handle.data_epoch(), 0);
        let before = handle.snapshot();
        let out = handle
            .write(&[DataWrite::Insert {
                class: supplier,
                tuple: vec![Value::str("NTUC"), Value::str("2 Mart Ave")],
                links: vec![],
            }])
            .unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!(out.receipt.inserted, vec![ObjectId(1)]);
        assert_eq!(handle.data_epoch(), 1);
        assert_eq!(handle.snapshot().data_version(), 1);
        assert_eq!(handle.snapshot().cardinality(supplier), 2);
        // The pre-write snapshot still answers from epoch 0.
        assert_eq!(before.data_version(), 0);
        assert_eq!(before.cardinality(supplier), 1);
    }

    #[test]
    fn failed_batches_leave_the_epoch_alone() {
        let (catalog, handle) = handle();
        let supplier = catalog.class_id("supplier").unwrap();
        let err = handle.write(&[DataWrite::Insert {
            class: supplier,
            tuple: vec![Value::Int(3)],
            links: vec![],
        }]);
        assert!(matches!(err, Err(StorageError::ArityMismatch { .. })));
        assert_eq!(handle.data_epoch(), 0);
        assert_eq!(handle.snapshot().data_version(), 0);
    }

    #[test]
    fn concurrent_writers_produce_distinct_epochs() {
        let (catalog, handle) = handle();
        let supplier = catalog.class_id("supplier").unwrap();
        let epochs: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let handle = &handle;
                    scope.spawn(move || {
                        (0..8)
                            .map(|j| {
                                handle
                                    .write(&[DataWrite::Insert {
                                        class: supplier,
                                        tuple: vec![
                                            Value::str(format!("s{i}x{j}")),
                                            Value::str("addr"),
                                        ],
                                        links: vec![],
                                    }])
                                    .unwrap()
                                    .epoch
                            })
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut sorted = epochs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32, "every committed batch gets its own epoch: {epochs:?}");
        assert_eq!(handle.data_epoch(), 32);
        assert_eq!(handle.snapshot().cardinality(supplier), 33);
    }
}
