//! The in-memory object database: extents, indexes, links, statistics.
//!
//! A [`Database`] is immutable once built. [`DatabaseBuilder`] validates
//! tuples against the catalog, wires relationship links, and at
//! [`DatabaseBuilder::finalize`] builds the declared indexes, computes the
//! statistics snapshot and enforces the integrity declarations (total
//! participation, to-one multiplicity) that class elimination relies on.

use std::collections::HashMap;

use sqo_catalog::{
    AttrRef, AttrStats, Catalog, ClassId, ClassStats, Multiplicity, RelId, RelStats, StatsSnapshot,
    Value,
};
use sqo_constraints::HornConstraint;
use sqo_query::Predicate;
use std::sync::Arc;

use crate::error::StorageError;
use crate::index::AttrIndex;
use crate::links::RelLinks;
use crate::object::ObjectId;

/// Which integrity declarations to enforce at load time.
#[derive(Debug, Clone, Copy)]
pub struct IntegrityOptions {
    pub enforce_total_participation: bool,
    pub enforce_multiplicity: bool,
}

impl Default for IntegrityOptions {
    fn default() -> Self {
        Self { enforce_total_participation: true, enforce_multiplicity: true }
    }
}

/// One witness of a violated semantic constraint (see
/// [`Database::check_constraint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Binding of constraint classes to objects that falsifies the clause.
    pub binding: Vec<(ClassId, ObjectId)>,
}

/// An immutable, loaded database instance.
#[derive(Debug)]
pub struct Database {
    catalog: Arc<Catalog>,
    extents: Vec<Vec<Vec<Value>>>,
    indexes: Vec<Vec<Option<AttrIndex>>>,
    links: Vec<RelLinks>,
    stats: StatsSnapshot,
}

impl Database {
    pub fn builder(catalog: Arc<Catalog>) -> DatabaseBuilder {
        DatabaseBuilder::new(catalog)
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn cardinality(&self, class: ClassId) -> usize {
        self.extents.get(class.index()).map(|e| e.len()).unwrap_or(0)
    }

    pub fn tuple(&self, class: ClassId, oid: ObjectId) -> Result<&[Value], StorageError> {
        self.extents
            .get(class.index())
            .and_then(|e| e.get(oid.index()))
            .map(|t| t.as_slice())
            .ok_or(StorageError::UnknownObject { class, object: oid })
    }

    pub fn value(&self, attr: AttrRef, oid: ObjectId) -> Result<&Value, StorageError> {
        let t = self.tuple(attr.class, oid)?;
        t.get(attr.attr.index())
            .ok_or(StorageError::UnknownObject { class: attr.class, object: oid })
    }

    pub fn index(&self, attr: AttrRef) -> Option<&AttrIndex> {
        self.indexes
            .get(attr.class.index())
            .and_then(|v| v.get(attr.attr.index()))
            .and_then(|ix| ix.as_ref())
    }

    pub fn links(&self, rel: RelId) -> &RelLinks {
        &self.links[rel.index()]
    }

    /// Pointer-chase from `class`'s side of `rel`. For self-relationships the
    /// left side is used.
    pub fn traverse(
        &self,
        rel: RelId,
        from_class: ClassId,
        oid: ObjectId,
    ) -> Result<&[ObjectId], StorageError> {
        let def = self.catalog.relationship(rel)?;
        let links = &self.links[rel.index()];
        if def.left.class == from_class {
            Ok(links.from_left(oid))
        } else if def.right.class == from_class {
            Ok(links.from_right(oid))
        } else {
            Err(StorageError::LinkClassMismatch { rel })
        }
    }

    pub fn stats(&self) -> &StatsSnapshot {
        &self.stats
    }

    /// Exhaustively checks a semantic constraint against the data, returning
    /// every falsifying binding. Enumeration follows the constraint's
    /// relationships (linked pairs) and falls back to cross products for
    /// unconnected classes — fine at the paper's cardinalities; generators
    /// and property tests use this to certify instances.
    pub fn check_constraint(&self, constraint: &HornConstraint) -> Vec<Violation> {
        let mut violations = Vec::new();
        let classes = constraint.classes.clone();
        let mut binding: Vec<(ClassId, ObjectId)> = Vec::new();
        self.enumerate(constraint, &classes, &mut binding, &mut violations);
        violations
    }

    fn enumerate(
        &self,
        constraint: &HornConstraint,
        remaining: &[ClassId],
        binding: &mut Vec<(ClassId, ObjectId)>,
        violations: &mut Vec<Violation>,
    ) {
        let Some((&next, rest)) = pick_next(self, constraint, remaining, binding) else {
            // Complete binding: evaluate the clause.
            if self.eval_all(&constraint.antecedents, binding)
                && !self.eval_pred(&constraint.consequent, binding)
            {
                violations.push(Violation { binding: binding.clone() });
            }
            return;
        };
        // Candidate objects for `next`: via a relationship to a bound class
        // when possible, otherwise the whole extent.
        let candidates: Vec<ObjectId> = self
            .link_candidates(constraint, next, binding)
            .unwrap_or_else(|| (0..self.cardinality(next) as u32).map(ObjectId).collect());
        for oid in candidates {
            // The same object must be consistent with *all* relationships to
            // already-bound classes.
            if !self.consistent(constraint, next, oid, binding) {
                continue;
            }
            binding.push((next, oid));
            self.enumerate(constraint, rest, binding, violations);
            binding.pop();
        }
    }

    fn link_candidates(
        &self,
        constraint: &HornConstraint,
        class: ClassId,
        binding: &[(ClassId, ObjectId)],
    ) -> Option<Vec<ObjectId>> {
        for &rel in &constraint.relationships {
            let def = self.catalog.relationship(rel).ok()?;
            let other = def.other_end(class)?;
            if let Some(&(_, oid)) = binding.iter().find(|(c, _)| *c == other) {
                if other != class {
                    return self.traverse(rel, other, oid).ok().map(|s| s.to_vec());
                }
            }
        }
        None
    }

    fn consistent(
        &self,
        constraint: &HornConstraint,
        class: ClassId,
        oid: ObjectId,
        binding: &[(ClassId, ObjectId)],
    ) -> bool {
        for &rel in &constraint.relationships {
            let Ok(def) = self.catalog.relationship(rel) else {
                return false;
            };
            let (a, b) = def.classes();
            if a == b {
                continue; // self-relationship consistency is skipped
            }
            let other = if a == class {
                b
            } else if b == class {
                a
            } else {
                continue;
            };
            if let Some(&(_, other_oid)) = binding.iter().find(|(c, _)| *c == other) {
                match self.traverse(rel, class, oid) {
                    Ok(neigh) if neigh.contains(&other_oid) => {}
                    _ => return false,
                }
            }
        }
        true
    }

    fn eval_all(&self, preds: &[Predicate], binding: &[(ClassId, ObjectId)]) -> bool {
        preds.iter().all(|p| self.eval_pred(p, binding))
    }

    fn eval_pred(&self, pred: &Predicate, binding: &[(ClassId, ObjectId)]) -> bool {
        let lookup = |attr: AttrRef| -> Option<&Value> {
            let (_, oid) = binding.iter().find(|(c, _)| *c == attr.class)?;
            self.value(attr, *oid).ok()
        };
        match pred {
            Predicate::Sel(s) => lookup(s.attr).map(|v| s.eval(v)).unwrap_or(false),
            Predicate::Join(j) => match (lookup(j.left), lookup(j.right)) {
                (Some(l), Some(r)) => j.eval(l, r),
                _ => false,
            },
        }
    }
}

fn pick_next<'a>(
    _db: &Database,
    _constraint: &HornConstraint,
    remaining: &'a [ClassId],
    _binding: &[(ClassId, ObjectId)],
) -> Option<(&'a ClassId, &'a [ClassId])> {
    // Enumeration order only affects cost, never correctness:
    // `link_candidates` narrows candidates when a relationship to a bound
    // class exists and `consistent` re-checks every relationship regardless.
    remaining.split_first()
}

/// Staged loader for [`Database`].
#[derive(Debug)]
pub struct DatabaseBuilder {
    catalog: Arc<Catalog>,
    extents: Vec<Vec<Vec<Value>>>,
    pending_links: Vec<(RelId, ObjectId, ObjectId)>,
}

impl DatabaseBuilder {
    pub fn new(catalog: Arc<Catalog>) -> Self {
        let extents = vec![Vec::new(); catalog.class_count()];
        Self { catalog, extents, pending_links: Vec::new() }
    }

    /// Inserts a tuple, validating arity and types.
    pub fn insert(&mut self, class: ClassId, tuple: Vec<Value>) -> Result<ObjectId, StorageError> {
        let def = self.catalog.class(class)?;
        if tuple.len() != def.attributes.len() {
            return Err(StorageError::ArityMismatch {
                class,
                expected: def.attributes.len(),
                got: tuple.len(),
            });
        }
        for (i, (v, a)) in tuple.iter().zip(&def.attributes).enumerate() {
            if v.data_type() != a.ty {
                return Err(StorageError::TypeMismatch {
                    class,
                    attr: i,
                    context: format!("expected {}, got {}", a.ty, v.data_type()),
                });
            }
        }
        let extent = &mut self.extents[class.index()];
        let oid = ObjectId(extent.len() as u32);
        extent.push(tuple);
        Ok(oid)
    }

    /// Links `left` (an object of the relationship's left class) to `right`.
    pub fn link(
        &mut self,
        rel: RelId,
        left: ObjectId,
        right: ObjectId,
    ) -> Result<(), StorageError> {
        let def = self.catalog.relationship(rel)?;
        let lcard = self.extents[def.left.class.index()].len();
        let rcard = self.extents[def.right.class.index()].len();
        if left.index() >= lcard {
            return Err(StorageError::UnknownObject { class: def.left.class, object: left });
        }
        if right.index() >= rcard {
            return Err(StorageError::UnknownObject { class: def.right.class, object: right });
        }
        self.pending_links.push((rel, left, right));
        Ok(())
    }

    /// Builds indexes, statistics and link structures; enforces integrity.
    pub fn finalize(self, options: IntegrityOptions) -> Result<Database, StorageError> {
        let catalog = self.catalog;
        // Links.
        let mut links: Vec<RelLinks> = catalog
            .relationships()
            .map(|(_, def)| {
                RelLinks::new(
                    self.extents[def.left.class.index()].len(),
                    self.extents[def.right.class.index()].len(),
                )
            })
            .collect();
        for (rel, l, r) in &self.pending_links {
            links[rel.index()].add(*l, *r);
        }
        // Integrity.
        for (rel, def) in catalog.relationships() {
            let lk = &links[rel.index()];
            if options.enforce_total_participation {
                if def.left.total {
                    if let Some(o) = lk.unlinked_left().next() {
                        return Err(StorageError::TotalParticipationViolated {
                            rel,
                            class: def.left.class,
                            object: o,
                        });
                    }
                }
                if def.right.total {
                    if let Some(o) = lk.unlinked_right().next() {
                        return Err(StorageError::TotalParticipationViolated {
                            rel,
                            class: def.right.class,
                            object: o,
                        });
                    }
                }
            }
            if options.enforce_multiplicity {
                // `left.multiplicity == One` means each left object links to
                // at most one right object.
                if def.left.multiplicity == Multiplicity::One && lk.max_left_fanout() > 1 {
                    let object = (0..lk.left_cardinality() as u32)
                        .map(ObjectId)
                        .find(|o| lk.from_left(*o).len() > 1)
                        .expect("fanout > 1 implies a witness");
                    return Err(StorageError::MultiplicityViolated {
                        rel,
                        class: def.left.class,
                        object,
                        links: lk.from_left(object).len(),
                    });
                }
                if def.right.multiplicity == Multiplicity::One && lk.max_right_fanout() > 1 {
                    let object = (0..lk.right_cardinality() as u32)
                        .map(ObjectId)
                        .find(|o| lk.from_right(*o).len() > 1)
                        .expect("fanout > 1 implies a witness");
                    return Err(StorageError::MultiplicityViolated {
                        rel,
                        class: def.right.class,
                        object,
                        links: lk.from_right(object).len(),
                    });
                }
            }
        }
        // Indexes.
        let mut indexes: Vec<Vec<Option<AttrIndex>>> = Vec::with_capacity(catalog.class_count());
        for (cid, cdef) in catalog.classes() {
            let mut per_attr: Vec<Option<AttrIndex>> = Vec::with_capacity(cdef.attributes.len());
            for (ai, adef) in cdef.attributes.iter().enumerate() {
                per_attr.push(adef.index.map(|kind| {
                    let mut ix = AttrIndex::new(kind);
                    for (oi, tuple) in self.extents[cid.index()].iter().enumerate() {
                        ix.insert(tuple[ai].clone(), ObjectId(oi as u32));
                    }
                    ix
                }));
            }
            indexes.push(per_attr);
        }
        // Statistics.
        let stats = compute_stats(&catalog, &self.extents, &links);
        Ok(Database { catalog, extents: self.extents, indexes, links, stats })
    }
}

fn compute_stats(
    catalog: &Catalog,
    extents: &[Vec<Vec<Value>>],
    links: &[RelLinks],
) -> StatsSnapshot {
    let classes = catalog
        .classes()
        .map(|(cid, cdef)| {
            let extent = &extents[cid.index()];
            let attrs = (0..cdef.attributes.len())
                .map(|ai| {
                    let mut counts: HashMap<&Value, u64> = HashMap::new();
                    let mut min: Option<&Value> = None;
                    let mut max: Option<&Value> = None;
                    for tuple in extent {
                        let v = &tuple[ai];
                        *counts.entry(v).or_insert(0) += 1;
                        min = Some(match min {
                            None => v,
                            Some(m) => {
                                if v.compare(m) == Some(std::cmp::Ordering::Less) {
                                    v
                                } else {
                                    m
                                }
                            }
                        });
                        max = Some(match max {
                            None => v,
                            Some(m) => {
                                if v.compare(m) == Some(std::cmp::Ordering::Greater) {
                                    v
                                } else {
                                    m
                                }
                            }
                        });
                    }
                    // Top-3 most common values, ties broken by rendering for
                    // determinism.
                    let mut mcvs: Vec<(Value, u64)> =
                        counts.iter().map(|(v, c)| ((*v).clone(), *c)).collect();
                    mcvs.sort_by(|a, b| {
                        b.1.cmp(&a.1).then_with(|| a.0.to_string().cmp(&b.0.to_string()))
                    });
                    mcvs.truncate(3);
                    AttrStats {
                        rows: extent.len() as u64,
                        distinct: counts.len() as u64,
                        min: min.cloned(),
                        max: max.cloned(),
                        mcvs,
                        histogram: Vec::new(),
                    }
                })
                .collect();
            ClassStats { cardinality: extent.len() as u64, attrs }
        })
        .collect();
    let relationships = links
        .iter()
        .map(|lk| RelStats {
            links: lk.link_count(),
            avg_left_fanout: if lk.left_cardinality() == 0 {
                0.0
            } else {
                lk.link_count() as f64 / lk.left_cardinality() as f64
            },
            avg_right_fanout: if lk.right_cardinality() == 0 {
                0.0
            } else {
                lk.link_count() as f64 / lk.right_cardinality() as f64
            },
        })
        .collect();
    StatsSnapshot { classes, relationships }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::example::figure21;
    use sqo_constraints::figure22;
    use sqo_query::CompOp;

    fn mini_db() -> (Arc<Catalog>, Database) {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        let cargo = catalog.class_id("cargo").unwrap();
        let vehicle = catalog.class_id("vehicle").unwrap();
        let sfi = b.insert(supplier, vec![Value::str("SFI"), Value::str("1 Food St")]).unwrap();
        let ntuc = b.insert(supplier, vec![Value::str("NTUC"), Value::str("2 Mart Ave")]).unwrap();
        let frozen = b
            .insert(cargo, vec![Value::Int(100), Value::str("frozen food"), Value::Int(40)])
            .unwrap();
        let fresh = b
            .insert(cargo, vec![Value::Int(101), Value::str("fresh fruit"), Value::Int(7)])
            .unwrap();
        let reefer = b
            .insert(vehicle, vec![Value::Int(1), Value::str("refrigerated truck"), Value::Int(3)])
            .unwrap();
        let flatbed =
            b.insert(vehicle, vec![Value::Int(2), Value::str("flatbed"), Value::Int(1)]).unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        b.link(supplies, frozen, sfi).unwrap();
        b.link(supplies, fresh, ntuc).unwrap();
        b.link(collects, frozen, reefer).unwrap();
        b.link(collects, fresh, flatbed).unwrap();
        let db = b
            .finalize(IntegrityOptions {
                enforce_total_participation: false, // other classes are empty
                enforce_multiplicity: true,
            })
            .unwrap();
        (catalog, db)
    }

    #[test]
    fn insert_and_lookup() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        assert_eq!(db.cardinality(cargo), 2);
        let desc = catalog.attr_ref("cargo", "desc").unwrap();
        assert_eq!(db.value(desc, ObjectId(0)).unwrap(), &Value::str("frozen food"));
        assert!(db.value(desc, ObjectId(9)).is_err());
    }

    #[test]
    fn arity_and_type_validation() {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let cargo = catalog.class_id("cargo").unwrap();
        assert!(matches!(
            b.insert(cargo, vec![Value::Int(1)]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            b.insert(cargo, vec![Value::str("x"), Value::str("d"), Value::Int(1)]),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn traversal_both_directions() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        let supplier = catalog.class_id("supplier").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        assert_eq!(db.traverse(supplies, cargo, ObjectId(0)).unwrap(), &[ObjectId(0)]);
        assert_eq!(db.traverse(supplies, supplier, ObjectId(0)).unwrap(), &[ObjectId(0)]);
        let engine = catalog.class_id("engine").unwrap();
        assert!(db.traverse(supplies, engine, ObjectId(0)).is_err());
    }

    #[test]
    fn indexes_built_from_declarations() {
        let (catalog, db) = mini_db();
        let name = catalog.attr_ref("supplier", "name").unwrap();
        let ix = db.index(name).expect("supplier.name is hash-indexed");
        assert_eq!(ix.probe_eq(&Value::str("SFI")), &[ObjectId(0)]);
        let desc = catalog.attr_ref("cargo", "desc").unwrap();
        assert!(db.index(desc).is_none(), "cargo.desc is unindexed");
    }

    #[test]
    fn stats_collected() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        assert_eq!(db.stats().cardinality(cargo), 2);
        let qty = catalog.attr_ref("cargo", "quantity").unwrap();
        let s = db.stats().attr(qty).unwrap();
        assert_eq!(s.distinct, 2);
        assert_eq!(s.min, Some(Value::Int(7)));
        assert_eq!(s.max, Some(Value::Int(40)));
        let supplies = catalog.rel_id("supplies").unwrap();
        assert_eq!(db.stats().relationship(supplies).unwrap().links, 2);
    }

    #[test]
    fn multiplicity_enforced() {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        let cargo = catalog.class_id("cargo").unwrap();
        let s1 = b.insert(supplier, vec![Value::str("A"), Value::str("x")]).unwrap();
        let s2 = b.insert(supplier, vec![Value::str("B"), Value::str("y")]).unwrap();
        let c1 = b.insert(cargo, vec![Value::Int(1), Value::str("d"), Value::Int(1)]).unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        // cargo is the to-one side: two suppliers for one cargo violates.
        b.link(supplies, c1, s1).unwrap();
        b.link(supplies, c1, s2).unwrap();
        let err = b.finalize(IntegrityOptions {
            enforce_total_participation: false,
            enforce_multiplicity: true,
        });
        assert!(matches!(err, Err(StorageError::MultiplicityViolated { .. })));
    }

    #[test]
    fn total_participation_enforced() {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let cargo = catalog.class_id("cargo").unwrap();
        // A cargo with no supplier violates `supplies` (total on cargo side).
        b.insert(cargo, vec![Value::Int(1), Value::str("d"), Value::Int(1)]).unwrap();
        let err = b.finalize(IntegrityOptions::default());
        assert!(matches!(err, Err(StorageError::TotalParticipationViolated { .. })));
    }

    #[test]
    fn constraint_checking_finds_violations() {
        let (catalog, db) = mini_db();
        let constraints = figure22(&catalog).unwrap();
        // c1 and c2 hold on the mini instance.
        assert!(db.check_constraint(&constraints[0]).is_empty(), "c1 holds");
        assert!(db.check_constraint(&constraints[1]).is_empty(), "c2 holds");
        // A made-up constraint that fails: all cargo is frozen food.
        let bogus = sqo_constraints::ConstraintBuilder::new(&catalog, "bogus")
            .scope("cargo")
            .then("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        let v = db.check_constraint(&bogus);
        assert_eq!(v.len(), 1, "the fresh-fruit cargo violates");
        assert_eq!(v[0].binding[0].1, ObjectId(1));
    }

    #[test]
    fn constraint_checking_respects_links() {
        let (catalog, db) = mini_db();
        // "Flatbeds only carry fresh fruit" — true because of the link shape.
        let c = sqo_constraints::ConstraintBuilder::new(&catalog, "flatbed")
            .when("vehicle.desc", CompOp::Eq, "flatbed")
            .via("collects")
            .then("cargo.desc", CompOp::Eq, "fresh fruit")
            .build()
            .unwrap();
        assert!(db.check_constraint(&c).is_empty());
        // "Flatbeds only carry frozen food" — violated by the fresh-fruit link.
        let c2 = sqo_constraints::ConstraintBuilder::new(&catalog, "flatbed2")
            .when("vehicle.desc", CompOp::Eq, "flatbed")
            .via("collects")
            .then("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        assert_eq!(db.check_constraint(&c2).len(), 1);
    }
}
