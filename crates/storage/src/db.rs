//! The in-memory object database: extents, indexes, links, statistics.
//!
//! A [`Database`] snapshot is immutable once built. [`DatabaseBuilder`]
//! validates tuples against the catalog, wires relationship links, and at
//! [`DatabaseBuilder::finalize`] builds the declared indexes, computes the
//! statistics snapshot and enforces the integrity declarations (total
//! participation, to-one multiplicity) that class elimination relies on.
//!
//! # Incremental copy-on-write snapshots
//!
//! Snapshot state is sharded per class and per relationship behind `Arc`s:
//! one `Arc` per class extent, one per class index bank, one per
//! relationship link table. [`Database::with_writes`] builds a successor
//! snapshot by **cloning the `Arc` vector and patching only the shards the
//! batch touches** (`Arc::make_mut` clone-and-patch); untouched shards are
//! shared with the source by pointer. Statistics fold the same way: the
//! previous [`StatsSnapshot`] is carried over and only the touched classes'
//! [`ClassStats`] / touched relationships' [`RelStats`] are recomputed, so a
//! write batch costs O(touched classes + their incident links), not
//! O(database).
//!
//! ## Aliasing guarantees
//!
//! Sharing is safe because shards are never mutated after publication:
//! `Arc::make_mut` observes the source snapshot's reference and clones, so a
//! reader holding the source (or any other successor) can never see a
//! patched shard. Two snapshots that share a shard are — by construction —
//! bit-identical on every read API over that shard. Adjacency and index
//! posting order follow a **canonical order** that is a function of the
//! logical state alone (see [`crate::RelLinks`]'s module docs), which makes
//! the incremental successor indistinguishable from a from-scratch rebuild:
//! [`Database::with_writes_full`] keeps the old rebuild-everything algorithm
//! as the independent equivalence oracle (exercised by
//! `tests/prop_incremental.rs`), and [`Database::rebuild_statistics`] is the
//! from-scratch statistics fallback the folded stats are checked against.
//!
//! Integrity re-checking is scoped the same way: only relationships the
//! batch could have affected (those incident to inserted/deleted objects or
//! named by link writes) are re-validated — untouched relationships remain
//! valid by induction from the base snapshot. In-place attribute updates
//! ([`DataWrite::Update`]) touch no link structure and therefore re-check
//! nothing.
//!
//! The [`crate::VersionedDatabase`] handle wraps [`Database::with_writes`]
//! into a concurrent write path with a monotone data epoch; readers keep
//! their `Arc` snapshot and are never torn by a write.

use std::collections::HashMap;

use sqo_catalog::{
    AttrId, AttrRef, AttrStats, Catalog, ClassDef, ClassId, ClassStats, Multiplicity, RelId,
    RelStats, RelationshipDef, StatsSnapshot, Value,
};
use sqo_constraints::HornConstraint;
use sqo_query::Predicate;
use std::sync::Arc;

use crate::error::StorageError;
use crate::index::AttrIndex;
use crate::links::RelLinks;
use crate::object::ObjectId;

/// One class's tuples, in object-id order.
pub(crate) type Extent = Vec<Vec<Value>>;

/// Which integrity declarations to enforce at load time.
#[derive(Debug, Clone, Copy)]
pub struct IntegrityOptions {
    pub enforce_total_participation: bool,
    pub enforce_multiplicity: bool,
}

impl Default for IntegrityOptions {
    fn default() -> Self {
        Self { enforce_total_participation: true, enforce_multiplicity: true }
    }
}

/// One witness of a violated semantic constraint (see
/// [`Database::check_constraint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Binding of constraint classes to objects that falsifies the clause.
    pub binding: Vec<(ClassId, ObjectId)>,
}

/// One logical mutation of a database snapshot (see
/// [`Database::with_writes`]). Batches apply atomically: either every write
/// validates and a new snapshot is produced, or the snapshot is unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum DataWrite {
    /// Insert a new instance of `class`, optionally linked to existing
    /// objects. Each `(rel, other)` pair attaches the new object on the side
    /// of `rel` whose class is `class` (the left side for
    /// self-relationships) and `other` on the opposite side.
    Insert { class: ClassId, tuple: Vec<Value>, links: Vec<(RelId, ObjectId)> },
    /// Delete an instance and every link edge incident to it.
    ///
    /// Deletion has `swap_remove` semantics: the class's **last** object is
    /// renumbered to take the deleted [`ObjectId`] (its tuple, index entries
    /// and link edges follow it). Deleting the last object renumbers
    /// nothing. Every renumbering is reported in the batch's
    /// [`WriteReceipt::moves`], so callers tracking live ids need no
    /// convention about *which* objects they delete.
    Delete { class: ClassId, object: ObjectId },
    /// Overwrite one attribute of an existing instance in place. The object
    /// keeps its id and its links; only the touched class's extent, the
    /// attribute's index (when declared) and the class's statistics are
    /// patched. No integrity re-checking happens for updates — the link
    /// structure the total-participation/multiplicity declarations speak
    /// about is untouched.
    Update { class: ClassId, object: ObjectId, attr: AttrId, value: Value },
    /// Add one link edge between existing objects.
    Link { rel: RelId, left: ObjectId, right: ObjectId },
    /// Remove one link edge (errors with [`StorageError::LinkNotFound`] if
    /// the edge does not exist).
    Unlink { rel: RelId, left: ObjectId, right: ObjectId },
}

/// What one committed write batch did to object identity — returned by
/// [`Database::with_writes`] so callers no longer track swap-remove
/// renumbering by convention.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteReceipt {
    /// The [`ObjectId`] of each [`DataWrite::Insert`] of the batch, in batch
    /// order, **as of the end of the batch** — a later `Delete` in the same
    /// batch that renumbers an earlier insert is accounted for. (Deleting an
    /// object inserted earlier in the same batch leaves its now-dead id in
    /// the vector; positions must line up with the inserts.)
    pub inserted: Vec<ObjectId>,
    /// Every swap-remove renumbering, in batch order: deleting `object`
    /// moved the class's then-last object from `moved_from` to `moved_to`
    /// (`== object`). Apply the moves in order to re-map externally tracked
    /// ids.
    pub moves: Vec<(ClassId, ObjectId, ObjectId)>,
    /// The classes whose extent, index or statistics shards this batch
    /// patched, ascending. Everything else is `Arc`-shared with the source
    /// snapshot.
    pub touched_classes: Vec<ClassId>,
}

/// An immutable, loaded database snapshot.
///
/// State is `Arc`-sharded per class and per relationship; see the module
/// docs for the sharing and patching model.
#[derive(Debug)]
pub struct Database {
    catalog: Arc<Catalog>,
    extents: Vec<Arc<Extent>>,
    indexes: Vec<Arc<Vec<Option<AttrIndex>>>>,
    links: Vec<Arc<RelLinks>>,
    stats: StatsSnapshot,
    /// Which data epoch this snapshot materializes: `0` for a
    /// builder-finalized load, `source + 1` for every
    /// [`Database::with_writes`] successor. Downstream memos (cached result
    /// sets, oracle cost memos) key on it to stay data-epoch-aware.
    data_version: u64,
}

impl Database {
    pub fn builder(catalog: Arc<Catalog>) -> DatabaseBuilder {
        DatabaseBuilder::new(catalog)
    }

    /// The data epoch this snapshot belongs to (see [`Database::with_writes`]
    /// and [`crate::VersionedDatabase`]).
    pub fn data_version(&self) -> u64 {
        self.data_version
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn cardinality(&self, class: ClassId) -> usize {
        self.extents.get(class.index()).map(|e| e.len()).unwrap_or(0)
    }

    pub fn tuple(&self, class: ClassId, oid: ObjectId) -> Result<&[Value], StorageError> {
        self.extents
            .get(class.index())
            .and_then(|e| e.get(oid.index()))
            .map(|t| t.as_slice())
            .ok_or(StorageError::UnknownObject { class, object: oid })
    }

    pub fn value(&self, attr: AttrRef, oid: ObjectId) -> Result<&Value, StorageError> {
        let t = self.tuple(attr.class, oid)?;
        t.get(attr.attr.index())
            .ok_or(StorageError::UnknownObject { class: attr.class, object: oid })
    }

    pub fn index(&self, attr: AttrRef) -> Option<&AttrIndex> {
        self.indexes
            .get(attr.class.index())
            .and_then(|v| v.get(attr.attr.index()))
            .and_then(|ix| ix.as_ref())
    }

    pub fn links(&self, rel: RelId) -> &RelLinks {
        &self.links[rel.index()]
    }

    /// Pointer-chase from `class`'s side of `rel`. For self-relationships the
    /// left side is used.
    pub fn traverse(
        &self,
        rel: RelId,
        from_class: ClassId,
        oid: ObjectId,
    ) -> Result<&[ObjectId], StorageError> {
        let def = self.catalog.relationship(rel)?;
        let links = &self.links[rel.index()];
        if def.left.class == from_class {
            Ok(links.from_left(oid))
        } else if def.right.class == from_class {
            Ok(links.from_right(oid))
        } else {
            Err(StorageError::LinkClassMismatch { rel })
        }
    }

    pub fn stats(&self) -> &StatsSnapshot {
        &self.stats
    }

    /// Recomputes the full statistics snapshot from scratch — the fallback
    /// (and equivalence oracle) for the per-class folding
    /// [`Database::with_writes`] performs. `db.rebuild_statistics() ==
    /// *db.stats()` holds for every reachable snapshot.
    pub fn rebuild_statistics(&self) -> StatsSnapshot {
        build_statistics(&self.catalog, &self.extents, &self.links)
    }

    // ---- persistence hooks (crate-private; see persist.rs) --------------

    /// The per-class extent shards, for snapshot encoding.
    pub(crate) fn extent_shards(&self) -> &[Arc<Extent>] {
        &self.extents
    }

    /// The per-class index banks, for snapshot encoding.
    pub(crate) fn index_shards(&self) -> &[Arc<Vec<Option<AttrIndex>>>] {
        &self.indexes
    }

    /// The per-relationship link tables, for snapshot encoding.
    pub(crate) fn link_shards(&self) -> &[Arc<RelLinks>] {
        &self.links
    }

    /// Reassembles a snapshot from decoded parts — the snapshot-load path.
    /// The caller (`persist::decode_database`) owns all validation; this
    /// constructor only wires the shards together.
    pub(crate) fn from_loaded_parts(
        catalog: Arc<Catalog>,
        extents: Vec<Arc<Extent>>,
        indexes: Vec<Arc<Vec<Option<AttrIndex>>>>,
        links: Vec<Arc<RelLinks>>,
        stats: StatsSnapshot,
        data_version: u64,
    ) -> Self {
        Self { catalog, extents, indexes, links, stats, data_version }
    }

    /// Whether `self` and `other` share class `class`'s extent shard by
    /// pointer (diagnostics for the copy-on-write tests and benches).
    pub fn shares_extent_with(&self, other: &Database, class: ClassId) -> bool {
        match (self.extents.get(class.index()), other.extents.get(class.index())) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Copy-on-write mutation: applies `writes` in order against `Arc`-shared
    /// shards of this snapshot, cloning and patching **only the shards the
    /// batch touches** — per-class extents and index banks, per-relationship
    /// link tables — and folding per-class/per-relationship statistics
    /// deltas into the previous snapshot. Cost is O(touched classes + their
    /// incident links); untouched state is shared with `self` by pointer.
    /// `data_version` advances by one.
    ///
    /// The batch is **atomic**: any validation error (arity, types, unknown
    /// objects or attributes, missing links, or — when `integrity` is
    /// supplied — a violated total-participation/multiplicity declaration on
    /// a relationship the batch touched) leaves `self` untouched and returns
    /// the error. On success the [`WriteReceipt`] reports the inserted ids
    /// and every swap-remove renumbering.
    pub fn with_writes(
        &self,
        writes: &[DataWrite],
        integrity: Option<IntegrityOptions>,
    ) -> Result<(Database, WriteReceipt), StorageError> {
        let catalog = Arc::clone(&self.catalog);
        let mut extents = self.extents.clone();
        let mut indexes = self.indexes.clone();
        let mut links = self.links.clone();
        let mut touched_classes = vec![false; extents.len()];
        let mut touched_rels = vec![false; links.len()];
        // `(class, id)` per insert: the class is needed to track swap-remove
        // renumbering by later deletes in the same batch.
        let mut inserted: Vec<(ClassId, ObjectId)> = Vec::new();
        let mut moves: Vec<(ClassId, ObjectId, ObjectId)> = Vec::new();
        for write in writes {
            match write {
                DataWrite::Insert { class, tuple, links: new_links } => {
                    validate_tuple(&catalog, *class, tuple)?;
                    let extent = Arc::make_mut(&mut extents[class.index()]);
                    let oid = ObjectId(extent.len() as u32);
                    extent.push(tuple.clone());
                    let bank: &mut Vec<Option<AttrIndex>> =
                        Arc::make_mut(&mut indexes[class.index()]);
                    index_insert(bank, tuple, oid);
                    touched_classes[class.index()] = true;
                    // The class's side of every incident link table grows by
                    // one (initially unlinked) slot.
                    for (rel, def) in catalog.relationships() {
                        if !def.involves(*class) {
                            continue;
                        }
                        let lk = Arc::make_mut(&mut links[rel.index()]);
                        if def.left.class == *class {
                            lk.grow_left();
                        }
                        if def.right.class == *class {
                            lk.grow_right();
                        }
                        touched_rels[rel.index()] = true;
                    }
                    for &(rel, other) in new_links {
                        let def = catalog.relationship(rel)?;
                        // The new object takes the side matching its class;
                        // for self-relationships, the left side (matching
                        // `Database::traverse`'s convention). The opposite
                        // class comes from the same branch — comparing ids
                        // would misattribute `other` when it numerically
                        // equals the fresh oid.
                        let (left, right, other_class) = if def.left.class == *class {
                            (oid, other, def.right.class)
                        } else if def.right.class == *class {
                            (other, oid, def.left.class)
                        } else {
                            return Err(StorageError::LinkClassMismatch { rel });
                        };
                        if other.index() >= extents[other_class.index()].len() {
                            return Err(StorageError::UnknownObject {
                                class: other_class,
                                object: other,
                            });
                        }
                        Arc::make_mut(&mut links[rel.index()]).add_sorted(left, right);
                        touched_rels[rel.index()] = true;
                    }
                    inserted.push((*class, oid));
                }
                DataWrite::Delete { class, object } => {
                    // Validate against the un-cloned shard: rejecting must
                    // not pay the clone.
                    if object.index() >= extents[class.index()].len() {
                        return Err(StorageError::UnknownObject { class: *class, object: *object });
                    }
                    let extent = Arc::make_mut(&mut extents[class.index()]);
                    let last = ObjectId((extent.len() - 1) as u32);
                    let dead = extent[object.index()].clone();
                    extent.swap_remove(object.index());
                    let moved = (*object != last).then(|| extent[object.index()].clone());
                    let bank: &mut Vec<Option<AttrIndex>> =
                        Arc::make_mut(&mut indexes[class.index()]);
                    index_delete(bank, &dead, *object, moved.as_deref(), last);
                    touched_classes[class.index()] = true;
                    if *object != last {
                        moves.push((*class, last, *object));
                        // The renumbering applies to earlier inserts of this
                        // batch too, so the returned ids stay live.
                        for (c, id) in inserted.iter_mut() {
                            if *c == *class && *id == last {
                                *id = *object;
                            }
                        }
                    }
                    for (rel, def) in catalog.relationships() {
                        let on_left = def.left.class == *class;
                        let on_right = def.right.class == *class;
                        if !on_left && !on_right {
                            continue;
                        }
                        touched_rels[rel.index()] = true;
                        let lk = Arc::make_mut(&mut links[rel.index()]);
                        if on_left && on_right {
                            // Self-relationship: both sides renumber at once;
                            // rebuilding this one table (O(its links)) is
                            // simpler than an interleaved two-sided patch.
                            *lk = rebuild_self_links(lk, *object);
                        } else if on_left {
                            lk.delete_left(*object);
                        } else {
                            lk.delete_right(*object);
                        }
                    }
                }
                DataWrite::Update { class, object, attr, value } => {
                    let cdef = catalog.class(*class)?;
                    let Some(adef) = cdef.attributes.get(attr.index()) else {
                        return Err(StorageError::UnknownAttribute { class: *class, attr: *attr });
                    };
                    if value.data_type() != adef.ty {
                        return Err(StorageError::TypeMismatch {
                            class: *class,
                            attr: attr.index(),
                            context: format!("expected {}, got {}", adef.ty, value.data_type()),
                        });
                    }
                    if object.index() >= extents[class.index()].len() {
                        return Err(StorageError::UnknownObject { class: *class, object: *object });
                    }
                    let extent = Arc::make_mut(&mut extents[class.index()]);
                    let tuple = &mut extent[object.index()];
                    let old = std::mem::replace(&mut tuple[attr.index()], value.clone());
                    if let Some(ix) =
                        Arc::make_mut(&mut indexes[class.index()])[attr.index()].as_mut()
                    {
                        ix.remove(&old, *object);
                        ix.insert_sorted(value.clone(), *object);
                    }
                    touched_classes[class.index()] = true;
                }
                DataWrite::Link { rel, left, right } => {
                    let def = catalog.relationship(*rel)?;
                    for (class, object) in [(def.left.class, *left), (def.right.class, *right)] {
                        if object.index() >= extents[class.index()].len() {
                            return Err(StorageError::UnknownObject { class, object });
                        }
                    }
                    Arc::make_mut(&mut links[rel.index()]).add_sorted(*left, *right);
                    touched_rels[rel.index()] = true;
                }
                DataWrite::Unlink { rel, left, right } => {
                    // Probe read-only first: a missing edge must not clone
                    // the link table.
                    if !links[rel.index()].from_left(*left).contains(right) {
                        return Err(StorageError::LinkNotFound {
                            rel: *rel,
                            left: *left,
                            right: *right,
                        });
                    }
                    let removed = Arc::make_mut(&mut links[rel.index()]).remove_edge(*left, *right);
                    debug_assert!(removed, "probed edge must be removable");
                    touched_rels[rel.index()] = true;
                }
            }
        }
        if let Some(options) = integrity {
            for (rel, def) in catalog.relationships() {
                if touched_rels[rel.index()] {
                    enforce_rel_integrity(rel, def, &links[rel.index()], options)?;
                }
            }
        }
        // Fold statistics: recompute only the touched classes/relationships,
        // carry everything else over from the previous snapshot.
        let mut stats = self.stats.clone();
        for (cid, cdef) in catalog.classes() {
            if touched_classes[cid.index()] {
                stats.classes[cid.index()] = class_statistics(cdef, &extents[cid.index()]);
            }
        }
        for (r, touched) in touched_rels.iter().enumerate() {
            if *touched {
                stats.relationships[r] = rel_statistics(&links[r]);
            }
        }
        let receipt = WriteReceipt {
            inserted: inserted.iter().map(|&(_, id)| id).collect(),
            moves,
            touched_classes: touched_classes
                .iter()
                .enumerate()
                .filter(|(_, t)| **t)
                .map(|(i, _)| ClassId(i as u32))
                .collect(),
        };
        let db = Database {
            catalog,
            extents,
            indexes,
            links,
            stats,
            data_version: self.data_version + 1,
        };
        Ok((db, receipt))
    }

    /// The from-scratch write path: applies `writes` to a deep clone of the
    /// logical state and reassembles **everything** — links, indexes and
    /// statistics — exactly as a fresh [`DatabaseBuilder`] load would. It is
    /// the independent equivalence oracle for [`Database::with_writes`]
    /// (`tests/prop_incremental.rs` proves the two agree on every read API
    /// for arbitrary batches) and the baseline `benches/writepath.rs`
    /// measures the incremental path against. Semantics are identical,
    /// including integrity scoping and the returned [`WriteReceipt`].
    pub fn with_writes_full(
        &self,
        writes: &[DataWrite],
        integrity: Option<IntegrityOptions>,
    ) -> Result<(Database, WriteReceipt), StorageError> {
        let catalog = Arc::clone(&self.catalog);
        let mut extents: Vec<Extent> = self.extents.iter().map(|e| (**e).clone()).collect();
        let mut pairs: Vec<Vec<(ObjectId, ObjectId)>> =
            self.links.iter().map(|lk| lk.pairs().collect()).collect();
        let mut touched_classes = vec![false; extents.len()];
        let mut touched_rels = vec![false; pairs.len()];
        let mut inserted: Vec<(ClassId, ObjectId)> = Vec::new();
        let mut moves: Vec<(ClassId, ObjectId, ObjectId)> = Vec::new();
        for write in writes {
            match write {
                DataWrite::Insert { class, tuple, links } => {
                    validate_tuple(&catalog, *class, tuple)?;
                    let extent = &mut extents[class.index()];
                    let oid = ObjectId(extent.len() as u32);
                    extent.push(tuple.clone());
                    touched_classes[class.index()] = true;
                    for (rel, def) in catalog.relationships() {
                        if def.involves(*class) {
                            touched_rels[rel.index()] = true;
                        }
                    }
                    for &(rel, other) in links {
                        let def = catalog.relationship(rel)?;
                        let (left, right, other_class) = if def.left.class == *class {
                            (oid, other, def.right.class)
                        } else if def.right.class == *class {
                            (other, oid, def.left.class)
                        } else {
                            return Err(StorageError::LinkClassMismatch { rel });
                        };
                        if other.index() >= extents[other_class.index()].len() {
                            return Err(StorageError::UnknownObject {
                                class: other_class,
                                object: other,
                            });
                        }
                        pairs[rel.index()].push((left, right));
                        touched_rels[rel.index()] = true;
                    }
                    inserted.push((*class, oid));
                }
                DataWrite::Delete { class, object } => {
                    let extent = &mut extents[class.index()];
                    if object.index() >= extent.len() {
                        return Err(StorageError::UnknownObject { class: *class, object: *object });
                    }
                    let last = ObjectId((extent.len() - 1) as u32);
                    extent.swap_remove(object.index());
                    touched_classes[class.index()] = true;
                    if *object != last {
                        moves.push((*class, last, *object));
                        for (c, id) in inserted.iter_mut() {
                            if *c == *class && *id == last {
                                *id = *object;
                            }
                        }
                    }
                    for (rel, def) in catalog.relationships() {
                        let on_left = def.left.class == *class;
                        let on_right = def.right.class == *class;
                        if !on_left && !on_right {
                            continue;
                        }
                        touched_rels[rel.index()] = true;
                        let ps = &mut pairs[rel.index()];
                        ps.retain(|&(l, r)| !(on_left && l == *object || on_right && r == *object));
                        if *object != last {
                            for p in ps.iter_mut() {
                                if on_left && p.0 == last {
                                    p.0 = *object;
                                }
                                if on_right && p.1 == last {
                                    p.1 = *object;
                                }
                            }
                        }
                    }
                }
                DataWrite::Update { class, object, attr, value } => {
                    let cdef = catalog.class(*class)?;
                    let Some(adef) = cdef.attributes.get(attr.index()) else {
                        return Err(StorageError::UnknownAttribute { class: *class, attr: *attr });
                    };
                    if value.data_type() != adef.ty {
                        return Err(StorageError::TypeMismatch {
                            class: *class,
                            attr: attr.index(),
                            context: format!("expected {}, got {}", adef.ty, value.data_type()),
                        });
                    }
                    let extent = &mut extents[class.index()];
                    let Some(tuple) = extent.get_mut(object.index()) else {
                        return Err(StorageError::UnknownObject { class: *class, object: *object });
                    };
                    tuple[attr.index()] = value.clone();
                    touched_classes[class.index()] = true;
                }
                DataWrite::Link { rel, left, right } => {
                    let def = catalog.relationship(*rel)?;
                    for (class, object) in [(def.left.class, *left), (def.right.class, *right)] {
                        if object.index() >= extents[class.index()].len() {
                            return Err(StorageError::UnknownObject { class, object });
                        }
                    }
                    pairs[rel.index()].push((*left, *right));
                    touched_rels[rel.index()] = true;
                }
                DataWrite::Unlink { rel, left, right } => {
                    let ps = &mut pairs[rel.index()];
                    let Some(at) = ps.iter().position(|&p| p == (*left, *right)) else {
                        return Err(StorageError::LinkNotFound {
                            rel: *rel,
                            left: *left,
                            right: *right,
                        });
                    };
                    ps.remove(at);
                    touched_rels[rel.index()] = true;
                }
            }
        }
        let extents: Vec<Arc<Extent>> = extents.into_iter().map(Arc::new).collect();
        let links = build_links(&catalog, &extents, &pairs);
        if let Some(options) = integrity {
            for (rel, def) in catalog.relationships() {
                if touched_rels[rel.index()] {
                    enforce_rel_integrity(rel, def, &links[rel.index()], options)?;
                }
            }
        }
        let indexes = build_indexes(&catalog, &extents);
        let stats = build_statistics(&catalog, &extents, &links);
        let receipt = WriteReceipt {
            inserted: inserted.iter().map(|&(_, id)| id).collect(),
            moves,
            touched_classes: touched_classes
                .iter()
                .enumerate()
                .filter(|(_, t)| **t)
                .map(|(i, _)| ClassId(i as u32))
                .collect(),
        };
        let db = Database {
            catalog,
            extents,
            indexes,
            links,
            stats,
            data_version: self.data_version + 1,
        };
        Ok((db, receipt))
    }

    /// Exhaustively checks a semantic constraint against the data, returning
    /// every falsifying binding. Enumeration follows the constraint's
    /// relationships (linked pairs) and falls back to cross products for
    /// unconnected classes — fine at the paper's cardinalities; generators
    /// and property tests use this to certify instances.
    pub fn check_constraint(&self, constraint: &HornConstraint) -> Vec<Violation> {
        let mut violations = Vec::new();
        let classes = constraint.classes.clone();
        let mut binding: Vec<(ClassId, ObjectId)> = Vec::new();
        self.enumerate(constraint, &classes, &mut binding, &mut violations);
        violations
    }

    fn enumerate(
        &self,
        constraint: &HornConstraint,
        remaining: &[ClassId],
        binding: &mut Vec<(ClassId, ObjectId)>,
        violations: &mut Vec<Violation>,
    ) {
        let Some((&next, rest)) = pick_next(self, constraint, remaining, binding) else {
            // Complete binding: evaluate the clause.
            if self.eval_all(&constraint.antecedents, binding)
                && !self.eval_pred(&constraint.consequent, binding)
            {
                violations.push(Violation { binding: binding.clone() });
            }
            return;
        };
        // Candidate objects for `next`: via a relationship to a bound class
        // when possible, otherwise the whole extent.
        let candidates: Vec<ObjectId> = self
            .link_candidates(constraint, next, binding)
            .unwrap_or_else(|| (0..self.cardinality(next) as u32).map(ObjectId).collect());
        for oid in candidates {
            // The same object must be consistent with *all* relationships to
            // already-bound classes.
            if !self.consistent(constraint, next, oid, binding) {
                continue;
            }
            binding.push((next, oid));
            self.enumerate(constraint, rest, binding, violations);
            binding.pop();
        }
    }

    fn link_candidates(
        &self,
        constraint: &HornConstraint,
        class: ClassId,
        binding: &[(ClassId, ObjectId)],
    ) -> Option<Vec<ObjectId>> {
        for &rel in &constraint.relationships {
            let def = self.catalog.relationship(rel).ok()?;
            let other = def.other_end(class)?;
            if let Some(&(_, oid)) = binding.iter().find(|(c, _)| *c == other) {
                if other != class {
                    return self.traverse(rel, other, oid).ok().map(|s| s.to_vec());
                }
            }
        }
        None
    }

    fn consistent(
        &self,
        constraint: &HornConstraint,
        class: ClassId,
        oid: ObjectId,
        binding: &[(ClassId, ObjectId)],
    ) -> bool {
        for &rel in &constraint.relationships {
            let Ok(def) = self.catalog.relationship(rel) else {
                return false;
            };
            let (a, b) = def.classes();
            if a == b {
                continue; // self-relationship consistency is skipped
            }
            let other = if a == class {
                b
            } else if b == class {
                a
            } else {
                continue;
            };
            if let Some(&(_, other_oid)) = binding.iter().find(|(c, _)| *c == other) {
                match self.traverse(rel, class, oid) {
                    Ok(neigh) if neigh.contains(&other_oid) => {}
                    _ => return false,
                }
            }
        }
        true
    }

    fn eval_all(&self, preds: &[Predicate], binding: &[(ClassId, ObjectId)]) -> bool {
        preds.iter().all(|p| self.eval_pred(p, binding))
    }

    fn eval_pred(&self, pred: &Predicate, binding: &[(ClassId, ObjectId)]) -> bool {
        let lookup = |attr: AttrRef| -> Option<&Value> {
            let (_, oid) = binding.iter().find(|(c, _)| *c == attr.class)?;
            self.value(attr, *oid).ok()
        };
        match pred {
            Predicate::Sel(s) => lookup(s.attr).map(|v| s.eval(v)).unwrap_or(false),
            Predicate::Join(j) => match (lookup(j.left), lookup(j.right)) {
                (Some(l), Some(r)) => j.eval(l, r),
                _ => false,
            },
        }
    }
}

fn pick_next<'a>(
    _db: &Database,
    _constraint: &HornConstraint,
    remaining: &'a [ClassId],
    _binding: &[(ClassId, ObjectId)],
) -> Option<(&'a ClassId, &'a [ClassId])> {
    // Enumeration order only affects cost, never correctness:
    // `link_candidates` narrows candidates when a relationship to a bound
    // class exists and `consistent` re-checks every relationship regardless.
    remaining.split_first()
}

/// Staged loader for [`Database`].
#[derive(Debug)]
pub struct DatabaseBuilder {
    catalog: Arc<Catalog>,
    extents: Vec<Extent>,
    pending_links: Vec<(RelId, ObjectId, ObjectId)>,
}

impl DatabaseBuilder {
    pub fn new(catalog: Arc<Catalog>) -> Self {
        let extents = vec![Vec::new(); catalog.class_count()];
        Self { catalog, extents, pending_links: Vec::new() }
    }

    /// Inserts a tuple, validating arity and types.
    pub fn insert(&mut self, class: ClassId, tuple: Vec<Value>) -> Result<ObjectId, StorageError> {
        validate_tuple(&self.catalog, class, &tuple)?;
        let extent = &mut self.extents[class.index()];
        let oid = ObjectId(extent.len() as u32);
        extent.push(tuple);
        Ok(oid)
    }

    /// Links `left` (an object of the relationship's left class) to `right`.
    pub fn link(
        &mut self,
        rel: RelId,
        left: ObjectId,
        right: ObjectId,
    ) -> Result<(), StorageError> {
        let def = self.catalog.relationship(rel)?;
        let lcard = self.extents[def.left.class.index()].len();
        let rcard = self.extents[def.right.class.index()].len();
        if left.index() >= lcard {
            return Err(StorageError::UnknownObject { class: def.left.class, object: left });
        }
        if right.index() >= rcard {
            return Err(StorageError::UnknownObject { class: def.right.class, object: right });
        }
        self.pending_links.push((rel, left, right));
        Ok(())
    }

    /// Builds indexes, statistics and link structures; enforces integrity.
    pub fn finalize(self, options: IntegrityOptions) -> Result<Database, StorageError> {
        let mut pairs: Vec<Vec<(ObjectId, ObjectId)>> =
            vec![Vec::new(); self.catalog.relationship_count()];
        for (rel, l, r) in &self.pending_links {
            pairs[rel.index()].push((*l, *r));
        }
        assemble(self.catalog, self.extents, pairs, Some(options), 0)
    }
}

/// Validates one tuple against a class declaration (arity + types).
fn validate_tuple(catalog: &Catalog, class: ClassId, tuple: &[Value]) -> Result<(), StorageError> {
    let def = catalog.class(class)?;
    if tuple.len() != def.attributes.len() {
        return Err(StorageError::ArityMismatch {
            class,
            expected: def.attributes.len(),
            got: tuple.len(),
        });
    }
    for (i, (v, a)) in tuple.iter().zip(&def.attributes).enumerate() {
        if v.data_type() != a.ty {
            return Err(StorageError::TypeMismatch {
                class,
                attr: i,
                context: format!("expected {}, got {}", a.ty, v.data_type()),
            });
        }
    }
    Ok(())
}

/// Adds the new tuple's entries to every declared index of its class.
fn index_insert(indexes: &mut [Option<AttrIndex>], tuple: &[Value], oid: ObjectId) {
    for (ai, slot) in indexes.iter_mut().enumerate() {
        if let Some(ix) = slot {
            ix.insert(tuple[ai].clone(), oid);
        }
    }
}

/// Removes the deleted tuple's index entries and — when the deletion
/// renumbered the class's last object — re-keys the moved tuple's entries
/// from `last` to `object`, preserving the ascending-oid posting order.
fn index_delete(
    indexes: &mut [Option<AttrIndex>],
    dead: &[Value],
    object: ObjectId,
    moved: Option<&[Value]>,
    last: ObjectId,
) {
    for (ai, slot) in indexes.iter_mut().enumerate() {
        if let Some(ix) = slot {
            ix.remove(&dead[ai], object);
            if let Some(m) = moved {
                ix.remove(&m[ai], last);
                ix.insert_sorted(m[ai].clone(), object);
            }
        }
    }
}

/// Rebuilds one self-relationship link table around the deletion of
/// `object` (edges removed, `last` renumbered onto `object`). O(this
/// relationship's links) — still O(touched), both sides are the deleted
/// object's class.
fn rebuild_self_links(lk: &RelLinks, object: ObjectId) -> RelLinks {
    let last = ObjectId((lk.left_cardinality() - 1) as u32);
    let mut pairs: Vec<(ObjectId, ObjectId)> = lk.pairs().collect();
    pairs.retain(|&(l, r)| l != object && r != object);
    if object != last {
        for p in pairs.iter_mut() {
            if p.0 == last {
                p.0 = object;
            }
            if p.1 == last {
                p.1 = object;
            }
        }
    }
    let n = lk.left_cardinality() - 1;
    let mut out = RelLinks::new(n, n);
    for (l, r) in pairs {
        out.add(l, r);
    }
    out.canonicalize();
    out
}

/// Builds every relationship's link table from flat pairs, in canonical
/// order.
fn build_links(
    catalog: &Catalog,
    extents: &[Arc<Extent>],
    pairs: &[Vec<(ObjectId, ObjectId)>],
) -> Vec<Arc<RelLinks>> {
    let mut links: Vec<RelLinks> = catalog
        .relationships()
        .map(|(_, def)| {
            RelLinks::new(
                extents[def.left.class.index()].len(),
                extents[def.right.class.index()].len(),
            )
        })
        .collect();
    for (rel, rel_pairs) in pairs.iter().enumerate() {
        for &(l, r) in rel_pairs {
            links[rel].add(l, r);
        }
        links[rel].canonicalize();
    }
    links.into_iter().map(Arc::new).collect()
}

/// Builds every class's declared indexes from its extent.
pub(crate) fn build_indexes(
    catalog: &Catalog,
    extents: &[Arc<Extent>],
) -> Vec<Arc<Vec<Option<AttrIndex>>>> {
    let mut indexes = Vec::with_capacity(catalog.class_count());
    for (cid, cdef) in catalog.classes() {
        let mut per_attr: Vec<Option<AttrIndex>> = Vec::with_capacity(cdef.attributes.len());
        for (ai, adef) in cdef.attributes.iter().enumerate() {
            per_attr.push(adef.index.map(|kind| {
                let mut ix = AttrIndex::new(kind);
                for (oi, tuple) in extents[cid.index()].iter().enumerate() {
                    ix.insert(tuple[ai].clone(), ObjectId(oi as u32));
                }
                ix
            }));
        }
        indexes.push(Arc::new(per_attr));
    }
    indexes
}

/// Assembles a snapshot from logical state: builds link structures, enforces
/// integrity declarations over **every** relationship (when requested),
/// builds the declared indexes and computes statistics from scratch. The
/// load path ([`DatabaseBuilder::finalize`]); the write paths share its
/// parts.
fn assemble(
    catalog: Arc<Catalog>,
    extents: Vec<Extent>,
    pairs: Vec<Vec<(ObjectId, ObjectId)>>,
    integrity: Option<IntegrityOptions>,
    data_version: u64,
) -> Result<Database, StorageError> {
    let extents: Vec<Arc<Extent>> = extents.into_iter().map(Arc::new).collect();
    let links = build_links(&catalog, &extents, &pairs);
    if let Some(options) = integrity {
        for (rel, def) in catalog.relationships() {
            enforce_rel_integrity(rel, def, &links[rel.index()], options)?;
        }
    }
    let indexes = build_indexes(&catalog, &extents);
    let stats = build_statistics(&catalog, &extents, &links);
    Ok(Database { catalog, extents, indexes, links, stats, data_version })
}

/// Checks one relationship's total-participation and to-one declarations.
fn enforce_rel_integrity(
    rel: RelId,
    def: &RelationshipDef,
    lk: &RelLinks,
    options: IntegrityOptions,
) -> Result<(), StorageError> {
    if options.enforce_total_participation {
        if def.left.total {
            if let Some(o) = lk.unlinked_left().next() {
                return Err(StorageError::TotalParticipationViolated {
                    rel,
                    class: def.left.class,
                    object: o,
                });
            }
        }
        if def.right.total {
            if let Some(o) = lk.unlinked_right().next() {
                return Err(StorageError::TotalParticipationViolated {
                    rel,
                    class: def.right.class,
                    object: o,
                });
            }
        }
    }
    if options.enforce_multiplicity {
        // `left.multiplicity == One` means each left object links to
        // at most one right object.
        if def.left.multiplicity == Multiplicity::One && lk.max_left_fanout() > 1 {
            let object = (0..lk.left_cardinality() as u32)
                .map(ObjectId)
                .find(|o| lk.from_left(*o).len() > 1)
                .expect("fanout > 1 implies a witness");
            return Err(StorageError::MultiplicityViolated {
                rel,
                class: def.left.class,
                object,
                links: lk.from_left(object).len(),
            });
        }
        if def.right.multiplicity == Multiplicity::One && lk.max_right_fanout() > 1 {
            let object = (0..lk.right_cardinality() as u32)
                .map(ObjectId)
                .find(|o| lk.from_right(*o).len() > 1)
                .expect("fanout > 1 implies a witness");
            return Err(StorageError::MultiplicityViolated {
                rel,
                class: def.right.class,
                object,
                links: lk.from_right(object).len(),
            });
        }
    }
    Ok(())
}

/// One class's statistics from one extent scan — the unit both the
/// from-scratch [`build_statistics`] and the per-class folding of
/// [`Database::with_writes`] are built from, so the two can never drift.
fn class_statistics(cdef: &ClassDef, extent: &Extent) -> ClassStats {
    let attrs = (0..cdef.attributes.len())
        .map(|ai| {
            let mut counts: HashMap<&Value, u64> = HashMap::new();
            let mut min: Option<&Value> = None;
            let mut max: Option<&Value> = None;
            for tuple in extent {
                let v = &tuple[ai];
                *counts.entry(v).or_insert(0) += 1;
                min = Some(match min {
                    None => v,
                    Some(m) => {
                        if v.compare(m) == Some(std::cmp::Ordering::Less) {
                            v
                        } else {
                            m
                        }
                    }
                });
                max = Some(match max {
                    None => v,
                    Some(m) => {
                        if v.compare(m) == Some(std::cmp::Ordering::Greater) {
                            v
                        } else {
                            m
                        }
                    }
                });
            }
            // Top-3 most common values, ties broken by rendering for
            // determinism.
            let mut mcvs: Vec<(Value, u64)> =
                counts.iter().map(|(v, c)| ((*v).clone(), *c)).collect();
            mcvs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.to_string().cmp(&b.0.to_string())));
            mcvs.truncate(3);
            AttrStats {
                rows: extent.len() as u64,
                distinct: counts.len() as u64,
                min: min.cloned(),
                max: max.cloned(),
                mcvs,
                histogram: Vec::new(),
            }
        })
        .collect();
    ClassStats { cardinality: extent.len() as u64, attrs }
}

/// One relationship's statistics — O(1) off the link table's counters.
fn rel_statistics(lk: &RelLinks) -> RelStats {
    RelStats {
        links: lk.link_count(),
        avg_left_fanout: if lk.left_cardinality() == 0 {
            0.0
        } else {
            lk.link_count() as f64 / lk.left_cardinality() as f64
        },
        avg_right_fanout: if lk.right_cardinality() == 0 {
            0.0
        } else {
            lk.link_count() as f64 / lk.right_cardinality() as f64
        },
    }
}

/// The from-scratch statistics build: every class, every relationship. The
/// initial load uses it; incremental writes fold per-class deltas instead
/// and fall back to it only through [`Database::rebuild_statistics`].
pub(crate) fn build_statistics(
    catalog: &Catalog,
    extents: &[Arc<Extent>],
    links: &[Arc<RelLinks>],
) -> StatsSnapshot {
    let classes = catalog
        .classes()
        .map(|(cid, cdef)| class_statistics(cdef, &extents[cid.index()]))
        .collect();
    let relationships = links.iter().map(|lk| rel_statistics(lk)).collect();
    StatsSnapshot { classes, relationships }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::example::figure21;
    use sqo_constraints::figure22;
    use sqo_query::CompOp;

    fn mini_db() -> (Arc<Catalog>, Database) {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        let cargo = catalog.class_id("cargo").unwrap();
        let vehicle = catalog.class_id("vehicle").unwrap();
        let sfi = b.insert(supplier, vec![Value::str("SFI"), Value::str("1 Food St")]).unwrap();
        let ntuc = b.insert(supplier, vec![Value::str("NTUC"), Value::str("2 Mart Ave")]).unwrap();
        let frozen = b
            .insert(cargo, vec![Value::Int(100), Value::str("frozen food"), Value::Int(40)])
            .unwrap();
        let fresh = b
            .insert(cargo, vec![Value::Int(101), Value::str("fresh fruit"), Value::Int(7)])
            .unwrap();
        let reefer = b
            .insert(vehicle, vec![Value::Int(1), Value::str("refrigerated truck"), Value::Int(3)])
            .unwrap();
        let flatbed =
            b.insert(vehicle, vec![Value::Int(2), Value::str("flatbed"), Value::Int(1)]).unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        b.link(supplies, frozen, sfi).unwrap();
        b.link(supplies, fresh, ntuc).unwrap();
        b.link(collects, frozen, reefer).unwrap();
        b.link(collects, fresh, flatbed).unwrap();
        let db = b
            .finalize(IntegrityOptions {
                enforce_total_participation: false, // other classes are empty
                enforce_multiplicity: true,
            })
            .unwrap();
        (catalog, db)
    }

    #[test]
    fn insert_and_lookup() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        assert_eq!(db.cardinality(cargo), 2);
        let desc = catalog.attr_ref("cargo", "desc").unwrap();
        assert_eq!(db.value(desc, ObjectId(0)).unwrap(), &Value::str("frozen food"));
        assert!(db.value(desc, ObjectId(9)).is_err());
    }

    #[test]
    fn arity_and_type_validation() {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let cargo = catalog.class_id("cargo").unwrap();
        assert!(matches!(
            b.insert(cargo, vec![Value::Int(1)]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            b.insert(cargo, vec![Value::str("x"), Value::str("d"), Value::Int(1)]),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn traversal_both_directions() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        let supplier = catalog.class_id("supplier").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        assert_eq!(db.traverse(supplies, cargo, ObjectId(0)).unwrap(), &[ObjectId(0)]);
        assert_eq!(db.traverse(supplies, supplier, ObjectId(0)).unwrap(), &[ObjectId(0)]);
        let engine = catalog.class_id("engine").unwrap();
        assert!(db.traverse(supplies, engine, ObjectId(0)).is_err());
    }

    #[test]
    fn indexes_built_from_declarations() {
        let (catalog, db) = mini_db();
        let name = catalog.attr_ref("supplier", "name").unwrap();
        let ix = db.index(name).expect("supplier.name is hash-indexed");
        assert_eq!(ix.probe_eq(&Value::str("SFI")), &[ObjectId(0)]);
        let desc = catalog.attr_ref("cargo", "desc").unwrap();
        assert!(db.index(desc).is_none(), "cargo.desc is unindexed");
    }

    #[test]
    fn stats_collected() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        assert_eq!(db.stats().cardinality(cargo), 2);
        let qty = catalog.attr_ref("cargo", "quantity").unwrap();
        let s = db.stats().attr(qty).unwrap();
        assert_eq!(s.distinct, 2);
        assert_eq!(s.min, Some(Value::Int(7)));
        assert_eq!(s.max, Some(Value::Int(40)));
        let supplies = catalog.rel_id("supplies").unwrap();
        assert_eq!(db.stats().relationship(supplies).unwrap().links, 2);
    }

    #[test]
    fn multiplicity_enforced() {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let supplier = catalog.class_id("supplier").unwrap();
        let cargo = catalog.class_id("cargo").unwrap();
        let s1 = b.insert(supplier, vec![Value::str("A"), Value::str("x")]).unwrap();
        let s2 = b.insert(supplier, vec![Value::str("B"), Value::str("y")]).unwrap();
        let c1 = b.insert(cargo, vec![Value::Int(1), Value::str("d"), Value::Int(1)]).unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        // cargo is the to-one side: two suppliers for one cargo violates.
        b.link(supplies, c1, s1).unwrap();
        b.link(supplies, c1, s2).unwrap();
        let err = b.finalize(IntegrityOptions {
            enforce_total_participation: false,
            enforce_multiplicity: true,
        });
        assert!(matches!(err, Err(StorageError::MultiplicityViolated { .. })));
    }

    #[test]
    fn total_participation_enforced() {
        let catalog = Arc::new(figure21().unwrap());
        let mut b = Database::builder(Arc::clone(&catalog));
        let cargo = catalog.class_id("cargo").unwrap();
        // A cargo with no supplier violates `supplies` (total on cargo side).
        b.insert(cargo, vec![Value::Int(1), Value::str("d"), Value::Int(1)]).unwrap();
        let err = b.finalize(IntegrityOptions::default());
        assert!(matches!(err, Err(StorageError::TotalParticipationViolated { .. })));
    }

    #[test]
    fn constraint_checking_finds_violations() {
        let (catalog, db) = mini_db();
        let constraints = figure22(&catalog).unwrap();
        // c1 and c2 hold on the mini instance.
        assert!(db.check_constraint(&constraints[0]).is_empty(), "c1 holds");
        assert!(db.check_constraint(&constraints[1]).is_empty(), "c2 holds");
        // A made-up constraint that fails: all cargo is frozen food.
        let bogus = sqo_constraints::ConstraintBuilder::new(&catalog, "bogus")
            .scope("cargo")
            .then("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        let v = db.check_constraint(&bogus);
        assert_eq!(v.len(), 1, "the fresh-fruit cargo violates");
        assert_eq!(v[0].binding[0].1, ObjectId(1));
    }

    #[test]
    fn write_insert_extends_extent_indexes_links_and_stats() {
        let (catalog, db) = mini_db();
        assert_eq!(db.data_version(), 0);
        let cargo = catalog.class_id("cargo").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        // A third cargo: frozen food from SFI on the reefer (mirrors row 0).
        let (next, receipt) = db
            .with_writes(
                &[DataWrite::Insert {
                    class: cargo,
                    tuple: vec![Value::Int(102), Value::str("frozen food"), Value::Int(40)],
                    links: vec![(supplies, ObjectId(0)), (collects, ObjectId(0))],
                }],
                None,
            )
            .unwrap();
        assert_eq!(receipt.inserted, vec![ObjectId(2)]);
        assert!(receipt.moves.is_empty());
        assert_eq!(receipt.touched_classes, vec![cargo]);
        assert_eq!(next.data_version(), 1);
        assert_eq!(next.cardinality(cargo), 3);
        assert_eq!(db.cardinality(cargo), 2, "source snapshot untouched");
        // Links wired both ways.
        let supplier = catalog.class_id("supplier").unwrap();
        assert_eq!(next.traverse(supplies, cargo, ObjectId(2)).unwrap(), &[ObjectId(0)]);
        assert_eq!(
            next.traverse(supplies, supplier, ObjectId(0)).unwrap(),
            &[ObjectId(0), ObjectId(2)]
        );
        // Indexes patched over the new extent.
        let cno = catalog.attr_ref("cargo", "code").unwrap();
        let ix = next.index(cno).expect("cargo.code is indexed");
        assert_eq!(ix.probe_eq(&Value::Int(102)), &[ObjectId(2)]);
        // Statistics track the write (cardinality estimates stay honest).
        assert_eq!(next.stats().cardinality(cargo), 3);
        assert_eq!(next.stats().relationship(supplies).unwrap().links, 3);
    }

    #[test]
    fn untouched_shards_are_shared_by_pointer() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        let supplier = catalog.class_id("supplier").unwrap();
        let vehicle = catalog.class_id("vehicle").unwrap();
        let belongs_to = catalog.rel_id("belongs_to").unwrap();
        let (next, _) = db
            .with_writes(
                &[DataWrite::Insert {
                    class: cargo,
                    tuple: vec![Value::Int(102), Value::str("frozen food"), Value::Int(40)],
                    links: vec![],
                }],
                None,
            )
            .unwrap();
        // The touched class got its own extent/index shards…
        assert!(!next.shares_extent_with(&db, cargo));
        assert!(!Arc::ptr_eq(&next.indexes[cargo.index()], &db.indexes[cargo.index()]));
        // …every other class is shared by pointer…
        for c in [supplier, vehicle] {
            assert!(next.shares_extent_with(&db, c), "{}", catalog.class_name(c));
            assert!(Arc::ptr_eq(&next.indexes[c.index()], &db.indexes[c.index()]));
        }
        // …and relationships not incident to cargo keep their link tables.
        assert!(Arc::ptr_eq(&next.links[belongs_to.index()], &db.links[belongs_to.index()]));
        for rel in [catalog.rel_id("supplies").unwrap(), catalog.rel_id("collects").unwrap()] {
            assert!(!Arc::ptr_eq(&next.links[rel.index()], &db.links[rel.index()]));
        }
    }

    #[test]
    fn write_delete_renumbers_the_last_object() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let desc = catalog.attr_ref("cargo", "desc").unwrap();
        // Delete cargo 0 (frozen food): cargo 1 (fresh fruit) takes id 0.
        let (next, receipt) = db
            .with_writes(&[DataWrite::Delete { class: cargo, object: ObjectId(0) }], None)
            .unwrap();
        assert_eq!(next.cardinality(cargo), 1);
        assert_eq!(receipt.moves, vec![(cargo, ObjectId(1), ObjectId(0))]);
        assert_eq!(next.value(desc, ObjectId(0)).unwrap(), &Value::str("fresh fruit"));
        // The renumbered object's links followed it: fresh fruit ← NTUC (1).
        assert_eq!(next.traverse(supplies, cargo, ObjectId(0)).unwrap(), &[ObjectId(1)]);
        // The deleted object's edges are gone from the other side too.
        let supplier = catalog.class_id("supplier").unwrap();
        assert!(next.traverse(supplies, supplier, ObjectId(0)).unwrap().is_empty());
        // Index entries for the deleted tuple are gone.
        let cno = catalog.attr_ref("cargo", "code").unwrap();
        if let Some(ix) = next.index(cno) {
            assert!(ix.probe_eq(&Value::Int(100)).is_empty());
            assert_eq!(ix.probe_eq(&Value::Int(101)), &[ObjectId(0)]);
        }
    }

    #[test]
    fn write_update_patches_tuple_index_and_stats_in_place() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let code = catalog.attr_ref("cargo", "code").unwrap();
        let (next, receipt) = db
            .with_writes(
                &[DataWrite::Update {
                    class: cargo,
                    object: ObjectId(0),
                    attr: code.attr,
                    value: Value::Int(900),
                }],
                // Updates never touch links, so full integrity enforcement
                // is safe even on this partially-linked mini instance.
                Some(IntegrityOptions::default()),
            )
            .unwrap();
        assert_eq!(receipt.touched_classes, vec![cargo]);
        assert!(receipt.inserted.is_empty() && receipt.moves.is_empty());
        assert_eq!(next.value(code, ObjectId(0)).unwrap(), &Value::Int(900));
        assert_eq!(db.value(code, ObjectId(0)).unwrap(), &Value::Int(100), "source untouched");
        // The object kept its id and links.
        assert_eq!(next.traverse(supplies, cargo, ObjectId(0)).unwrap(), &[ObjectId(0)]);
        // The index moved the entry…
        let ix = next.index(code).expect("cargo.code is indexed");
        assert!(ix.probe_eq(&Value::Int(100)).is_empty());
        assert_eq!(ix.probe_eq(&Value::Int(900)), &[ObjectId(0)]);
        // …and the class statistics see the new value distribution.
        assert_eq!(next.stats().attr(code).unwrap().max, Some(Value::Int(900)));
        // Validation: unknown attribute, wrong type, unknown object.
        assert!(matches!(
            db.with_writes(
                &[DataWrite::Update {
                    class: cargo,
                    object: ObjectId(0),
                    attr: AttrId(9),
                    value: Value::Int(1),
                }],
                None,
            ),
            Err(StorageError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            db.with_writes(
                &[DataWrite::Update {
                    class: cargo,
                    object: ObjectId(0),
                    attr: code.attr,
                    value: Value::str("nope"),
                }],
                None,
            ),
            Err(StorageError::TypeMismatch { .. })
        ));
        assert!(matches!(
            db.with_writes(
                &[DataWrite::Update {
                    class: cargo,
                    object: ObjectId(7),
                    attr: code.attr,
                    value: Value::Int(1),
                }],
                None,
            ),
            Err(StorageError::UnknownObject { .. })
        ));
    }

    #[test]
    fn write_link_and_unlink_edges() {
        let (catalog, db) = mini_db();
        let collects = catalog.rel_id("collects").unwrap();
        let cargo = catalog.class_id("cargo").unwrap();
        // Put the frozen cargo on the flatbed too, then take it off again.
        let (linked, _) = db
            .with_writes(
                &[DataWrite::Link { rel: collects, left: ObjectId(0), right: ObjectId(1) }],
                None,
            )
            .unwrap();
        assert_eq!(
            linked.traverse(collects, cargo, ObjectId(0)).unwrap(),
            &[ObjectId(0), ObjectId(1)]
        );
        let (unlinked, _) = linked
            .with_writes(
                &[DataWrite::Unlink { rel: collects, left: ObjectId(0), right: ObjectId(1) }],
                None,
            )
            .unwrap();
        assert_eq!(unlinked.traverse(collects, cargo, ObjectId(0)).unwrap(), &[ObjectId(0)]);
        assert_eq!(unlinked.data_version(), 2);
        assert!(matches!(
            unlinked.with_writes(
                &[DataWrite::Unlink { rel: collects, left: ObjectId(0), right: ObjectId(1) }],
                None,
            ),
            Err(StorageError::LinkNotFound { .. })
        ));
    }

    #[test]
    fn inserted_ids_track_renumbering_by_later_deletes() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        // Insert a third cargo (id 2), then delete cargo 0: the insert is
        // swap-renumbered to id 0, and the receipt must say so.
        let (next, receipt) = db
            .with_writes(
                &[
                    DataWrite::Insert {
                        class: cargo,
                        tuple: vec![Value::Int(102), Value::str("canned soup"), Value::Int(9)],
                        links: vec![(supplies, ObjectId(0)), (collects, ObjectId(0))],
                    },
                    DataWrite::Delete { class: cargo, object: ObjectId(0) },
                ],
                None,
            )
            .unwrap();
        assert_eq!(receipt.inserted, vec![ObjectId(0)], "the insert's id followed the swap-remove");
        assert_eq!(receipt.moves, vec![(cargo, ObjectId(2), ObjectId(0))]);
        let desc = catalog.attr_ref("cargo", "desc").unwrap();
        assert_eq!(next.value(desc, receipt.inserted[0]).unwrap(), &Value::str("canned soup"));
        assert_eq!(next.cardinality(cargo), 2);
    }

    #[test]
    fn write_batches_are_atomic_and_validated() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        // Second write of the batch fails: nothing is applied.
        let err = db.with_writes(
            &[
                DataWrite::Insert {
                    class: cargo,
                    tuple: vec![Value::Int(103), Value::str("d"), Value::Int(1)],
                    links: vec![(supplies, ObjectId(0))],
                },
                DataWrite::Insert { class: cargo, tuple: vec![Value::Int(1)], links: vec![] },
            ],
            None,
        );
        assert!(matches!(err, Err(StorageError::ArityMismatch { .. })));
        assert_eq!(db.cardinality(cargo), 2);
        // Linking a new object against an unknown neighbor fails.
        let err = db.with_writes(
            &[DataWrite::Insert {
                class: cargo,
                tuple: vec![Value::Int(104), Value::str("d"), Value::Int(1)],
                links: vec![(supplies, ObjectId(9))],
            }],
            None,
        );
        assert!(matches!(err, Err(StorageError::UnknownObject { .. })));
    }

    #[test]
    fn insert_link_target_colliding_with_the_fresh_oid_is_validated_against_the_right_class() {
        // Regression: inserting on the *right* side of a relationship with a
        // link target whose id numerically equals the fresh oid used to be
        // validated against the wrong class (and then crashed link
        // assembly). It must be a clean UnknownObject on the opposite class.
        let (catalog, db) = mini_db();
        let supplier = catalog.class_id("supplier").unwrap();
        let cargo = catalog.class_id("cargo").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        // New supplier gets oid 2; cargo 2 does not exist.
        let err = db.with_writes(
            &[DataWrite::Insert {
                class: supplier,
                tuple: vec![Value::str("X"), Value::str("addr")],
                links: vec![(supplies, ObjectId(2))],
            }],
            None,
        );
        assert_eq!(
            err.err(),
            Some(StorageError::UnknownObject { class: cargo, object: ObjectId(2) })
        );
    }

    #[test]
    fn write_integrity_enforcement_rejects_violating_batches() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let options = IntegrityOptions {
            enforce_total_participation: false, // other classes are empty
            enforce_multiplicity: true,
        };
        // A second supplier for cargo 0 violates the to-one side.
        let err = db.with_writes(
            &[DataWrite::Link { rel: supplies, left: ObjectId(0), right: ObjectId(1) }],
            Some(options),
        );
        assert!(matches!(err, Err(StorageError::MultiplicityViolated { .. })));
        // The same batch passes when enforcement is off.
        assert!(db
            .with_writes(
                &[DataWrite::Link { rel: supplies, left: ObjectId(0), right: ObjectId(1) }],
                None,
            )
            .is_ok());
        // An unlinked cargo insert trips total participation when enforced.
        let err = db.with_writes(
            &[DataWrite::Insert {
                class: cargo,
                tuple: vec![Value::Int(105), Value::str("d"), Value::Int(1)],
                links: vec![],
            }],
            Some(IntegrityOptions::default()),
        );
        assert!(matches!(err, Err(StorageError::TotalParticipationViolated { .. })));
    }

    #[test]
    fn duplicating_an_instance_preserves_constraints() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        // Duplicate cargo 0 with its links — every figure 2.2 constraint
        // that held keeps holding (the dup's bindings mirror the source's).
        let tuple = db.tuple(cargo, ObjectId(0)).unwrap().to_vec();
        let links: Vec<_> = [supplies, collects]
            .into_iter()
            .map(|rel| (rel, db.traverse(rel, cargo, ObjectId(0)).unwrap()[0]))
            .collect();
        let (next, _) =
            db.with_writes(&[DataWrite::Insert { class: cargo, tuple, links }], None).unwrap();
        for c in figure22(&catalog).unwrap() {
            assert!(next.check_constraint(&c).is_empty(), "{} violated after dup", c.name);
        }
    }

    #[test]
    fn incremental_write_matches_the_full_rebuild_oracle() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        let vehicle = catalog.class_id("vehicle").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        let code = catalog.attr_ref("cargo", "code").unwrap();
        // A batch exercising every write kind at once.
        let batch = vec![
            DataWrite::Insert {
                class: cargo,
                tuple: vec![Value::Int(102), Value::str("frozen food"), Value::Int(40)],
                links: vec![(supplies, ObjectId(0)), (collects, ObjectId(0))],
            },
            DataWrite::Update {
                class: cargo,
                object: ObjectId(1),
                attr: code.attr,
                value: Value::Int(555),
            },
            DataWrite::Link { rel: collects, left: ObjectId(1), right: ObjectId(0) },
            DataWrite::Delete { class: cargo, object: ObjectId(0) },
            DataWrite::Unlink { rel: collects, left: ObjectId(1), right: ObjectId(0) },
        ];
        let (inc, r1) = db.with_writes(&batch, None).unwrap();
        let (full, r2) = db.with_writes_full(&batch, None).unwrap();
        assert_eq!(r1, r2, "receipts agree");
        assert_eq!(inc.data_version(), full.data_version());
        for (cid, _) in catalog.classes() {
            assert_eq!(inc.cardinality(cid), full.cardinality(cid));
            for o in 0..inc.cardinality(cid) as u32 {
                assert_eq!(
                    inc.tuple(cid, ObjectId(o)).unwrap(),
                    full.tuple(cid, ObjectId(o)).unwrap()
                );
            }
        }
        for (rel, def) in catalog.relationships() {
            for o in 0..inc.cardinality(def.left.class) as u32 {
                assert_eq!(
                    inc.traverse(rel, def.left.class, ObjectId(o)).unwrap(),
                    full.traverse(rel, def.left.class, ObjectId(o)).unwrap(),
                    "{} left {o}",
                    catalog.rel_name(rel)
                );
            }
        }
        let ix_inc = inc.index(code).unwrap();
        let ix_full = full.index(code).unwrap();
        for v in [100, 101, 102, 555] {
            assert_eq!(ix_inc.probe_eq(&Value::Int(v)), ix_full.probe_eq(&Value::Int(v)));
        }
        assert_eq!(inc.stats(), full.stats());
        // Vehicle was never touched: its shard is shared with the source.
        assert!(inc.shares_extent_with(&db, vehicle));
    }

    #[test]
    fn folded_statistics_match_the_from_scratch_rebuild() {
        let (catalog, db) = mini_db();
        let cargo = catalog.class_id("cargo").unwrap();
        let mut current = db;
        // A chain of writes; after each, the folded stats must equal a full
        // rescan of the successor.
        let batches = vec![
            vec![DataWrite::Insert {
                class: cargo,
                tuple: vec![Value::Int(300), Value::str("frozen food"), Value::Int(12)],
                links: vec![],
            }],
            vec![DataWrite::Update {
                class: cargo,
                object: ObjectId(0),
                attr: catalog.attr_ref("cargo", "quantity").unwrap().attr,
                value: Value::Int(99),
            }],
            vec![DataWrite::Delete { class: cargo, object: ObjectId(0) }],
        ];
        for batch in batches {
            let (next, _) = current.with_writes(&batch, None).unwrap();
            assert_eq!(next.stats(), &next.rebuild_statistics());
            current = next;
        }
    }

    #[test]
    fn constraint_checking_respects_links() {
        let (catalog, db) = mini_db();
        // "Flatbeds only carry fresh fruit" — true because of the link shape.
        let c = sqo_constraints::ConstraintBuilder::new(&catalog, "flatbed")
            .when("vehicle.desc", CompOp::Eq, "flatbed")
            .via("collects")
            .then("cargo.desc", CompOp::Eq, "fresh fruit")
            .build()
            .unwrap();
        assert!(db.check_constraint(&c).is_empty());
        // "Flatbeds only carry frozen food" — violated by the fresh-fruit link.
        let c2 = sqo_constraints::ConstraintBuilder::new(&catalog, "flatbed2")
            .when("vehicle.desc", CompOp::Eq, "flatbed")
            .via("collects")
            .then("cargo.desc", CompOp::Eq, "frozen food")
            .build()
            .unwrap();
        assert_eq!(db.check_constraint(&c2).len(), 1);
    }
}
