//! End-to-end frontend behavior: burst deduplication, admission-queue
//! shedding, drain-on-shutdown, and stats self-consistency under load.
//!
//! Timing-sensitive (real worker threads, real contention): CI runs this
//! crate `--release`, matching the storage/service precedent.

use std::sync::Arc;

use sqo_frontend::{Frontend, FrontendConfig, Overload};
use sqo_service::QueryService;
use sqo_workload::{paper_scenario, DbSize};

fn service(seed: u64) -> (Arc<QueryService>, Vec<sqo_query::Query>) {
    let s = paper_scenario(DbSize::Db1, seed);
    (Arc::new(QueryService::new(Arc::new(s.store), Arc::new(s.db))), s.queries)
}

/// A cold burst of identical queries runs ~one optimization, and every
/// client receives the same multiset of rows.
#[test]
fn cold_burst_on_one_query_optimizes_once() {
    const BURST: usize = 512;
    let (service, queries) = service(3);
    let frontend = Frontend::new(
        Arc::clone(&service),
        FrontendConfig { workers: 4, queue_depth: BURST, p99_bound_us: None },
    );

    let handles: Vec<_> = (0..BURST)
        .map(|_| frontend.submit(&queries[0]).expect("queue sized for the whole burst"))
        .collect();
    let responses: Vec<_> =
        handles.into_iter().map(|h| h.wait().result.expect("burst requests succeed")).collect();
    let reference = service.run(&queries[0]).unwrap();
    for response in &responses {
        assert!(response.results.same_multiset(&reference.results));
    }

    let stats = frontend.shutdown();
    assert_eq!(stats.admitted, BURST as u64);
    assert_eq!(stats.completed, BURST as u64);
    assert_eq!(stats.in_flight, 0);

    let svc = service.stats();
    assert_eq!(svc.optimizations, 1, "the whole burst shares one optimization: {svc:?}");
    assert_eq!(
        svc.singleflight_leaders + svc.singleflight_followers + svc.cache.hits,
        // Every burst request led, followed, or arrived after publication
        // and hit (+1 for the reference run's hit). How the burst splits
        // across the three is scheduling-dependent (on a single core the
        // leader usually publishes inside its first poll and everyone
        // else hits); the deterministic follower-path test lives in
        // sqo-service's singleflight suite.
        BURST as u64 + 1,
        "every request must be classified exactly once: {svc:?}"
    );
}

/// Admissions beyond `queue_depth` shed with `Overload::QueueFull`
/// (reject-newest), and admitted requests still all complete.
#[test]
fn overload_sheds_the_marginal_arrival() {
    let (service, queries) = service(5);
    let frontend = Frontend::new(
        Arc::clone(&service),
        FrontendConfig { workers: 2, queue_depth: 8, p99_bound_us: None },
    );

    // Submit far beyond the queue depth as fast as possible; at least
    // the overshoot beyond depth+completed must shed.
    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for i in 0..256 {
        match frontend.submit(&queries[i % queries.len()]) {
            Ok(handle) => admitted.push(handle),
            Err(Overload::QueueFull) => shed += 1,
            Err(other) => panic!("unexpected shed reason: {other:?}"),
        }
    }
    for handle in admitted {
        assert!(handle.wait().result.is_ok(), "admitted requests are never abandoned");
    }
    let stats = frontend.shutdown();
    assert_eq!(stats.shed_queue_full, shed);
    assert_eq!(stats.admitted, 256 - shed);
    assert_eq!(stats.completed, stats.admitted, "every admitted request completed");
    assert!(stats.in_flight == 0);
}

/// Once the latency window is warm and the p99 estimate exceeds its
/// bound, new arrivals shed with `Overload::LatencyBound`.
#[test]
fn latency_bound_sheds_once_the_estimate_crosses() {
    let (service, queries) = service(7);
    // bypass_cache via a dedicated uncached service: every request pays
    // full optimization, so every recorded latency is comfortably ≥ 1µs
    // and any p99 estimate exceeds a 0µs bound.
    let uncached = Arc::new(QueryService::with_versioned_db(
        service.store(),
        Arc::clone(service.versioned_db()),
        sqo_service::ServiceConfig { bypass_cache: true, ..Default::default() },
    ));
    let frontend = Frontend::new(
        Arc::clone(&uncached),
        FrontendConfig { workers: 2, queue_depth: 4096, p99_bound_us: Some(0) },
    );
    // Fill the estimator window (64 samples) with completed requests; the
    // estimator stays silent until then, so none of these shed.
    let handles: Vec<_> = (0..64)
        .map(|i| {
            frontend
                .submit(&queries[i % queries.len()])
                .expect("no latency shedding before the window warms")
        })
        .collect();
    for handle in handles {
        assert!(handle.wait().result.is_ok());
    }
    // Window warm, every sample over the 0µs bound: the next arrival sheds.
    assert_eq!(frontend.submit(&queries[0]).unwrap_err(), Overload::LatencyBound);
    let stats = frontend.shutdown();
    assert_eq!(stats.shed_latency, 1);
    assert_eq!(stats.admitted, 64);
}

/// After `shutdown` began, nothing new is admitted, but the drain runs
/// every already-admitted request to completion first.
#[test]
fn shutdown_drains_admitted_work() {
    let (service, queries) = service(9);
    let frontend = Frontend::new(
        Arc::clone(&service),
        FrontendConfig { workers: 2, queue_depth: 1024, p99_bound_us: None },
    );
    let handles: Vec<_> = (0..64)
        .map(|i| frontend.submit(&queries[i % queries.len()]).expect("under the bound"))
        .collect();
    let stats = frontend.shutdown();
    assert_eq!(stats.completed, 64, "drain finishes every admitted request");
    assert_eq!(stats.in_flight, 0);
    for handle in handles {
        assert!(handle.try_take().expect("drained before shutdown returned").result.is_ok());
    }
}

/// `ServiceStats` snapshots taken mid-flight under concurrent frontend
/// load stay monotone and self-consistent (hits + misses == accepted).
#[test]
fn service_stats_stay_consistent_under_concurrent_load() {
    let (service, queries) = service(11);
    let frontend = Frontend::new(
        Arc::clone(&service),
        FrontendConfig { workers: 4, queue_depth: 4096, p99_bound_us: None },
    );

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let observer = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = service.stats();
            let mut snapshots = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let now = service.stats();
                assert_eq!(
                    now.accepted,
                    now.cache.hits + now.cache.misses,
                    "mid-flight snapshot must be self-consistent: {now:?}"
                );
                assert!(now.accepted >= last.accepted, "accepted must be monotone");
                assert!(now.cache.hits >= last.cache.hits, "hits must be monotone");
                assert!(now.optimizations >= last.optimizations);
                assert!(now.requests >= last.requests);
                last = now;
                snapshots += 1;
            }
            snapshots
        })
    };

    for round in 0..8 {
        let handles: Vec<_> = (0..256)
            .filter_map(|i| frontend.submit(&queries[(round + i) % queries.len()]).ok())
            .collect();
        for handle in handles {
            let _ = handle.wait();
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    let snapshots = observer.join().expect("observer never tripped an assertion");
    assert!(snapshots > 0);
    frontend.shutdown();
}

/// Regression test for the `completed <= admitted` snapshot invariant:
/// the task body publishes `completed` with Release and stats() reads it
/// first with Acquire, so observing a completion implies observing its
/// admission. The sites used to be Relaxed with an unordered read pair,
/// which held only on x86's strong memory model.
#[test]
fn stats_completed_never_exceeds_admitted() {
    let (service, queries) = service(17);
    let frontend = Frontend::new(
        Arc::clone(&service),
        FrontendConfig { workers: 4, queue_depth: 4096, p99_bound_us: None },
    );

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let snapshots = std::thread::scope(|scope| {
        let watcher = scope.spawn(|| {
            let mut last_completed = 0u64;
            let mut snapshots = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let s = frontend.stats();
                assert!(
                    s.completed <= s.admitted,
                    "torn snapshot: completed {} > admitted {}",
                    s.completed,
                    s.admitted
                );
                assert!(s.completed >= last_completed, "completed must be monotone");
                last_completed = s.completed;
                snapshots += 1;
            }
            snapshots
        });
        for round in 0..6 {
            let handles: Vec<_> = (0..256)
                .filter_map(|i| frontend.submit(&queries[(round + i) % queries.len()]).ok())
                .collect();
            for handle in handles {
                let _ = handle.wait();
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        watcher.join().expect("observer never tripped an assertion")
    });
    assert!(snapshots > 0);
    let last = frontend.shutdown();
    assert_eq!(last.completed, last.admitted, "drained frontend has no stragglers");
    assert_eq!(last.in_flight, 0);
}

/// With `batch_window > 1` a warm burst gathers through *hit flights*:
/// each duplicate either leads one shared execution or follows it, so the
/// whole burst is accounted by the batch counters — and the singleflight
/// counters stay zero, because no miss was deduplicated.
#[test]
fn warm_burst_groups_through_hit_flights() {
    const BURST: usize = 256;
    let (base, queries) = service(13);
    let grouped = Arc::new(QueryService::with_versioned_db(
        base.store(),
        Arc::clone(base.versioned_db()),
        sqo_service::ServiceConfig { batch_window: 8, ..Default::default() },
    ));
    // Warm the plan cache so the burst is pure hit traffic.
    let reference = grouped.run(&queries[0]).unwrap();
    let frontend = Frontend::new(
        Arc::clone(&grouped),
        FrontendConfig { workers: 4, queue_depth: BURST, p99_bound_us: None },
    );
    let handles: Vec<_> = (0..BURST)
        .map(|_| frontend.submit(&queries[0]).expect("queue sized for the whole burst"))
        .collect();
    for handle in handles {
        let done = handle.wait().result.expect("warm burst succeeds");
        assert!(done.cache_hit, "burst requests ride the warmed entry");
        assert!(done.results.same_multiset(&reference.results));
    }
    let stats = frontend.shutdown();
    assert_eq!(stats.completed, BURST as u64);
    let svc = grouped.stats();
    assert_eq!(svc.optimizations, 1, "the warm-up run optimized once, the burst never: {svc:?}");
    assert_eq!(svc.batch_size, BURST as u64, "every burst request joined a hit flight: {svc:?}");
    assert!(
        (1..=BURST as u64).contains(&svc.batch_groups),
        "group count is scheduling-dependent but bounded: {svc:?}"
    );
    assert_eq!(svc.singleflight_leaders, 0, "hit flights are not miss dedup: {svc:?}");
    assert_eq!(svc.singleflight_followers, 0, "{svc:?}");
}
