//! A minimal hand-rolled reactor: a fixed pool of worker threads polling
//! `Pin<Box<dyn Future>>` tasks out of a ready queue, with wakers built on
//! the safe [`std::task::Wake`] trait (no `unsafe`, no RawWaker vtables).
//!
//! Tasks live in a slab arena with a free list; each carries a one-byte
//! scheduling state machine that makes wake-ups race-free:
//!
//! ```text
//!        spawn            pop              Ready/panic
//!   ──► QUEUED ────────► RUNNING ─────────► COMPLETE
//!          ▲             │     │
//!          │ wake        │     │ wake while running
//!          │             ▼     ▼
//!          └─────────── IDLE  NOTIFIED ──► re-queued after the poll
//! ```
//!
//! * `wake` on an IDLE task CASes it to QUEUED and pushes it — exactly one
//!   push per wake-up burst, never a lost one.
//! * `wake` during a poll records NOTIFIED; the polling worker re-queues
//!   the task itself, so a wake racing the `Poll::Pending` return is never
//!   dropped.
//! * A panicking poll completes the task (the panic is contained by
//!   `catch_unwind`) instead of taking the worker thread down.
//!
//! The queue is a `Mutex<VecDeque>` + `Condvar`: idle workers park in the
//! OS, a pool of `min(cores, N)` threads multiplexes any number of logical
//! tasks.

use std::collections::VecDeque;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, Weak};
use std::task::{Context, Poll, Wake, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const COMPLETE: u8 = 4;

/// One spawned logical client. The task *is* its own waker (`Arc<Task>`
/// via [`Wake`]), so a waker outliving the task's arena slot can never
/// wake a stranger that reused the slot — it CASes on this task's own
/// state and finds COMPLETE.
struct Task {
    index: usize,
    state: AtomicU8,
    /// The future, present exactly while the task is alive and not being
    /// polled (the polling worker takes it out, so a panicking poll can
    /// never poison this lock).
    future: Mutex<Option<BoxFuture>>,
    exec: Weak<ExecInner>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        // ordering: Acquire observes the poll outcome the state encodes;
        // pairs with the Release stores in worker_loop/complete.
        let mut state = self.state.load(Ordering::Acquire);
        loop {
            let target = match state {
                IDLE => QUEUED,
                RUNNING => NOTIFIED,
                // Already queued/notified (the pending wake covers this
                // one) or complete (nothing left to run).
                _ => return,
            };
            // ordering: AcqRel on success makes the transition visible to
            // the worker that pops the queue entry this wake produces;
            // Acquire on failure re-reads a coherent state to retry on.
            match self.state.compare_exchange_weak(
                state,
                target,
                Ordering::AcqRel, // ordering: success edge, justified in block above
                Ordering::Acquire, // ordering: failure re-read, justified in block above
            ) {
                Ok(_) => {
                    // Exactly the IDLE→QUEUED winner pushes — one queue
                    // entry per transition, so a task is never popped by
                    // two workers at once. A NOTIFIED park is pushed by
                    // the polling worker instead.
                    if target == QUEUED {
                        if let Some(exec) = self.exec.upgrade() {
                            exec.push_ready(self.index);
                        }
                    }
                    return;
                }
                Err(actual) => state = actual,
            }
        }
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("index", &self.index)
            // ordering: debug display only; no decision is made on it.
            .field("state", &self.state.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Default)]
struct Arena {
    slots: Vec<Option<Arc<Task>>>,
    free: Vec<usize>,
}

#[derive(Debug)]
struct ExecInner {
    ready: Mutex<VecDeque<usize>>,
    /// Signalled on new ready work, on drain, and when the live count
    /// hits zero (both workers and `join` waiters listen here).
    wakeup: Condvar,
    arena: Mutex<Arena>,
    live: AtomicUsize,
    draining: Mutex<bool>,
}

impl ExecInner {
    fn push_ready(&self, index: usize) {
        self.ready.lock().unwrap_or_else(PoisonError::into_inner).push_back(index);
        self.wakeup.notify_one();
    }

    /// The next ready task, or `None` once draining and nothing is live.
    fn next_ready(&self) -> Option<Arc<Task>> {
        let mut ready = self.ready.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(index) = ready.pop_front() {
                let arena = self.arena.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(task) = arena.slots.get(index).and_then(|s| s.clone()) {
                    return Some(task);
                }
                // Slot already retired; keep looking.
                continue;
            }
            let draining = *self.draining.lock().unwrap_or_else(PoisonError::into_inner);
            // ordering: Acquire pairs with complete()'s AcqRel decrement —
            // observing 0 implies every task's completion fully happened.
            if draining && self.live.load(Ordering::Acquire) == 0 {
                // Pass the shutdown baton to the next parked worker.
                self.wakeup.notify_one();
                return None;
            }
            ready = self.wakeup.wait(ready).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn complete(&self, task: &Arc<Task>) {
        // ordering: Release publishes the task's final effects to any
        // racing waker that Acquire-loads COMPLETE and bails out.
        task.state.store(COMPLETE, Ordering::Release);
        {
            let mut arena = self.arena.lock().unwrap_or_else(PoisonError::into_inner);
            arena.slots[task.index] = None;
            arena.free.push(task.index);
        }
        // ordering: AcqRel chains completions so the thread that takes the
        // count to zero has observed all of them; pairs with the Acquire
        // load in next_ready's drain check.
        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last live task gone: wake drain waiters and parked workers.
            drop(self.ready.lock().unwrap_or_else(PoisonError::into_inner));
            self.wakeup.notify_all();
        }
    }

    fn worker_loop(&self) {
        while let Some(task) = self.next_ready() {
            // ordering: Release so a waker that reads RUNNING (and parks a
            // NOTIFIED) sees the queue pop that preceded it.
            task.state.store(RUNNING, Ordering::Release);
            let Some(mut future) =
                task.future.lock().unwrap_or_else(PoisonError::into_inner).take()
            else {
                self.complete(&task);
                continue;
            };
            let waker = Waker::from(Arc::clone(&task));
            let mut cx = Context::from_waker(&waker);
            match catch_unwind(AssertUnwindSafe(|| future.as_mut().poll(&mut cx))) {
                Ok(Poll::Pending) => {
                    // Future back first, *then* resolve the state: a waker
                    // firing in between parks the wake as NOTIFIED and the
                    // CAS below re-queues — never a lost wake-up.
                    *task.future.lock().unwrap_or_else(PoisonError::into_inner) = Some(future);
                    // ordering: AcqRel resolves the poll-vs-wake race: a
                    // successful RUNNING→IDLE publishes the restored future
                    // to the next waker; failure Acquire-observes NOTIFIED.
                    if task
                        .state
                        .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire) // ordering: justified in block above
                        .is_err()
                    {
                        // A wake landed during the poll (NOTIFIED): the
                        // waker deferred the push to us.
                        // ordering: Release publishes the restored future
                        // before the queue entry that hands the task over.
                        task.state.store(QUEUED, Ordering::Release);
                        self.push_ready(task.index);
                    }
                }
                Ok(Poll::Ready(())) => self.complete(&task),
                Err(_panic) => {
                    // A panicking poll retires the task; the pool keeps
                    // running. The half-unwound future's destructor might
                    // panic too, so contain that as well.
                    let _ = catch_unwind(AssertUnwindSafe(move || drop(future)));
                    self.complete(&task);
                }
            }
        }
    }
}

/// The reactor: spawn futures, a fixed worker pool drives them to
/// completion.
#[derive(Debug)]
pub(crate) struct Executor {
    inner: Arc<ExecInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    pub(crate) fn new(workers: usize) -> Self {
        let inner = Arc::new(ExecInner {
            ready: Mutex::new(VecDeque::new()),
            wakeup: Condvar::new(),
            arena: Mutex::new(Arena::default()),
            live: AtomicUsize::new(0),
            draining: Mutex::new(false),
        });
        let workers = (0..workers.max(1))
            .filter_map(|i| {
                let inner = Arc::clone(&inner);
                let spawned = std::thread::Builder::new()
                    .name(format!("sqo-frontend-{i}"))
                    .spawn(move || inner.worker_loop());
                match spawned {
                    Ok(handle) => Some(handle),
                    // analyze: allow(panic): a pool that cannot start even
                    // one worker cannot serve at all — submitted requests
                    // would wait forever. Failures past the first merely
                    // degrade capacity.
                    Err(e) if i == 0 => panic!("spawn first frontend worker: {e}"),
                    Err(_) => None,
                }
            })
            .collect();
        Self { inner, workers }
    }

    /// Queues `future` as a new task; it starts running as soon as a
    /// worker is free.
    pub(crate) fn spawn(&self, future: impl Future<Output = ()> + Send + 'static) {
        let index = {
            let mut arena = self.inner.arena.lock().unwrap_or_else(PoisonError::into_inner);
            let index = arena.free.pop().unwrap_or_else(|| {
                arena.slots.push(None);
                arena.slots.len() - 1
            });
            let task = Arc::new(Task {
                index,
                state: AtomicU8::new(QUEUED),
                future: Mutex::new(Some(Box::pin(future))),
                exec: Arc::downgrade(&self.inner),
            });
            arena.slots[index] = Some(task);
            index
        };
        // ordering: AcqRel, same chain as complete()'s decrement — join()
        // can never observe a zero that misses this spawn.
        self.inner.live.fetch_add(1, Ordering::AcqRel);
        self.inner.push_ready(index);
    }

    /// Drains and joins: every already-spawned task runs to completion,
    /// then the workers exit.
    pub(crate) fn join(mut self) {
        *self.inner.draining.lock().unwrap_or_else(PoisonError::into_inner) = true;
        {
            // Lock/unlock pairs the flag write with the workers' wait.
            drop(self.inner.ready.lock().unwrap_or_else(PoisonError::into_inner));
        }
        self.inner.wakeup.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pending once, waking itself inline — exercises the NOTIFIED path
    /// (wake during RUNNING) and the re-queue after the poll.
    struct YieldOnce {
        yielded: bool,
    }

    impl Future for YieldOnce {
        type Output = ();

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.yielded {
                Poll::Ready(())
            } else {
                self.yielded = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    #[test]
    fn yielding_tasks_all_run_to_completion() {
        let exec = Executor::new(3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = Arc::clone(&done);
            exec.spawn(async move {
                YieldOnce { yielded: false }.await;
                YieldOnce { yielded: false }.await;
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        exec.join();
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn a_panicking_task_does_not_take_the_pool_down() {
        let exec = Executor::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        exec.spawn(async {
            panic!("poisoned task");
        });
        for _ in 0..10 {
            let done = Arc::clone(&done);
            exec.spawn(async move {
                YieldOnce { yielded: false }.await;
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        exec.join();
        assert_eq!(done.load(Ordering::SeqCst), 10, "pool survives the panicking task");
    }

    #[test]
    fn cross_thread_wakes_are_never_lost() {
        // A future woken from an external thread after returning Pending:
        // the wake must land whether it races the IDLE transition or not.
        struct External {
            fired: Arc<Mutex<Option<Waker>>>,
            done: Arc<AtomicUsize>,
        }
        impl Future for External {
            type Output = ();

            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.done.load(Ordering::SeqCst) == 1 {
                    return Poll::Ready(());
                }
                *self.fired.lock().unwrap() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
        let exec = Executor::new(2);
        let fired = Arc::new(Mutex::new(None));
        let done = Arc::new(AtomicUsize::new(0));
        let finished = Arc::new(AtomicUsize::new(0));
        {
            let (fired, done, finished) =
                (Arc::clone(&fired), Arc::clone(&done), Arc::clone(&finished));
            exec.spawn(async move {
                External { fired, done }.await;
                finished.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Wait for the task to park, then resolve + wake from outside.
        let waker = loop {
            if let Some(w) = fired.lock().unwrap().take() {
                break w;
            }
            std::thread::yield_now();
        };
        done.store(1, Ordering::SeqCst);
        waker.wake();
        exec.join();
        assert_eq!(finished.load(Ordering::SeqCst), 1);
    }
}
