//! The request frontend: admission control, load shedding, and the async
//! task body that drives [`QueryService::try_run`]'s singleflight seam.
//!
//! The same seam carries the batch execution tier's temporal gather
//! window: with `ServiceConfig::batch_window > 1` a warm duplicate that
//! arrives while a hit's execution is in flight surfaces here as
//! [`TryRun::Follower`], so [`run_one`]'s existing follower/abort/retry
//! machinery fans grouped answers out without any frontend-specific code.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::task::{Context, Poll};
use std::time::Instant;

use sqo_query::Query;
use sqo_service::{FlightError, MissWaiter, QueryService, ServiceError, ServiceResponse, TryRun};

use crate::executor::Executor;

/// Frontend tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct FrontendConfig {
    /// Worker threads driving the reactor (the CPU budget; logical
    /// clients are unbounded by this).
    pub workers: usize,
    /// Maximum admitted-but-unfinished logical clients. A concurrent
    /// submission beyond this depth is shed with
    /// [`Overload::QueueFull`] — reject-newest, the oldest work already
    /// admitted always finishes.
    pub queue_depth: usize,
    /// Shed new arrivals while the windowed p99 completion-latency
    /// estimate exceeds this bound (microseconds). `None` disables
    /// latency-based shedding; the queue bound still applies.
    pub p99_bound_us: Option<u64>,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            queue_depth: 1024,
            p99_bound_us: None,
        }
    }
}

/// Why a submission was rejected instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overload {
    /// The admission queue is at its configured depth.
    QueueFull,
    /// The p99 completion-latency estimate exceeds its configured bound.
    LatencyBound,
    /// The frontend is draining for shutdown and admits nothing new.
    ShuttingDown,
}

impl std::fmt::Display for Overload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Overload::QueueFull => write!(f, "admission queue full"),
            Overload::LatencyBound => write!(f, "p99 latency estimate over bound"),
            Overload::ShuttingDown => write!(f, "frontend shutting down"),
        }
    }
}

/// A completed request as observed by the client.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The service's answer (or typed error).
    pub result: Result<ServiceResponse, ServiceError>,
    /// Admission-to-completion latency in microseconds.
    pub latency_us: u64,
}

#[derive(Debug, Default)]
struct Slot {
    completion: Mutex<Option<Completion>>,
    done: Condvar,
}

/// The client's handle on one admitted request.
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<Slot>,
}

impl ResponseHandle {
    /// The completion if the request has finished, without blocking.
    pub fn try_take(&self) -> Option<Completion> {
        self.slot.completion.lock().unwrap_or_else(PoisonError::into_inner).take()
    }

    /// Blocks the calling thread until the request completes.
    pub fn wait(self) -> Completion {
        let mut completion = self.slot.completion.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(done) = completion.take() {
                return done;
            }
            completion = self.slot.done.wait(completion).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Windowed completion-latency reservoir: the last `WINDOW` latencies in
/// a ring, percentiles computed on demand. Coarse by design — shedding
/// needs a stable trend signal, not a precise histogram.
#[derive(Debug)]
struct LatencyEstimator {
    window: Mutex<LatencyWindow>,
}

#[derive(Debug)]
struct LatencyWindow {
    ring: Vec<u64>,
    next: usize,
    filled: usize,
}

const WINDOW: usize = 256;
/// No latency shedding until the window holds this many samples — a cold
/// frontend must not shed on its first (slow, cache-cold) completions.
const MIN_SAMPLES: usize = 64;

impl LatencyEstimator {
    fn new() -> Self {
        Self { window: Mutex::new(LatencyWindow { ring: vec![0; WINDOW], next: 0, filled: 0 }) }
    }

    fn record(&self, latency_us: u64) {
        let mut w = self.window.lock().unwrap_or_else(PoisonError::into_inner);
        let next = w.next;
        w.ring[next] = latency_us;
        w.next = (next + 1) % WINDOW;
        w.filled = (w.filled + 1).min(WINDOW);
    }

    /// The windowed p99 estimate, once enough samples exist.
    fn p99_us(&self) -> Option<u64> {
        let w = self.window.lock().unwrap_or_else(PoisonError::into_inner);
        if w.filled < MIN_SAMPLES {
            return None;
        }
        let mut sorted: Vec<u64> = w.ring[..w.filled].to_vec();
        drop(w);
        sorted.sort_unstable();
        let rank = (sorted.len() * 99).div_ceil(100).saturating_sub(1);
        Some(sorted[rank])
    }
}

/// Point-in-time frontend counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendStats {
    /// Submissions admitted past the shed checks.
    pub admitted: u64,
    /// Admitted requests that ran to completion.
    pub completed: u64,
    /// Submissions shed because the admission queue was full.
    pub shed_queue_full: u64,
    /// Submissions shed by the p99-latency bound.
    pub shed_latency: u64,
    /// Admitted and not yet completed right now.
    pub in_flight: usize,
}

#[derive(Debug)]
struct FrontendShared {
    service: Arc<QueryService>,
    in_flight: AtomicUsize,
    admitted: AtomicU64,
    completed: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_latency: AtomicU64,
    latency: LatencyEstimator,
}

/// The non-blocking request frontend: multiplexes any number of logical
/// clients over a fixed worker pool driving one [`QueryService`].
///
/// [`Frontend::submit`] is the admission point — it costs the caller a
/// bounded-queue check (and optionally a p99 estimate read), never an
/// optimization. Admitted requests become reactor tasks: a cache hit
/// completes on its first poll; the first miss on a coordinate runs the
/// optimization once (singleflight leader); every concurrent duplicate
/// waits wakerfully and shares the published answer without holding a
/// thread.
#[derive(Debug)]
pub struct Frontend {
    shared: Arc<FrontendShared>,
    executor: Executor,
    config: FrontendConfig,
    draining: std::sync::atomic::AtomicBool,
}

impl Frontend {
    /// A frontend over `service` with `config`'s admission policy.
    pub fn new(service: Arc<QueryService>, config: FrontendConfig) -> Self {
        Self {
            shared: Arc::new(FrontendShared {
                service,
                in_flight: AtomicUsize::new(0),
                admitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                shed_queue_full: AtomicU64::new(0),
                shed_latency: AtomicU64::new(0),
                latency: LatencyEstimator::new(),
            }),
            executor: Executor::new(config.workers),
            config,
            draining: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Admits `query` as a new logical client, or sheds it with a typed
    /// [`Overload`]. Reject-newest: an admitted request is never
    /// abandoned, the marginal arrival is the one refused.
    pub fn submit(&self, query: &Query) -> Result<ResponseHandle, Overload> {
        // ordering: Acquire pairs with shutdown()'s Release store.
        if self.draining.load(Ordering::Acquire) {
            return Err(Overload::ShuttingDown);
        }
        if let Some(bound) = self.config.p99_bound_us {
            if self.shared.latency.p99_us().is_some_and(|p99| p99 > bound) {
                // ordering: monotone shed counter, read for display only.
                self.shared.shed_latency.fetch_add(1, Ordering::Relaxed);
                return Err(Overload::LatencyBound);
            }
        }
        // Claim a queue slot; back off if the claim overshoots the bound.
        // ordering: AcqRel makes claim/back-off edges a total order across
        // admitters, so concurrent claims can never all read the same
        // pre-claim value and jointly overshoot the bound.
        let claimed = self.shared.in_flight.fetch_add(1, Ordering::AcqRel);
        if claimed >= self.config.queue_depth {
            // ordering: AcqRel, same RMW chain as the claim above.
            self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            // ordering: monotone shed counter, read for display only.
            self.shared.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(Overload::QueueFull);
        }
        // ordering: bounded above by `completed`'s Release/Acquire pair —
        // stats() reads `completed` first, and this increment
        // happens-before the task's `completed` increment via the spawn
        // queue's mutex, so any observed completion implies its admission.
        self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot::default());
        let shared = Arc::clone(&self.shared);
        let task_slot = Arc::clone(&slot);
        let query = query.clone();
        self.executor.spawn(async move {
            let admitted_at = Instant::now();
            let result = run_one(&shared.service, &query).await;
            let latency_us = admitted_at.elapsed().as_micros() as u64;
            shared.latency.record(latency_us);
            // ordering: Release pairs with the Acquire load in stats() /
            // shutdown(): observing this increment also observes the
            // admission that preceded it (via the spawn-queue mutex), so
            // `completed <= admitted` holds in every snapshot — Relaxed
            // only held on x86's TSO by accident.
            shared.completed.fetch_add(1, Ordering::Release);
            // ordering: AcqRel, same RMW chain as submit()'s claim.
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            let mut completion =
                task_slot.completion.lock().unwrap_or_else(PoisonError::into_inner);
            *completion = Some(Completion { result, latency_us });
            task_slot.done.notify_all();
        });
        Ok(ResponseHandle { slot })
    }

    /// Current frontend counters (the driven service's own stats are on
    /// [`Frontend::service`]).
    pub fn stats(&self) -> FrontendStats {
        // Struct literals evaluate top to bottom: `completed` is read
        // strictly before `admitted`, and with Acquire, so a snapshot can
        // never observe `completed > admitted` (regression-tested by
        // tests/frontend.rs::stats_completed_never_exceeds_admitted).
        FrontendStats {
            // ordering: Acquire pairs with the task's Release fetch_add.
            completed: self.shared.completed.load(Ordering::Acquire),
            // ordering: bounded below by `completed` via the Acquire above.
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            // ordering: monotone shed counter, read for display only.
            shed_queue_full: self.shared.shed_queue_full.load(Ordering::Relaxed),
            shed_latency: self.shared.shed_latency.load(Ordering::Relaxed), // ordering: display counter
            // ordering: pairs with the AcqRel claim RMWs in submit().
            in_flight: self.shared.in_flight.load(Ordering::Acquire),
        }
    }

    /// The service this frontend drives.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.shared.service
    }

    /// Drain-on-shutdown: stops admitting (new submissions shed with
    /// [`Overload::ShuttingDown`]), runs every already-admitted request to
    /// completion, then joins the worker pool.
    pub fn shutdown(self) -> FrontendStats {
        // ordering: Release pairs with submit()'s Acquire load — an
        // admitter that misses the drain flag fully completes its claim
        // before join() observes it.
        self.draining.store(true, Ordering::Release);
        self.executor.join();
        FrontendStats {
            // ordering: Acquire pairs with the task's Release fetch_add
            // (read before `admitted`, as in stats()).
            completed: self.shared.completed.load(Ordering::Acquire),
            // ordering: bounded below by `completed` via the Acquire above.
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            // ordering: monotone shed counter, read for display only.
            shed_queue_full: self.shared.shed_queue_full.load(Ordering::Relaxed),
            shed_latency: self.shared.shed_latency.load(Ordering::Relaxed), // ordering: display counter
            // ordering: pairs with the AcqRel claim RMWs in submit().
            in_flight: self.shared.in_flight.load(Ordering::Acquire),
        }
    }
}

/// One logical client: drive the service's non-blocking seam to an
/// answer. Leaders run the optimization inline on the worker (that *is*
/// the deduplicated work); followers await the flight wakerfully; an
/// aborted flight (leader died) retries — the retry re-checks the cache
/// and may inherit leadership.
async fn run_one(service: &QueryService, query: &Query) -> Result<ServiceResponse, ServiceError> {
    loop {
        match service.try_run(query)? {
            TryRun::Done(response) => return Ok(response),
            TryRun::Leader(guard) => return service.complete_miss(guard),
            TryRun::Follower(waiter) => match (FlightFuture { waiter }).await {
                Ok(response) => return Ok(response),
                Err(FlightError::Failed(e)) => return Err(e),
                Err(FlightError::Aborted) => continue,
            },
        }
    }
}

/// Adapts a [`MissWaiter`] to a [`Future`]: pending registers the task's
/// waker with the flight, so resolution re-queues the task directly.
struct FlightFuture {
    waiter: MissWaiter,
}

impl Future for FlightFuture {
    type Output = sqo_service::FlightResult;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.waiter.poll(cx.waker()) {
            Some(outcome) => Poll::Ready(outcome),
            None => Poll::Pending,
        }
    }
}
