//! # sqo-frontend
//!
//! The non-blocking request frontend of the `sqo` workspace: thousands of
//! in-flight logical clients multiplexed over a fixed core-count worker
//! pool driving one [`sqo_service::QueryService`].
//!
//! Three pieces, all hand-rolled on `std` (no new external dependencies,
//! in the spirit of the workspace's vendor-shim policy):
//!
//! * A **reactor** (`executor` module): a ready-queue of
//!   `Pin<Box<dyn Future>>` tasks in a slab arena, polled by worker
//!   threads, with race-free wakers built on the safe [`std::task::Wake`]
//!   trait and a per-task one-byte scheduling state machine. A logical
//!   client waiting on an in-flight optimization costs a few hundred
//!   bytes, not an OS thread.
//! * **Singleflight-driving tasks**: each admitted request runs
//!   [`sqo_service::QueryService::try_run`] — hits complete on the first
//!   poll, the first miss on a `(fingerprint, store version, data epoch)`
//!   coordinate optimizes once as the leader, and every concurrent
//!   duplicate awaits the flight wakerfully and shares the published
//!   `Arc`'d answer. A leader dying mid-flight aborts its flight; woken
//!   followers retry and one inherits leadership.
//! * **Admission control and load shedding** ([`Frontend::submit`]):
//!   a bounded admission queue ([`FrontendConfig::queue_depth`]) and an
//!   optional windowed p99-latency bound, both reject-newest with a typed
//!   [`Overload`] — under offered load beyond capacity the frontend sheds
//!   the marginal arrival and keeps latency bounded instead of letting
//!   every client collapse together. [`Frontend::shutdown`] drains: no
//!   new admissions, every admitted request completes.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]
#![deny(missing_docs)]

mod executor;
mod frontend;

pub use frontend::{Completion, Frontend, FrontendConfig, FrontendStats, Overload, ResponseHandle};
