//! `sqo-analyze`: workspace-wide static analysis enforcing the engine's
//! concurrency, panic-freedom, and epoch-discipline invariants.
//!
//! The paper's optimizer became a concurrent serving engine over the
//! last several PRs (shared caches, singleflight miss dedup, a
//! hand-rolled reactor), and its correctness now rests on conventions a
//! type checker cannot see: every relaxed atomic needs a stated
//! happens-before argument, library code must not abort a worker,
//! locks must be acquired in hierarchy order, and store identities must
//! flow through the blessed `StoreVersion` constructors. This crate is
//! the executable form of those conventions — a zero-dependency lexer +
//! rule engine that runs in CI (`cargo run -p sqo-analyze -- --deny`)
//! and fails the build when an invariant regresses.
//!
//! Rules and their suppression syntax are documented in
//! `docs/ANALYSIS.md`; the facts they check against (lock hierarchy,
//! panic budgets, epoch-blessed files) live in `analyze.toml` at the
//! workspace root.

pub mod config;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod toml;

use config::Config;
use findings::{Finding, Report, RuleId};
use std::fmt;
use std::path::{Path, PathBuf};

/// A failure to run the analysis at all (as opposed to findings).
#[derive(Debug)]
pub enum AnalyzeError {
    /// `analyze.toml` missing at the workspace root.
    MissingConfig(PathBuf),
    Config(config::ConfigError),
    Io(PathBuf, std::io::Error),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::MissingConfig(p) => {
                write!(f, "missing config: {} (run from the workspace root)", p.display())
            }
            AnalyzeError::Config(e) => write!(f, "{e}"),
            AnalyzeError::Io(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Directory names never descended into: build output, vendored shims,
/// VCS metadata, and test-support trees (integration tests, benches,
/// examples and this crate's own violation fixtures), which are exempt
/// from the production-code rules by definition.
const SKIP_DIRS: [&str; 6] = ["target", "vendor", ".git", "tests", "benches", "examples"];

/// Loads `analyze.toml` from `root` and analyzes the workspace under it.
pub fn run(root: &Path) -> Result<Report, AnalyzeError> {
    let config_path = root.join("analyze.toml");
    let source = match std::fs::read_to_string(&config_path) {
        Ok(s) => s,
        Err(_) => return Err(AnalyzeError::MissingConfig(config_path)),
    };
    let cfg = Config::parse(&source).map_err(AnalyzeError::Config)?;
    analyze_workspace(root, &cfg)
}

/// Analyzes every production `.rs` file under `root` against `cfg`.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> Result<Report, AnalyzeError> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    for rel in &files {
        let full = root.join(rel);
        let source =
            std::fs::read_to_string(&full).map_err(|e| AnalyzeError::Io(full.clone(), e))?;
        analyze_source(rel, &source, cfg, &mut report);
    }
    report.files_scanned = files.len();
    apply_panic_budgets(cfg, &mut report);
    Ok(report)
}

/// Runs every rule over one file's source. Public so the fixture tests
/// can drive single files without a workspace on disk.
pub fn analyze_source(rel_path: &str, source: &str, cfg: &Config, report: &mut Report) {
    let lexed = lexer::lex(source);
    rules::ordering::check(rel_path, &lexed, report);
    rules::epochs::check(rel_path, &lexed, report, &cfg.epoch_allow_files);
    rules::locks::check(rel_path, &lexed, report, cfg);
    let sites = rules::panics::scan(&lexed, &RuleId::Panic.allow_marker());
    if !sites.is_empty() {
        report.panic_counts.insert(rel_path.to_string(), sites.len());
    }
    let budgeted = cfg.panic_budgets.contains_key(rel_path);
    if !budgeted {
        for site in sites {
            report.findings.push(Finding {
                rule: RuleId::Panic,
                file: rel_path.to_string(),
                line: site.line,
                message: format!(
                    "`{}` in library code: return a typed error, or prove the site \
                     unreachable with an `// invariant:` comment",
                    site.what
                ),
            });
        }
    }
}

/// Compares the scan's per-file panic counts against the committed
/// budgets. The budgets must match *exactly*: over is a regression,
/// under means the budget is stale and must shrink in the same change —
/// that is what keeps the allowlist monotonically burning down. Public
/// so the fixture tests can drive budget checks without a workspace.
pub fn apply_panic_budgets(cfg: &Config, report: &mut Report) {
    for (file, budget) in &cfg.panic_budgets {
        let actual = report.panic_counts.get(file).copied().unwrap_or(0) as i64;
        if actual > *budget {
            report.findings.push(Finding {
                rule: RuleId::PanicBudget,
                file: file.clone(),
                line: 0,
                message: format!(
                    "{actual} unjustified panic sites exceed the budget of {budget}: \
                     fix the new sites, do not raise the budget"
                ),
            });
        } else if actual < *budget {
            report.findings.push(Finding {
                rule: RuleId::PanicBudget,
                file: file.clone(),
                line: 0,
                message: format!(
                    "only {actual} unjustified panic sites but the budget allows {budget}: \
                     shrink the [[panics.allow]] count in analyze.toml to {actual}"
                ),
            });
        }
    }
    let budget_sum: i64 = cfg.panic_budgets.values().sum();
    if cfg.panic_initial_scan > 0 && budget_sum >= cfg.panic_initial_scan {
        report.findings.push(Finding {
            rule: RuleId::PanicBudget,
            file: "analyze.toml".to_string(),
            line: 0,
            message: format!(
                "budget sum {budget_sum} has not burned down below the initial scan of {}",
                cfg.panic_initial_scan
            ),
        });
    }
    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
}

/// Recursively collects production `.rs` files as workspace-relative,
/// forward-slash paths.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), AnalyzeError> {
    let entries = std::fs::read_dir(dir).map_err(|e| AnalyzeError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| AnalyzeError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(toml_src: &str) -> Config {
        Config::parse(toml_src).unwrap()
    }

    #[test]
    fn unbudgeted_panics_are_per_site_findings() {
        let mut r = Report::default();
        analyze_source("a.rs", "fn f() { x.unwrap(); y.unwrap(); }\n", &cfg(""), &mut r);
        let panics: Vec<_> = r.findings.iter().filter(|f| f.rule == RuleId::Panic).collect();
        assert_eq!(panics.len(), 2);
        assert_eq!(r.panic_counts.get("a.rs"), Some(&2));
    }

    #[test]
    fn exact_budgets_pass_and_stale_or_exceeded_budgets_fail() {
        let c = cfg("[panics]\ninitial_scan = 9\n[[panics.allow]]\nfile = \"a.rs\"\ncount = 2\n");
        let src = "fn f() { x.unwrap(); y.unwrap(); }\n";
        let mut exact = Report::default();
        analyze_source("a.rs", src, &c, &mut exact);
        apply_panic_budgets(&c, &mut exact);
        assert!(exact.findings.is_empty(), "{:?}", exact.findings);

        let mut over = Report::default();
        analyze_source("a.rs", "fn f() { x.unwrap(); y.unwrap(); z.unwrap(); }\n", &c, &mut over);
        apply_panic_budgets(&c, &mut over);
        assert!(over
            .findings
            .iter()
            .any(|f| f.rule == RuleId::PanicBudget && f.message.contains("exceed")));

        let mut stale = Report::default();
        analyze_source("a.rs", "fn f() { x.unwrap(); }\n", &c, &mut stale);
        apply_panic_budgets(&c, &mut stale);
        assert!(stale
            .findings
            .iter()
            .any(|f| f.rule == RuleId::PanicBudget && f.message.contains("shrink")));
    }

    #[test]
    fn budget_sum_must_stay_below_initial_scan() {
        let c = cfg("[panics]\ninitial_scan = 2\n[[panics.allow]]\nfile = \"a.rs\"\ncount = 2\n");
        let mut r = Report::default();
        analyze_source("a.rs", "fn f() { x.unwrap(); y.unwrap(); }\n", &c, &mut r);
        apply_panic_budgets(&c, &mut r);
        assert!(r.findings.iter().any(|f| f.message.contains("burned down")));
    }
}
