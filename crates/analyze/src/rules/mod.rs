//! The rule engine: each rule walks one lexed file and appends findings.
//!
//! Rules only ever look at the lexer's *code channel* (string contents
//! blanked, comments stripped), so a `panic!` inside an error message or
//! a `{` inside a format string can never confuse them. Suppressions and
//! justifications are read from the *comment channel* via
//! [`crate::lexer::LexedFile::justified`].

pub mod epochs;
pub mod locks;
pub mod ordering;
pub mod panics;

/// True when the byte before `pos` in `code` could extend an identifier,
/// i.e. the match at `pos` is *not* token-initial.
pub(crate) fn ident_before(code: &str, pos: usize) -> bool {
    code[..pos].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// True when the byte right after `end` in `code` could extend an
/// identifier, i.e. the match ending at `end` is *not* token-final.
pub(crate) fn ident_after(code: &str, end: usize) -> bool {
    code[end..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Byte offsets of every occurrence of `needle` in `haystack`.
pub(crate) fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len().max(1);
    }
    out
}
