//! Epoch-discipline rules.
//!
//! The two-epoch model (PR 4) makes `StoreVersion { generation, epoch }`
//! the only valid constraint-store identity: a bare epoch is ambiguous
//! across `reset()` generations, and hand-rolled `epoch() ± 1` arithmetic
//! is how the PR 4 collision bug happened. Outside the blessed
//! constructor file(s) listed in `[epochs] allow_files`, non-test code
//! must not:
//!
//! - apply `+` / `-` arithmetic to an `.epoch()` result, or
//! - construct a `StoreVersion { … }` literal.
//!
//! Comparisons (`==`, `<`) and pass-through uses stay legal.

use crate::findings::{Finding, Report, RuleId};
use crate::lexer::LexedFile;
use crate::rules::{find_all, ident_before};

pub(crate) fn check(file: &str, lexed: &LexedFile, report: &mut Report, allow_files: &[String]) {
    if allow_files.iter().any(|f| f == file) {
        return;
    }
    let allow = RuleId::Epoch.allow_marker();
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let flag = |message: String, report: &mut Report| {
            if !lexed.justified(idx, &allow) {
                report.findings.push(Finding {
                    rule: RuleId::Epoch,
                    file: file.to_string(),
                    line: idx + 1,
                    message,
                });
            }
        };

        for pos in find_all(&line.code, ".epoch()") {
            let after = line.code[pos + ".epoch()".len()..].trim_start();
            // `+` / `-` arithmetic on the result (but not `+=`-style
            // compound tokens, which can't follow an rvalue, and not
            // `->`/`=>` which start with other chars anyway).
            if after.starts_with('+') || after.starts_with('-') {
                flag(
                    "raw arithmetic on `.epoch()`: derive identities through the blessed \
                     StoreVersion constructors instead of hand-rolled epoch math"
                        .to_string(),
                    report,
                );
            }
        }

        for pos in find_all(&line.code, "StoreVersion") {
            if ident_before(&line.code, pos) {
                continue;
            }
            let after = line.code[pos + "StoreVersion".len()..].trim_start();
            // A literal is `StoreVersion {`; skip paths
            // (`StoreVersion::`), the type's own definition, and type
            // positions (`fn f() -> StoreVersion {` opens a body, not a
            // literal).
            if after.starts_with('{')
                && !line.code.contains("struct ")
                && !line.code.contains("impl ")
                && !line.code.contains("fn ")
            {
                flag(
                    "bare `StoreVersion { .. }` literal: only the blessed constructors may \
                     assemble a store identity (a mismatched generation/epoch pair revives \
                     the PR 4 collision bug)"
                        .to_string(),
                    report,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, allow: &[&str]) -> Report {
        let mut r = Report::default();
        let allow: Vec<String> = allow.iter().map(|s| s.to_string()).collect();
        check("f.rs", &lex(src), &mut r, &allow);
        r
    }

    #[test]
    fn epoch_arithmetic_is_flagged() {
        let r = run("let next = old.epoch() + 1;\n", &[]);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, RuleId::Epoch);
    }

    #[test]
    fn comparisons_and_passthrough_are_fine() {
        let r = run("if a.epoch() == b.epoch() { f(store.epoch()); }\n", &[]);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn literals_are_flagged_but_defs_and_tests_are_not() {
        let r = run(
            "pub struct StoreVersion { pub epoch: u64 }\nlet v = StoreVersion { generation: g, epoch: e };\npub fn version(&self) -> StoreVersion {\n#[cfg(test)]\nmod tests { fn t() { let v = StoreVersion { generation: 0, epoch: 1 }; } }\n",
            &[],
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn allow_files_and_allow_marker_suppress() {
        assert!(run("let n = e.epoch() + 1;\n", &["f.rs"]).findings.is_empty());
        let r = run("let n = e.epoch() + 1; // analyze: allow(epoch)\n", &[]);
        assert!(r.findings.is_empty());
    }
}
