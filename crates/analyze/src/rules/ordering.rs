//! Atomic-ordering audit.
//!
//! Every `Ordering::<Kind>` token in non-test code must carry an
//! `// ordering: <why>` justification on the same line or in the
//! contiguous comment block directly above. All sites — justified or
//! not, test or not — are collected into the inventory that
//! `docs/ANALYSIS.md` reproduces.
//!
//! Matching is on the path-final segment (`::Relaxed`, `::AcqRel`, …) so
//! aliased imports (`use std::sync::atomic::Ordering as AtomicOrdering`)
//! are still caught, while `std::cmp::Ordering`'s variants (`Less`,
//! `Equal`, `Greater`) never collide.

use crate::findings::{Finding, OrderingSite, Report, RuleId};
use crate::lexer::LexedFile;
use crate::rules::{find_all, ident_after};

/// The five memory-ordering kinds, as path-final tokens.
const KINDS: [&str; 5] = ["Relaxed", "SeqCst", "Acquire", "Release", "AcqRel"];

/// The justification marker the comment channel must carry.
pub const MARKER: &str = "ordering:";

pub(crate) fn check(file: &str, lexed: &LexedFile, report: &mut Report) {
    for (idx, line) in lexed.lines.iter().enumerate() {
        for kind in KINDS {
            let needle = format!("::{kind}");
            for pos in find_all(&line.code, &needle) {
                if ident_after(&line.code, pos + needle.len()) {
                    continue; // e.g. `::AcquireToken`
                }
                let justified = lexed.justified(idx, MARKER);
                let justification =
                    if justified { extract_justification(lexed, idx) } else { None };
                report.ordering_inventory.push(OrderingSite {
                    file: file.to_string(),
                    line: idx + 1,
                    kind: kind.to_string(),
                    justification,
                    in_test: line.in_test,
                });
                if line.in_test || justified {
                    continue;
                }
                if lexed.justified(idx, &RuleId::Ordering.allow_marker()) {
                    continue;
                }
                report.findings.push(Finding {
                    rule: RuleId::Ordering,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "Ordering::{kind} without an `// ordering:` justification \
                         (state the happens-before edge or why none is needed)"
                    ),
                });
            }
        }
    }
}

/// The text after the `ordering:` marker, from the same line or the
/// nearest line of the comment block above.
fn extract_justification(lexed: &LexedFile, line: usize) -> Option<String> {
    let grab = |i: usize| -> Option<String> {
        let c = &lexed.lines.get(i)?.comment;
        let pos = c.find(MARKER)?;
        let text = c[pos + MARKER.len()..].trim();
        (!text.is_empty()).then(|| text.to_string())
    };
    if let Some(j) = grab(line) {
        return Some(j);
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        let l = &lexed.lines[i];
        let comment_only = l.code.trim().is_empty() && !l.comment.trim().is_empty();
        if let Some(j) = grab(i) {
            if comment_only || i + 1 == line {
                return Some(j);
            }
        }
        if !comment_only {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Report {
        let mut r = Report::default();
        check("f.rs", &lex(src), &mut r);
        r
    }

    #[test]
    fn unjustified_sites_are_flagged_and_inventoried() {
        let r = run("x.load(Ordering::Relaxed);\n");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 1);
        assert_eq!(r.ordering_inventory.len(), 1);
        assert!(r.ordering_inventory[0].justification.is_none());
    }

    #[test]
    fn justified_and_aliased_sites_pass() {
        let r = run("x.load(AtomicOrdering::AcqRel); // ordering: pairs with the store in put()\n");
        assert!(r.findings.is_empty());
        assert_eq!(
            r.ordering_inventory[0].justification.as_deref(),
            Some("pairs with the store in put()")
        );
    }

    #[test]
    fn cmp_ordering_variants_and_test_code_are_ignored() {
        let r = run(
            "match a.cmp(&b) { Ordering::Less => {} Ordering::Equal => {} Ordering::Greater => {} }\n\
             #[cfg(test)]\nmod tests {\n fn t() { x.load(Ordering::SeqCst); }\n}\n",
        );
        assert!(r.findings.is_empty());
        assert_eq!(r.ordering_inventory.len(), 1, "test sites still inventoried");
        assert!(r.ordering_inventory[0].in_test);
    }

    #[test]
    fn block_justification_covers_only_adjacent_site() {
        let r = run(
            "// ordering: counters are monotonic, read for display only\nx.fetch_add(1, Ordering::Relaxed);\ny.fetch_add(1, Ordering::Relaxed);\n",
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 3);
    }

    #[test]
    fn allow_marker_suppresses() {
        let r = run("x.load(Ordering::Relaxed); // analyze: allow(ordering)\n");
        assert!(r.findings.is_empty());
    }
}
