//! Panic-freedom lint.
//!
//! A serving engine must not abort a worker because one request hit an
//! unexpected state: non-test library code may not call `.unwrap()` /
//! `.expect(…)` or expand `panic!` / `unreachable!` / `todo!` /
//! `unimplemented!` unless the site carries an `// invariant: <why>`
//! comment proving the failure is impossible (or the file has a budget
//! in `analyze.toml`, the burn-down allowlist that only ever shrinks).

use crate::lexer::LexedFile;
use crate::rules::{find_all, ident_after, ident_before};

/// The justification marker for a provably-unreachable site.
pub const MARKER: &str = "invariant:";

/// Method-call patterns (matched verbatim in the code channel).
const METHODS: [&str; 2] = [".unwrap()", ".expect("];

/// Panic-family macros (matched with an identifier boundary before).
const MACROS: [&str; 4] = ["panic!", "unreachable!", "todo!", "unimplemented!"];

/// One panic-family site that is neither test code nor justified.
#[derive(Debug, Clone)]
pub(crate) struct Site {
    /// 1-based line.
    pub line: usize,
    /// The matched pattern, for the finding message.
    pub what: &'static str,
}

/// Scans one lexed file for unjustified panic-family sites. Budget
/// bookkeeping (allowlist comparison) happens in the caller, which sees
/// the whole workspace.
pub(crate) fn scan(lexed: &LexedFile, allow_marker: &str) -> Vec<Site> {
    let mut sites = Vec::new();
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut hits: Vec<&'static str> = Vec::new();
        for pat in METHODS {
            for _ in find_all(&line.code, pat) {
                hits.push(pat);
            }
        }
        for pat in MACROS {
            for pos in find_all(&line.code, pat) {
                if !ident_before(&line.code, pos) && !ident_after(&line.code, pos + pat.len() - 1) {
                    hits.push(pat);
                }
            }
        }
        if hits.is_empty() {
            continue;
        }
        if lexed.justified(idx, MARKER) || lexed.justified(idx, allow_marker) {
            continue;
        }
        for what in hits {
            sites.push(Site { line: idx + 1, what });
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Site> {
        scan(&lex(src), "analyze: allow(panic)")
    }

    #[test]
    fn methods_and_macros_are_caught() {
        let sites = run(
            "let a = x.unwrap();\nlet b = y.expect(\"msg\");\npanic!(\"boom\");\nunreachable!();\n",
        );
        assert_eq!(sites.len(), 4);
        assert_eq!(sites[0].what, ".unwrap()");
        assert_eq!(sites[2].what, "panic!");
    }

    #[test]
    fn lookalikes_do_not_match() {
        let sites = run(
            "let a = x.unwrap_or(0);\nlet b = y.unwrap_or_default();\nlet c = z.expect_err(\"e\");\nmy_panic!(\"no\");\n",
        );
        assert!(sites.is_empty(), "{sites:?}");
    }

    #[test]
    fn strings_tests_and_justified_sites_are_exempt() {
        let sites = run("let m = \"call panic!() or .unwrap()\";\n\
             // invariant: the queue is non-empty, checked two lines up\n\
             let v = q.pop().unwrap();\n\
             let w = r.pop().unwrap(); // analyze: allow(panic)\n\
             #[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }\n");
        assert!(sites.is_empty(), "{sites:?}");
    }

    #[test]
    fn one_line_can_carry_multiple_sites() {
        let sites = run("let a = x.unwrap().parse().unwrap();\n");
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].line, 1);
    }
}
