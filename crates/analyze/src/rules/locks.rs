//! Lock-discipline check.
//!
//! `analyze.toml` declares the workspace lock hierarchy: every lock gets
//! a name, a *rank*, the receiver expressions that acquire it, and the
//! files it lives in. The rule walks each covered file with a lexical
//! guard tracker and enforces:
//!
//! - **lock-order** — a lock may only be acquired while every live guard
//!   has a strictly lower rank (the hierarchy is a total order, so
//!   ascending acquisition can never deadlock);
//! - **lock-cross** — configured cross-module call patterns (which take
//!   locks of at least `min_rank` internally, or must run lock-free like
//!   waker invocations) must not execute while a guard of rank >=
//!   `min_rank` is live;
//! - **lock-unknown** — in a covered file, a `.lock()` / `.read()` /
//!   `.write()` whose receiver matches no declaration is flagged, so the
//!   hierarchy map cannot silently rot as code grows.
//!
//! Guard lifetimes are tracked lexically: a `let name = <acquire>;`
//! guard lives until its enclosing brace closes or an explicit
//! `drop(name)`; an unbound acquisition is a temporary that dies at the
//! end of its statement (or with the block it heads, for
//! `match x.read() { … }`-style lines). This models the block-scoping
//! and `drop()` patterns the codebase already uses to keep critical
//! sections short.

use crate::config::Config;
use crate::findings::{Finding, Report, RuleId};
use crate::lexer::LexedFile;
use crate::rules::find_all;

/// A live guard.
#[derive(Debug, Clone)]
struct Guard {
    /// Binding name for `drop(name)` tracking; `None` for temporaries.
    name: Option<String>,
    lock: String,
    rank: i64,
    /// Dead once brace depth drops below this.
    dies_below: i32,
    /// Still waiting for its statement terminator (`;` / `,` / `{`).
    statement_pending: bool,
}

/// A positional event inside one line, processed left to right.
#[derive(Debug)]
enum Event {
    Open,
    Close,
    Drop(String),
    // Named `Take` (not `Acquire`) so the variant path cannot collide
    // with the ordering rule's `::Acquire` token when this crate audits
    // itself.
    Take { lock: String, rank: i64, name: Option<String> },
    Unknown { receiver: String },
    Module { name: String, min_rank: i64 },
}

const LOCK_METHODS: [&str; 3] = [".lock()", ".read()", ".write()"];

pub(crate) fn check(file: &str, lexed: &LexedFile, report: &mut Report, cfg: &Config) {
    let decls = cfg.locks_for(file);
    let covered = !decls.is_empty();
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();

    for (idx, line) in lexed.lines.iter().enumerate() {
        let code = &line.code;
        let mut events: Vec<(usize, Event)> = Vec::new();

        // Braces always count, even in test code, to keep depth honest.
        for (pos, c) in code.char_indices() {
            match c {
                '{' => events.push((pos, Event::Open)),
                '}' => events.push((pos, Event::Close)),
                _ => {}
            }
        }

        if !line.in_test {
            for pos in find_all(code, "drop(") {
                if crate::rules::ident_before(code, pos) {
                    continue; // e.g. `airdrop(` is not a drop; `mem::drop(` still matches
                }
                let arg: String = code[pos + "drop(".len()..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !arg.is_empty() && code[pos + "drop(".len() + arg.len()..].starts_with(')') {
                    events.push((pos, Event::Drop(arg)));
                }
            }

            for method in LOCK_METHODS {
                for pos in find_all(code, method) {
                    let receiver = receiver_before(code, pos);
                    if receiver.is_empty() {
                        continue;
                    }
                    match resolve_lock(&decls, &receiver) {
                        Some((lock, rank)) => {
                            let end = pos + method.len();
                            let name = binding_name(code, &receiver, pos, end);
                            events.push((pos, Event::Take { lock, rank, name }));
                        }
                        None if covered => {
                            events.push((pos, Event::Unknown { receiver }));
                        }
                        None => {}
                    }
                }
            }

            for module in &cfg.modules {
                for pattern in &module.patterns {
                    for pos in find_all(code, pattern) {
                        events.push((
                            pos,
                            Event::Module { name: module.name.clone(), min_rank: module.min_rank },
                        ));
                    }
                }
            }
        }

        events.sort_by_key(|(pos, _)| *pos);

        let mut opened_this_line = false;
        for (_, event) in events {
            match event {
                Event::Open => {
                    depth += 1;
                    opened_this_line = true;
                }
                Event::Close => {
                    depth -= 1;
                    // A `}` ends any statement still pending from an earlier
                    // line — in particular a tail-expression acquisition
                    // (`fn f() { self.x.lock().get() }` has no `;`), which
                    // must not leak into the next function.
                    guards.retain(|g| !g.statement_pending && g.dies_below <= depth);
                }
                Event::Drop(name) => {
                    guards.retain(|g| g.name.as_deref() != Some(name.as_str()));
                }
                Event::Take { lock, rank, name } => {
                    for g in &guards {
                        if g.rank >= rank {
                            push_unless_allowed(
                                report,
                                lexed,
                                idx,
                                RuleId::LockOrder,
                                file,
                                format!(
                                    "`{lock}` (rank {rank}) acquired while holding `{}` \
                                     (rank {}): the hierarchy requires strictly \
                                     ascending acquisition",
                                    g.lock, g.rank
                                ),
                            );
                        }
                    }
                    let named = name.is_some();
                    guards.push(Guard {
                        name,
                        lock,
                        rank,
                        // Named guards die with the enclosing block; the
                        // terminator pass below finalizes temporaries.
                        dies_below: depth,
                        statement_pending: !named,
                    });
                }
                Event::Unknown { receiver } => {
                    push_unless_allowed(
                        report,
                        lexed,
                        idx,
                        RuleId::LockUnknown,
                        file,
                        format!(
                            "lock-style acquisition on `{receiver}` matches no declared lock: \
                             add it to the [[locks.lock]] hierarchy in analyze.toml"
                        ),
                    );
                }
                Event::Module { name, min_rank } => {
                    for g in &guards {
                        if g.rank >= min_rank {
                            push_unless_allowed(
                                report,
                                lexed,
                                idx,
                                RuleId::LockCross,
                                file,
                                format!(
                                    "call into locking module `{name}` (min rank {min_rank}) \
                                     while holding `{}` (rank {}): scope the guard out \
                                     (block or drop()) before crossing the module boundary",
                                    g.lock, g.rank
                                ),
                            );
                        }
                    }
                }
            }
        }

        // Statement-terminator pass: temporaries die at `;` / `,`, or
        // become block-scoped when the line opens the block they head.
        let last = code.trim_end().chars().next_back();
        match last {
            Some(';') | Some(',') => guards.retain(|g| !g.statement_pending),
            Some('{') if opened_this_line => {
                for g in &mut guards {
                    if g.statement_pending {
                        g.statement_pending = false;
                        g.dies_below = depth;
                    }
                }
            }
            _ => {}
        }
    }
}

fn push_unless_allowed(
    report: &mut Report,
    lexed: &LexedFile,
    idx: usize,
    rule: RuleId,
    file: &str,
    message: String,
) {
    if lexed.justified(idx, &rule.allow_marker()) {
        return;
    }
    report.findings.push(Finding { rule, file: file.to_string(), line: idx + 1, message });
}

/// Extracts the receiver expression ending just before `pos` (the dot of
/// the lock method): identifier paths with `.` separators and balanced
/// call parens, e.g. `self.shard_of(fingerprint)` or `task.future`.
fn receiver_before(code: &str, pos: usize) -> String {
    let bytes = code.as_bytes();
    let mut i = pos;
    while i > 0 {
        let c = bytes[i - 1] as char;
        if c.is_alphanumeric() || c == '_' || c == '.' {
            i -= 1;
        } else if c == ')' {
            // Balance back to the matching `(`.
            let mut depth = 0i32;
            while i > 0 {
                let c = bytes[i - 1] as char;
                i -= 1;
                if c == ')' {
                    depth += 1;
                } else if c == '(' {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
        } else {
            break;
        }
    }
    code[i..pos].trim_start_matches('.').to_string()
}

/// Matches a receiver against the declared locks: exact receiver match,
/// or prefix match for patterns ending in `(` (computed receivers like
/// `self.shard_of(`).
fn resolve_lock(decls: &[&crate::config::LockDecl], receiver: &str) -> Option<(String, i64)> {
    for decl in decls {
        for pat in &decl.receivers {
            let hit = if pat.ends_with('(') {
                receiver.starts_with(pat.as_str())
            } else {
                receiver == pat
            };
            if hit {
                return Some((decl.name.clone(), decl.rank));
            }
        }
    }
    None
}

/// When the acquisition is the whole RHS of a simple `let` binding
/// (allowing `.expect(…)` / `.unwrap()` / `.unwrap_or_else(…)` tails —
/// the last is the poison-recovery idiom), returns the bound name;
/// otherwise the guard is a temporary.
fn binding_name(code: &str, receiver: &str, pos: usize, end: usize) -> Option<String> {
    // The receiver text sits immediately before `pos`.
    let recv_start = pos.checked_sub(receiver.len())?;
    let before = code[..recv_start].trim_end();
    let before = before.strip_suffix('=')?.trim_end();
    let let_pos = before.rfind("let ")?;
    let mut pat = before[let_pos + "let ".len()..].trim();
    pat = pat.strip_prefix("mut ").unwrap_or(pat).trim();
    if pat.is_empty() || !pat.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    // Tail may chain `.expect(…)` / `.unwrap()` / `.unwrap_or_else(…)`
    // and must end the statement.
    let mut rest = &code[end..];
    loop {
        if let Some(after) = rest.strip_prefix(".unwrap()") {
            rest = after;
        } else if let Some(after) =
            rest.strip_prefix(".expect(").or_else(|| rest.strip_prefix(".unwrap_or_else("))
        {
            let mut depth = 1i32;
            let mut cut = None;
            for (i, c) in after.char_indices() {
                match c {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            cut = Some(i + 1);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            rest = &after[cut?..];
        } else {
            break;
        }
    }
    rest.trim_start().starts_with(';').then(|| pat.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cfg() -> Config {
        Config::parse(
            r#"
[[locks.lock]]
name = "outer"
rank = 10
receivers = ["self.outer"]
files = ["f.rs"]

[[locks.lock]]
name = "inner"
rank = 20
receivers = ["self.inner", "self.shard_of("]
files = ["f.rs"]

[[locks.module]]
name = "wakers"
min_rank = 0
patterns = [".wake()"]
"#,
        )
        .unwrap()
    }

    fn run(src: &str) -> Report {
        let mut r = Report::default();
        check("f.rs", &lex(src), &mut r, &cfg());
        r
    }

    #[test]
    fn ascending_order_passes_descending_fails() {
        let ok =
            run("fn f(&self) {\n let a = self.outer.lock();\n let b = self.inner.lock();\n}\n");
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
        let bad =
            run("fn f(&self) {\n let b = self.inner.lock();\n let a = self.outer.lock();\n}\n");
        assert_eq!(bad.findings.len(), 1);
        assert_eq!(bad.findings[0].rule, RuleId::LockOrder);
        assert_eq!(bad.findings[0].line, 3);
    }

    #[test]
    fn block_scoping_and_drop_end_guard_lifetimes() {
        let scoped = run(
            "fn f(&self) {\n {\n  let b = self.inner.lock();\n  b.push(1);\n }\n let a = self.outer.lock();\n}\n",
        );
        assert!(scoped.findings.is_empty(), "{:?}", scoped.findings);
        let dropped = run(
            "fn f(&self) {\n let b = self.inner.lock();\n drop(b);\n let a = self.outer.lock();\n}\n",
        );
        assert!(dropped.findings.is_empty(), "{:?}", dropped.findings);
    }

    #[test]
    fn tail_expression_guard_dies_with_its_function() {
        let r = run(
            "fn peek(&self) -> usize {\n self.inner.lock().len()\n}\nfn f(&self) {\n let a = self.outer.lock();\n}\n",
        );
        assert!(r.findings.is_empty(), "tail guard must not leak into f: {:?}", r.findings);
    }

    #[test]
    fn poison_recovery_tail_still_binds_the_guard() {
        let r = run(
            "fn f(&self) {\n let b = self.inner.lock().unwrap_or_else(PoisonError::into_inner);\n let a = self.outer.lock();\n}\n",
        );
        assert_eq!(
            r.findings.len(),
            1,
            "guard must stay live past its statement: {:?}",
            r.findings
        );
        assert_eq!(r.findings[0].rule, RuleId::LockOrder);
    }

    #[test]
    fn temporaries_die_at_statement_end_but_block_heads_persist() {
        let temp = run(
            "fn f(&self) {\n let n = self.inner.lock().len();\n let a = self.outer.lock();\n}\n",
        );
        assert!(temp.findings.is_empty(), "{:?}", temp.findings);
        let head = run(
            "fn f(&self) {\n match self.inner.lock().first() {\n  Some(_) => { let a = self.outer.lock(); }\n  None => {}\n }\n}\n",
        );
        assert_eq!(head.findings.len(), 1, "guard heading a match lives to its close brace");
        assert_eq!(head.findings[0].rule, RuleId::LockOrder);
    }

    #[test]
    fn computed_receivers_unknown_locks_and_wakers() {
        let computed = run(
            "fn f(&self) {\n let s = self.shard_of(fp).read();\n let a = self.outer.lock();\n}\n",
        );
        assert_eq!(computed.findings.len(), 1, "shard (20) then outer (10) inverts");
        let unknown = run("fn f(&self) {\n let g = self.mystery.lock();\n}\n");
        assert_eq!(unknown.findings.len(), 1);
        assert_eq!(unknown.findings[0].rule, RuleId::LockUnknown);
        let woke = run("fn f(&self) {\n let a = self.outer.lock();\n waker.wake();\n}\n");
        assert_eq!(woke.findings.len(), 1);
        assert_eq!(woke.findings[0].rule, RuleId::LockCross);
        let clean = run("fn f(&self) {\n { let a = self.outer.lock(); }\n waker.wake();\n}\n");
        assert!(clean.findings.is_empty(), "{:?}", clean.findings);
    }

    #[test]
    fn test_code_is_exempt_but_braces_still_balance() {
        let r = run(
            "#[cfg(test)]\nmod tests {\n fn t(&self) { let b = self.inner.lock(); let a = self.outer.lock(); }\n}\nfn lib(&self) {\n let a = self.outer.lock();\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
