//! A small Rust lexer for line-oriented static analysis.
//!
//! The rules in this crate do not need a parse tree — they need to know,
//! for every source line, *which characters are code* (as opposed to
//! string-literal contents or comments), *what the comments say* (for
//! justification and suppression markers), and *whether the line is test
//! code* (`#[cfg(test)]`-gated items and `#[test]` functions are exempt
//! from the production-invariant rules). The lexer produces exactly that:
//! per-line code text with string/char contents blanked out, per-line
//! comment text, and a test-span mark computed by brace-matching the item
//! that follows a test attribute.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw (and byte/raw-byte) strings with any `#` arity, char
//! literals vs. lifetimes, and attributes containing bracketed tokens.

/// One lexed source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line with comments stripped and the *contents* of string and
    /// char literals replaced by spaces (delimiters are kept), so token
    /// searches never match inside literals and brace counting never sees
    /// a `{` that lives in a string.
    pub code: String,
    /// Concatenated text of every comment on the line (`//` bodies and the
    /// parts of `/* .. */` bodies that fall on this line).
    pub comment: String,
    /// Inside a `#[cfg(test)]`-gated item or a `#[test]` function.
    pub in_test: bool,
}

/// A whole lexed file.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    pub lines: Vec<Line>,
}

impl LexedFile {
    /// True when `line` (0-based) has a comment containing `marker` on the
    /// line itself, on the immediately preceding line, or anywhere in the
    /// contiguous block of comment-only lines directly above it.
    pub fn justified(&self, line: usize, marker: &str) -> bool {
        if self.lines.get(line).is_some_and(|l| l.comment.contains(marker)) {
            return true;
        }
        let mut i = line;
        while i > 0 {
            i -= 1;
            let l = &self.lines[i];
            let comment_only = l.code.trim().is_empty() && !l.comment.trim().is_empty();
            if l.comment.contains(marker) && (comment_only || i + 1 == line) {
                return true;
            }
            if !comment_only {
                return false;
            }
        }
        false
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested depth.
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Lexes `source` into per-line code/comment channels and marks test spans.
pub fn lex(source: &str) -> LexedFile {
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut state = State::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        // invariant: `lines` starts non-empty and only ever grows.
        let line = lines.last_mut().expect("lines is never empty");
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw / byte / raw-byte string openers: r", r#", br", b".
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    let mut j = i;
                    if c == 'b' && chars.get(j + 1) == Some(&'r') {
                        j += 1;
                    }
                    if c == 'b' && chars.get(j + 1) == Some(&'"') {
                        line.code.push('"');
                        state = State::Str;
                        i = j + 2;
                        continue;
                    }
                    if (c == 'r' || j > i) && matches!(chars.get(j + 1), Some('"') | Some('#')) {
                        let mut hashes = 0;
                        let mut k = j + 1;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if chars.get(k) == Some(&'"') {
                            line.code.push('"');
                            state = State::RawStr(hashes);
                            i = k + 1;
                            continue;
                        }
                    }
                }
                if c == '"' {
                    line.code.push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal iff it closes within a couple of chars
                    // (`'x'`, `'\n'`, `'\u{..}'`); otherwise a lifetime.
                    if is_char_literal(&chars, i) {
                        line.code.push('\'');
                        state = State::CharLit;
                        i += 1;
                        continue;
                    }
                    line.code.push('\'');
                    i += 1;
                    continue;
                }
                line.code.push(c);
                i += 1;
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    line.code.push(' ');
                    if chars.get(i + 1).is_some() {
                        line.code.push(' ');
                    }
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes as usize {
                        if chars.get(i + 1 + h) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        line.code.push('"');
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                line.code.push(' ');
                i += 1;
            }
            State::CharLit => {
                if c == '\\' {
                    line.code.push(' ');
                    if chars.get(i + 1).is_some() {
                        line.code.push(' ');
                    }
                    i += 2;
                } else if c == '\'' {
                    line.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    let mut file = LexedFile { lines };
    mark_test_spans(&mut file);
    file
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// `'` at `i` opens a char literal (vs. a lifetime) iff it closes within
/// the next few chars: `'x'`, an escape, or `'\u{...}'`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Finds `#[cfg(test)]` / `#[test]` attributes in the code channel and
/// marks every line of the item that follows (attribute through the
/// matching close brace, or the terminating `;`) as test code.
fn mark_test_spans(file: &mut LexedFile) {
    // Work over a flattened (line, char) stream of the code channel.
    let flat: Vec<(usize, char)> = file
        .lines
        .iter()
        .enumerate()
        .flat_map(|(ln, l)| l.code.chars().map(move |c| (ln, c)).chain([(ln, '\n')]))
        .collect();
    let mut i = 0;
    while i < flat.len() {
        if flat[i].1 == '#' && flat.get(i + 1).map(|t| t.1) == Some('[') {
            // Bracket-match the attribute.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut attr = String::from("#");
            while j < flat.len() {
                let c = flat[j].1;
                attr.push(c);
                if c == '[' {
                    depth += 1;
                } else if c == ']' {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let is_test_attr =
                attr.contains("cfg(test)") || attr.replace([' ', '\n'], "") == "#[test]";
            if is_test_attr && j < flat.len() {
                // Skip past any further attributes, then find the item's
                // body (`{` at bracket depth 0) or terminator (`;`).
                let mut k = j + 1;
                let mut nest = 0i32;
                let mut body_start = None;
                while k < flat.len() {
                    let c = flat[k].1;
                    match c {
                        '(' | '[' => nest += 1,
                        ')' | ']' => nest -= 1,
                        '{' if nest == 0 => {
                            body_start = Some(k);
                            break;
                        }
                        ';' if nest == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                let end = match body_start {
                    Some(open) => {
                        let mut braces = 0i32;
                        let mut m = open;
                        while m < flat.len() {
                            match flat[m].1 {
                                '{' => braces += 1,
                                '}' => {
                                    braces -= 1;
                                    if braces == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            m += 1;
                        }
                        m.min(flat.len() - 1)
                    }
                    None => k.min(flat.len() - 1),
                };
                let (first_line, last_line) = (flat[i].0, flat[end].0);
                for line in &mut file.lines[first_line..=last_line] {
                    line.in_test = true;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_leave_the_code_channel() {
        let f = lex("let x = \"Ordering::Relaxed { } //\"; // ordering: real comment\n");
        assert!(!f.lines[0].code.contains("Relaxed"));
        assert!(!f.lines[0].code.contains("ordering:"));
        assert!(f.lines[0].comment.contains("ordering: real comment"));
        assert!(!f.lines[0].code.contains('{'), "braces in strings are blanked");
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let f = lex("let s = r#\"panic!(\"{}\")\"#; let c = '{'; let lt: &'static str = \"\";\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(!f.lines[0].code.contains('{'));
        assert!(f.lines[0].code.contains("'static"), "lifetimes stay code");
    }

    #[test]
    fn nested_block_comments_end_correctly() {
        let f = lex("/* a /* b */ c */ let x = 1;\nlet y = 2;\n");
        assert!(f.lines[0].code.contains("let x"));
        assert!(f.lines[1].code.contains("let y"));
        assert!(f.lines[0].comment.contains('b'));
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn lib2() {}\n";
        let f = lex(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test && f.lines[2].in_test && f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn test_fns_outside_modules_are_marked() {
        let src = "#[test]\nfn alone() {\n    z.unwrap();\n}\nfn lib() {}\n";
        let f = lex(src);
        assert!(f.lines[0].in_test && f.lines[1].in_test && f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn justification_sees_same_and_preceding_comment_block() {
        let src = "// ordering: spans\n// two lines\nx.load(Ordering::Relaxed);\ny.load(Ordering::Relaxed);\n";
        let f = lex(src);
        assert!(f.justified(2, "ordering:"));
        assert!(!f.justified(3, "ordering:"), "a code line breaks the comment block");
    }
}
