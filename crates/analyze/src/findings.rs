//! Finding and report types, plus the machine-readable JSON emitter.

use std::collections::BTreeMap;
use std::fmt;

/// Which rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// An `Ordering::*` site without an `// ordering:` justification.
    Ordering,
    /// An unjustified panic-family site (`unwrap`/`expect`/`panic!`/…).
    Panic,
    /// A panic budget in `analyze.toml` that disagrees with the scan.
    PanicBudget,
    /// A lock acquired out of hierarchy order.
    LockOrder,
    /// A guard held across a call into another locking module.
    LockCross,
    /// A `.lock()`/`.read()`/`.write()` on a receiver no declared lock
    /// matches, in a file the lock map claims to cover.
    LockUnknown,
    /// Raw epoch arithmetic or a bare `StoreVersion` literal outside the
    /// blessed constructors.
    Epoch,
}

impl RuleId {
    /// The stable rule name used in output, suppressions
    /// (`// analyze: allow(<name>)`) and the docs.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::Ordering => "ordering",
            RuleId::Panic => "panic",
            RuleId::PanicBudget => "panic-budget",
            RuleId::LockOrder => "lock-order",
            RuleId::LockCross => "lock-cross",
            RuleId::LockUnknown => "lock-unknown",
            RuleId::Epoch => "epoch",
        }
    }

    /// The suppression marker that silences the rule at a site.
    pub fn allow_marker(self) -> String {
        format!("analyze: allow({})", self.name())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: RuleId,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.name(), self.message)
    }
}

/// One `Ordering::*` use site, for the audit inventory.
#[derive(Debug, Clone)]
pub struct OrderingSite {
    pub file: String,
    /// 1-based.
    pub line: usize,
    /// `Relaxed` / `SeqCst` / `Acquire` / `Release` / `AcqRel`.
    pub kind: String,
    /// Text following the `ordering:` marker, when present.
    pub justification: Option<String>,
    pub in_test: bool,
}

/// The full result of one analysis pass.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub ordering_inventory: Vec<OrderingSite>,
    /// Unjustified panic-family sites per file (the burn-down counts the
    /// budgets in `analyze.toml` must match exactly).
    pub panic_counts: BTreeMap<String, usize>,
    pub files_scanned: usize,
}

impl Report {
    /// Total unjustified panic-family sites across the workspace.
    pub fn panic_total(&self) -> usize {
        self.panic_counts.values().sum()
    }

    /// The findings as a JSON array (machine-readable CI output).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_str(f.rule.name()),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                comma
            ));
        }
        out.push_str("  ],\n  \"ordering_inventory\": [\n");
        for (i, s) in self.ordering_inventory.iter().enumerate() {
            let comma = if i + 1 < self.ordering_inventory.len() { "," } else { "" };
            let just = match &s.justification {
                Some(j) => json_str(j),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"kind\": {}, \"in_test\": {}, \"justification\": {}}}{}\n",
                json_str(&s.file),
                s.line,
                json_str(&s.kind),
                s.in_test,
                just,
                comma
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"files_scanned\": {},\n  \"panic_total\": {}\n}}\n",
            self.files_scanned,
            self.panic_total()
        ));
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_renders() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: RuleId::Panic,
            file: "a/b.rs".to_string(),
            line: 3,
            message: "say \"no\"".to_string(),
        });
        let json = r.to_json();
        assert!(json.contains("\"rule\": \"panic\""));
        assert!(json.contains("say \\\"no\\\""));
        assert!(json.contains("\"panic_total\": 0"));
    }
}
