//! Typed interpretation of `analyze.toml`.
//!
//! The config file declares the facts the rules check against: per-file
//! panic budgets (the burn-down allowlist), the lock hierarchy (named
//! locks with ranks and receiver patterns), the cross-module call
//! patterns a guard must not be held across, and the files blessed to do
//! raw epoch arithmetic.

use crate::toml::{self, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A malformed `analyze.toml`.
#[derive(Debug, Clone)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analyze.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// One declared lock: a rank in the acquisition order plus the receiver
/// expressions that acquire it in the files it lives in.
#[derive(Debug, Clone)]
pub struct LockDecl {
    pub name: String,
    /// Locks must be acquired in strictly increasing rank order.
    pub rank: i64,
    /// Receiver prefixes, e.g. `self.writer` or `self.shard_of(`. A
    /// `.lock()` / `.read()` / `.write()` whose receiver starts with one
    /// of these (in a covered file) is an acquisition of this lock.
    pub receivers: Vec<String>,
    /// Workspace-relative files this lock is acquired in.
    pub files: Vec<String>,
}

/// A locking module boundary: call patterns that internally take locks of
/// at least `min_rank`, so no guard of rank >= `min_rank` may be live at
/// a call site.
#[derive(Debug, Clone)]
pub struct ModuleDecl {
    pub name: String,
    pub min_rank: i64,
    /// Substring patterns identifying calls into the module,
    /// e.g. `self.cache.` or `.wake()`.
    pub patterns: Vec<String>,
}

/// The whole typed configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Unjustified-panic count recorded by the first-ever scan; the
    /// committed budgets must sum strictly below it (monotone burn-down).
    pub panic_initial_scan: i64,
    /// Per-file budgets of unjustified panic-family sites. The scan must
    /// match each budget *exactly*: more is a regression, fewer means the
    /// budget is stale and must be shrunk in the same change.
    pub panic_budgets: BTreeMap<String, i64>,
    /// Files allowed to construct `StoreVersion` literals and do raw
    /// `.epoch()` arithmetic (the blessed constructors).
    pub epoch_allow_files: Vec<String>,
    pub locks: Vec<LockDecl>,
    pub modules: Vec<ModuleDecl>,
}

impl Config {
    /// Parses and types an `analyze.toml` source string.
    pub fn parse(source: &str) -> Result<Config, ConfigError> {
        let root = toml::parse(source).map_err(|e| ConfigError(e.to_string()))?;
        let mut cfg = Config::default();

        if let Some(panics) = root.get("panics") {
            cfg.panic_initial_scan =
                panics.get("initial_scan").and_then(Value::as_int).unwrap_or(0);
            if let Some(allows) = panics.get("allow").and_then(Value::as_array) {
                for entry in allows {
                    let file = entry
                        .get("file")
                        .and_then(Value::as_str)
                        .ok_or_else(|| {
                            ConfigError("[[panics.allow]] entry missing `file`".to_string())
                        })?
                        .to_string();
                    let count = entry.get("count").and_then(Value::as_int).ok_or_else(|| {
                        ConfigError(format!("[[panics.allow]] for `{file}` missing `count`"))
                    })?;
                    if count <= 0 {
                        return Err(ConfigError(format!(
                            "[[panics.allow]] for `{file}` has non-positive count {count}; \
                             delete the entry instead"
                        )));
                    }
                    if cfg.panic_budgets.insert(file.clone(), count).is_some() {
                        return Err(ConfigError(format!(
                            "duplicate [[panics.allow]] entry for `{file}`"
                        )));
                    }
                }
            }
        }

        if let Some(epochs) = root.get("epochs") {
            cfg.epoch_allow_files = epochs.str_array("allow_files");
        }

        if let Some(locks) = root.get("locks") {
            if let Some(decls) = locks.get("lock").and_then(Value::as_array) {
                for entry in decls {
                    let name = req_str(entry, "name", "[[locks.lock]]")?;
                    let rank = entry.get("rank").and_then(Value::as_int).ok_or_else(|| {
                        ConfigError(format!("[[locks.lock]] `{name}` missing `rank`"))
                    })?;
                    let decl = LockDecl {
                        rank,
                        receivers: entry.str_array("receivers"),
                        files: entry.str_array("files"),
                        name: name.clone(),
                    };
                    if decl.receivers.is_empty() || decl.files.is_empty() {
                        return Err(ConfigError(format!(
                            "[[locks.lock]] `{name}` needs non-empty `receivers` and `files`"
                        )));
                    }
                    cfg.locks.push(decl);
                }
            }
            if let Some(decls) = locks.get("module").and_then(Value::as_array) {
                for entry in decls {
                    let name = req_str(entry, "name", "[[locks.module]]")?;
                    let min_rank =
                        entry.get("min_rank").and_then(Value::as_int).ok_or_else(|| {
                            ConfigError(format!("[[locks.module]] `{name}` missing `min_rank`"))
                        })?;
                    let patterns = entry.str_array("patterns");
                    if patterns.is_empty() {
                        return Err(ConfigError(format!(
                            "[[locks.module]] `{name}` needs non-empty `patterns`"
                        )));
                    }
                    cfg.modules.push(ModuleDecl { name, min_rank, patterns });
                }
            }
        }

        let mut names: Vec<&str> = cfg.locks.iter().map(|l| l.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != cfg.locks.len() {
            return Err(ConfigError("duplicate lock names in [[locks.lock]]".to_string()));
        }
        Ok(cfg)
    }

    /// Lock declarations that apply to `file` (workspace-relative path).
    pub fn locks_for(&self, file: &str) -> Vec<&LockDecl> {
        self.locks.iter().filter(|l| l.files.iter().any(|f| f == file)).collect()
    }

    /// True when the lock map claims coverage of `file`, so an unmatched
    /// acquisition there is a finding rather than background noise.
    pub fn lock_covered(&self, file: &str) -> bool {
        self.locks.iter().any(|l| l.files.iter().any(|f| f == file))
    }
}

fn req_str(entry: &Value, key: &str, ctx: &str) -> Result<String, ConfigError> {
    entry
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ConfigError(format!("{ctx} entry missing `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_config() {
        let cfg = Config::parse(
            r#"
[panics]
initial_scan = 30

[[panics.allow]]
file = "crates/a/src/lib.rs"
count = 4

[epochs]
allow_files = ["crates/constraints/src/store.rs"]

[[locks.lock]]
name = "service.writer"
rank = 10
receivers = ["self.writer"]
files = ["crates/service/src/service.rs"]

[[locks.module]]
name = "wakers"
min_rank = 0
patterns = [".wake()"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.panic_initial_scan, 30);
        assert_eq!(cfg.panic_budgets.get("crates/a/src/lib.rs"), Some(&4));
        assert!(cfg.lock_covered("crates/service/src/service.rs"));
        assert!(!cfg.lock_covered("crates/a/src/lib.rs"));
        assert_eq!(cfg.locks_for("crates/service/src/service.rs").len(), 1);
        assert_eq!(cfg.modules[0].min_rank, 0);
    }

    #[test]
    fn rejects_zero_budgets_and_duplicates() {
        let err = Config::parse("[[panics.allow]]\nfile = \"x.rs\"\ncount = 0\n").unwrap_err();
        assert!(err.0.contains("non-positive"));
        let err = Config::parse(
            "[[panics.allow]]\nfile = \"x.rs\"\ncount = 1\n[[panics.allow]]\nfile = \"x.rs\"\ncount = 2\n",
        )
        .unwrap_err();
        assert!(err.0.contains("duplicate"));
    }
}
