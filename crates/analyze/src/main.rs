//! CLI for `sqo-analyze`.
//!
//! ```text
//! cargo run -p sqo-analyze                 # report findings, exit 0
//! cargo run -p sqo-analyze -- --deny       # exit 1 on any finding (CI)
//! cargo run -p sqo-analyze -- --json out.json
//! cargo run -p sqo-analyze -- --inventory  # ordering inventory (markdown)
//! cargo run -p sqo-analyze -- --root /path/to/workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    deny: bool,
    json: Option<PathBuf>,
    inventory: bool,
}

fn parse_args() -> Result<Args, String> {
    // Default to the workspace root whether invoked via `cargo run -p`
    // (manifest dir is crates/analyze) or as a bare binary from the root.
    let default_root = match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(p)
        }
        None => PathBuf::from("."),
    };
    let mut args = Args { root: default_root, deny: false, json: None, inventory: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--inventory" => args.inventory = true,
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--json needs a path".to_string())?,
                ));
            }
            "--root" => {
                args.root =
                    PathBuf::from(it.next().ok_or_else(|| "--root needs a path".to_string())?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: sqo-analyze [--deny] [--json <path>] [--inventory] [--root <dir>]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let report = match sqo_analyze::run(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sqo-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("sqo-analyze: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if args.inventory {
        print!("{}", inventory_markdown(&report));
    }

    for finding in &report.findings {
        println!("{finding}");
    }
    let justified = report
        .ordering_inventory
        .iter()
        .filter(|s| !s.in_test && s.justification.is_some())
        .count();
    let non_test = report.ordering_inventory.iter().filter(|s| !s.in_test).count();
    println!(
        "sqo-analyze: {} files, {} findings, {} unjustified panic sites \
         across {} files, {}/{} non-test ordering sites justified",
        report.files_scanned,
        report.findings.len(),
        report.panic_total(),
        report.panic_counts.len(),
        justified,
        non_test,
    );

    if args.deny && !report.findings.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// The ordering inventory as a markdown table (the source of the table
/// in `docs/ANALYSIS.md`).
fn inventory_markdown(report: &sqo_analyze::findings::Report) -> String {
    let mut out = String::from("| File | Line | Ordering | Justification |\n|---|---|---|---|\n");
    for site in &report.ordering_inventory {
        if site.in_test {
            continue;
        }
        let just = site.justification.as_deref().unwrap_or("(missing)");
        out.push_str(&format!(
            "| `{}` | {} | `{}` | {} |\n",
            site.file, site.line, site.kind, just
        ));
    }
    out
}
