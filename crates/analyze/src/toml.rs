//! A minimal hand-rolled TOML subset parser — exactly what `analyze.toml`
//! needs and nothing more: top-level and dotted tables, arrays of tables,
//! string / integer / boolean values, inline string arrays, and `#`
//! comments. No dates, no floats, no inline tables, no multi-line strings.
//!
//! Kept deliberately tiny so the analysis tool has zero dependencies; the
//! grammar it accepts is documented in `docs/ANALYSIS.md`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    Array(Vec<Value>),
    Table(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// `table[key]` when this is a table and the key exists.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_table().and_then(|t| t.get(key))
    }

    /// A `key = ["a", "b"]` entry as owned strings (empty when absent).
    pub fn str_array(&self, key: &str) -> Vec<String> {
        self.get(key)
            .and_then(Value::as_array)
            .map(|a| a.iter().filter_map(|v| v.as_str().map(str::to_string)).collect())
            .unwrap_or_default()
    }
}

/// A parse failure with its 1-based line.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

/// Parses `source` into the root table.
pub fn parse(source: &str) -> Result<Value, TomlError> {
    let mut root = BTreeMap::new();
    // Path of the table currently receiving `key = value` lines, and
    // whether that path names an array-of-tables element (append mode).
    let mut current: Vec<String> = Vec::new();
    let mut current_is_array = false;
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(path) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            current = split_path(path);
            current_is_array = true;
            let arr = resolve_array(&mut root, &current, lineno)?;
            arr.push(Value::Table(BTreeMap::new()));
            continue;
        }
        if let Some(path) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            current = split_path(path);
            current_is_array = false;
            resolve_table(&mut root, &current, lineno)?;
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| TomlError {
            line: lineno,
            message: format!("expected `key = value`, found `{line}`"),
        })?;
        let key = key.trim().to_string();
        let value = parse_value(value.trim(), lineno)?;
        let table = if current_is_array {
            let arr = resolve_array(&mut root, &current, lineno)?;
            match arr.last_mut() {
                Some(Value::Table(t)) => t,
                _ => {
                    return Err(TomlError {
                        line: lineno,
                        message: "array of tables has no open element".to_string(),
                    })
                }
            }
        } else {
            resolve_table(&mut root, &current, lineno)?
        };
        table.insert(key, value);
    }
    Ok(Value::Table(root))
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside a string starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_path(path: &str) -> Vec<String> {
    path.split('.').map(|s| s.trim().to_string()).collect()
}

/// Walks (creating as needed) to the table at `path`.
fn resolve_table<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
    line: usize,
) -> Result<&'a mut BTreeMap<String, Value>, TomlError> {
    let mut node = root;
    for seg in path {
        let entry = node.entry(seg.clone()).or_insert_with(|| Value::Table(BTreeMap::new()));
        node = match entry {
            Value::Table(t) => t,
            Value::Array(a) => match a.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return Err(TomlError { line, message: format!("`{seg}` is not a table") }),
            },
            _ => {
                return Err(TomlError { line, message: format!("`{seg}` is not a table") });
            }
        };
    }
    Ok(node)
}

/// Walks to the array-of-tables at `path`, creating it at the leaf.
fn resolve_array<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
    line: usize,
) -> Result<&'a mut Vec<Value>, TomlError> {
    let (leaf, parents) = path
        .split_last()
        .ok_or_else(|| TomlError { line, message: "empty table path".to_string() })?;
    let parent = resolve_table(root, parents, line)?;
    let entry = parent.entry(leaf.clone()).or_insert_with(|| Value::Array(Vec::new()));
    match entry {
        Value::Array(a) => Ok(a),
        _ => Err(TomlError { line, message: format!("`{leaf}` is not an array of tables") }),
    }
}

fn parse_value(text: &str, line: usize) -> Result<Value, TomlError> {
    if let Some(rest) = text.strip_prefix('"') {
        let end = rest
            .rfind('"')
            .ok_or_else(|| TomlError { line, message: "unterminated string".to_string() })?;
        return Ok(Value::Str(rest[..end].to_string()));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part, line)?);
            }
        }
        return Ok(Value::Array(items));
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| TomlError { line, message: format!("unsupported value `{text}`") })
}

/// Splits on commas that are outside quotes.
fn split_top_level(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut buf = String::new();
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                buf.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut buf));
            }
            _ => buf.push(c),
        }
    }
    if !buf.trim().is_empty() {
        parts.push(buf);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_analyze_toml_shapes() {
        let src = r#"
# comment
[panics]
initial_scan = 400   # trailing comment

[[panics.allow]]
file = "crates/storage/src/db.rs"
count = 12

[[panics.allow]]
file = "crates/exec/src/oracle.rs"
count = 3

[epochs]
allow_files = ["crates/constraints/src/store.rs"]

[[locks.lock]]
name = "service.writer"
rank = 10
receivers = ["self.writer"]
files = ["crates/service/src/service.rs"]
"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("panics").unwrap().get("initial_scan").unwrap().as_int(), Some(400));
        let allows = v.get("panics").unwrap().get("allow").unwrap().as_array().unwrap();
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[1].get("count").unwrap().as_int(), Some(3));
        assert_eq!(
            v.get("epochs").unwrap().str_array("allow_files"),
            vec!["crates/constraints/src/store.rs".to_string()]
        );
        let locks = v.get("locks").unwrap().get("lock").unwrap().as_array().unwrap();
        assert_eq!(locks[0].get("rank").unwrap().as_int(), Some(10));
        assert_eq!(locks[0].str_array("receivers"), vec!["self.writer".to_string()]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("[a]\nnot a kv line\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
