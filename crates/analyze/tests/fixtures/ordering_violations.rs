// Fixture: every flavor of atomic-ordering violation and exemption.
// Never compiled — lexed by tests/fixtures.rs. Line numbers matter.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::atomic::Ordering as AtomicOrdering;

fn unjustified(n: &AtomicU64) -> u64 {
    n.load(Ordering::Relaxed)
}

fn justified(n: &AtomicU64) -> u64 {
    // ordering: display counter, no cross-data ordering needed.
    n.load(Ordering::Relaxed)
}

fn inline_justified(n: &AtomicU64) {
    n.fetch_add(1, Ordering::Release); // ordering: publishes the batch above
}

fn aliased(n: &AtomicU64) -> u64 {
    n.load(AtomicOrdering::Acquire)
}

fn not_an_atomic(a: u64, b: u64) -> std::cmp::Ordering {
    // cmp::Ordering variants must not match the atomic rule.
    if a < b { std::cmp::Ordering::Less } else { std::cmp::Ordering::Greater }
}

fn in_a_string() -> &'static str {
    "Ordering::SeqCst inside a string is not code"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_inventoried_but_not_flagged() {
        N.store(1, Ordering::SeqCst);
    }
}
