// Fixture: lock-discipline violations and exemptions. Never compiled.
// The fixture config ranks outer=10 < inner=20 and bans `.wake()` while
// holding any guard.
impl Fixture {
    fn descending(&self) {
        let b = self.inner.lock();
        let a = self.outer.lock();
    }

    fn ascending(&self) {
        let a = self.outer.lock();
        let b = self.inner.lock();
    }

    fn scoped_then_reversed(&self) {
        {
            let b = self.inner.lock();
            b.touch();
        }
        let a = self.outer.lock();
    }

    fn dropped_then_reversed(&self) {
        let b = self.inner.lock();
        drop(b);
        let a = self.outer.lock();
    }

    fn wake_under_guard(&self, waker: &Waker) {
        let a = self.outer.lock();
        waker.wake_by_ref();
    }

    fn wake_lock_free(&self, waker: Waker) {
        {
            let a = self.outer.lock();
            a.touch();
        }
        waker.wake();
    }

    fn unknown_receiver(&self) {
        let g = self.mystery.lock();
    }

    fn temporary_dies_at_statement(&self) -> usize {
        let n = self.inner.lock().len();
        let a = self.outer.lock();
        n
    }
}
