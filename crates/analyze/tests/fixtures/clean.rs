// Fixture: realistic production code every rule must stay silent on.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counters {
    hits: AtomicU64,
    lookups: AtomicU64,
}

impl Counters {
    pub fn record_hit(&self) {
        // ordering: Relaxed lookup count first; the hit below publishes
        // with Release so snapshots never see hits > lookups.
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Release); // ordering: pairs with stats()
    }

    pub fn stats(&self) -> (u64, u64) {
        // ordering: Acquire pairs with record_hit's Release increment.
        let hits = self.hits.load(Ordering::Acquire);
        let lookups = self.lookups.load(Ordering::Relaxed); // ordering: see above
        (hits, lookups)
    }

    pub fn ratio(&self) -> Option<f64> {
        let (hits, lookups) = self.stats();
        if lookups == 0 {
            return None;
        }
        Some(hits as f64 / lookups as f64)
    }
}

impl Fixture {
    fn hierarchy_respected(&self) {
        let a = self.outer.lock();
        let b = self.inner.lock();
        b.merge(&a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_are_free() {
        let c = Counters { hits: AtomicU64::new(0), lookups: AtomicU64::new(0) };
        c.record_hit();
        assert_eq!(c.stats().0, 1);
        None::<u32>.unwrap_or(7);
    }
}
