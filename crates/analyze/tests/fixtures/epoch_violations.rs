// Fixture: epoch-discipline violations and exemptions. Never compiled.
fn raw_epoch_arithmetic(store: &ConstraintStore) -> u64 {
    store.epoch() + 1
}

fn forged_version(generation: u64, epoch: u64) -> StoreVersion {
    StoreVersion { generation, epoch }
}

fn blessed_call(store: &ConstraintStore) -> StoreVersion {
    store.store_version()
}

struct StoreVersion {
    generation: u64,
    epoch: u64,
}

impl StoreVersion {
    fn current(&self) -> u64 {
        self.epoch
    }
}

pub fn returns_a_version(store: &ConstraintStore) -> StoreVersion {
    store.version()
}

fn allowed(generation: u64, epoch: u64) -> StoreVersion {
    StoreVersion { generation, epoch } // analyze: allow(epoch): fixture
}
