// Fixture: panic-freedom violations and exemptions. Never compiled.
fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn expects(x: Option<u32>) -> u32 {
    x.expect("fixture")
}

fn panics() {
    panic!("fixture");
}

fn unreachable_macro() {
    unreachable!("fixture");
}

fn justified(q: &mut Vec<u32>) -> u32 {
    // invariant: the caller pushed one element two lines up.
    q.pop().unwrap()
}

fn allowed(q: &mut Vec<u32>) -> u32 {
    q.pop().unwrap() // analyze: allow(panic): fixture exercising the marker
}

fn lookalikes(x: Option<u32>) -> u32 {
    let s = "panic! and .unwrap() in a string";
    let _ = s;
    my_panic!("not the macro");
    x.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        None::<u32>.unwrap();
    }
}
