//! Self-test: the committed workspace passes its own analyzer in deny
//! mode. This is the same check CI runs (`cargo run -p sqo-analyze --
//! --deny`), wired into `cargo test` so a violation cannot land even on
//! machines that only run the test suite.

use std::path::Path;

#[test]
fn workspace_is_deny_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = sqo_analyze::run(&root).expect("workspace analysis runs");
    assert!(
        report.findings.is_empty(),
        "the workspace must be deny-clean; found:\n{}",
        report.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert!(report.files_scanned > 50, "walker saw the whole workspace: {}", report.files_scanned);
}

#[test]
fn panic_budget_is_strictly_below_the_initial_scan() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let source = std::fs::read_to_string(root.join("analyze.toml")).expect("config exists");
    let cfg = sqo_analyze::config::Config::parse(&source).expect("config parses");
    let sum: i64 = cfg.panic_budgets.values().sum();
    assert!(cfg.panic_initial_scan > 0, "initial scan recorded");
    assert!(
        sum < cfg.panic_initial_scan,
        "allowlist must burn down: budget sum {sum} >= initial scan {}",
        cfg.panic_initial_scan
    );
    // Every non-test ordering site in the engine carries a justification.
    let report = sqo_analyze::run(&root).expect("workspace analysis runs");
    let (justified, total) = report
        .ordering_inventory
        .iter()
        .filter(|s| !s.in_test)
        .fold((0usize, 0usize), |(j, t), s| (j + usize::from(s.justification.is_some()), t + 1));
    assert_eq!(justified, total, "unjustified ordering sites exist");
    assert!(total >= 80, "the engine's ordering surface is inventoried: {total}");
}
