//! Fixture-file proof that every rule fires on seeded violations at the
//! expected lines — and stays silent on clean, idiomatic code. The
//! fixtures live under `tests/fixtures/` (never compiled; the workspace
//! walker skips `tests/` directories, so they cannot pollute the real
//! scan either).

use sqo_analyze::config::Config;
use sqo_analyze::findings::{Report, RuleId};
use sqo_analyze::{analyze_source, apply_panic_budgets};

const ORDERING: &str = include_str!("fixtures/ordering_violations.rs");
const PANICS: &str = include_str!("fixtures/panic_violations.rs");
const EPOCHS: &str = include_str!("fixtures/epoch_violations.rs");
const LOCKS: &str = include_str!("fixtures/lock_violations.rs");
const CLEAN: &str = include_str!("fixtures/clean.rs");

/// The fixture workspace facts: a two-lock hierarchy over the lock and
/// clean fixtures, a waker boundary, and no panic budgets (so panic
/// sites surface per-line).
fn fixture_config() -> Config {
    Config::parse(
        r#"
[[locks.lock]]
name = "outer"
rank = 10
receivers = ["self.outer"]
files = ["lock_violations.rs", "clean.rs"]

[[locks.lock]]
name = "inner"
rank = 20
receivers = ["self.inner"]
files = ["lock_violations.rs", "clean.rs"]

[[locks.module]]
name = "wakers"
min_rank = 0
patterns = [".wake()", ".wake_by_ref()"]
"#,
    )
    .expect("fixture config parses")
}

fn scan(file: &str, source: &str) -> Report {
    let mut report = Report::default();
    analyze_source(file, source, &fixture_config(), &mut report);
    report
}

fn lines_of(report: &Report, rule: RuleId) -> Vec<usize> {
    report.findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

#[test]
fn ordering_rule_fires_on_each_seeded_violation() {
    let report = scan("ordering_violations.rs", ORDERING);
    assert_eq!(
        lines_of(&report, RuleId::Ordering),
        vec![7, 20],
        "bare Relaxed and the aliased Acquire are the only violations: {:?}",
        report.findings
    );
    // The inventory records every site — justified, aliased, and test.
    assert_eq!(report.ordering_inventory.len(), 5, "{:?}", report.ordering_inventory);
    let test_site = report
        .ordering_inventory
        .iter()
        .find(|s| s.line == 36)
        .expect("the cfg(test) SeqCst is inventoried");
    assert!(test_site.in_test);
    assert!(report.ordering_inventory.iter().any(|s| s.line == 12 && s.justification.is_some()));
}

#[test]
fn panic_rule_fires_on_each_seeded_violation() {
    let report = scan("panic_violations.rs", PANICS);
    assert_eq!(
        lines_of(&report, RuleId::Panic),
        vec![3, 7, 11, 15],
        "unwrap/expect/panic!/unreachable! and nothing else: {:?}",
        report.findings
    );
    assert_eq!(report.panic_counts.get("panic_violations.rs"), Some(&4));
}

#[test]
fn epoch_rule_fires_on_arithmetic_and_forged_literals() {
    let report = scan("epoch_violations.rs", EPOCHS);
    assert_eq!(
        lines_of(&report, RuleId::Epoch),
        vec![3, 7],
        "raw epoch arithmetic and the struct literal only: {:?}",
        report.findings
    );
}

#[test]
fn lock_rules_fire_on_order_cross_and_unknown() {
    let report = scan("lock_violations.rs", LOCKS);
    assert_eq!(lines_of(&report, RuleId::LockOrder), vec![7], "{:?}", report.findings);
    assert_eq!(lines_of(&report, RuleId::LockCross), vec![31], "{:?}", report.findings);
    assert_eq!(lines_of(&report, RuleId::LockUnknown), vec![43], "{:?}", report.findings);
}

#[test]
fn clean_code_stays_silent_under_every_rule() {
    let report = scan("clean.rs", CLEAN);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.panic_counts.is_empty());
    // Justified sites still land in the inventory.
    assert_eq!(report.ordering_inventory.len(), 4);
    assert!(report.ordering_inventory.iter().all(|s| s.justification.is_some()));
}

#[test]
fn budgets_must_match_the_scan_exactly_and_burn_down() {
    let cfg = Config::parse(
        "[panics]\ninitial_scan = 10\n[[panics.allow]]\nfile = \"panic_violations.rs\"\ncount = 4\n",
    )
    .expect("budget config parses");
    let mut exact = Report::default();
    analyze_source("panic_violations.rs", PANICS, &cfg, &mut exact);
    apply_panic_budgets(&cfg, &mut exact);
    assert!(exact.findings.is_empty(), "a matching budget is clean: {:?}", exact.findings);

    // A stale (over-generous) budget is itself a finding.
    let generous = Config::parse(
        "[panics]\ninitial_scan = 10\n[[panics.allow]]\nfile = \"panic_violations.rs\"\ncount = 5\n",
    )
    .expect("config parses");
    let mut stale = Report::default();
    analyze_source("panic_violations.rs", PANICS, &generous, &mut stale);
    apply_panic_budgets(&generous, &mut stale);
    assert_eq!(lines_of(&stale, RuleId::PanicBudget).len(), 1, "{:?}", stale.findings);
    assert!(stale.findings[0].message.contains("shrink"));

    // A budget sum at (or past) the initial scan has not burned down.
    let frozen = Config::parse(
        "[panics]\ninitial_scan = 4\n[[panics.allow]]\nfile = \"panic_violations.rs\"\ncount = 4\n",
    )
    .expect("config parses");
    let mut report = Report::default();
    analyze_source("panic_violations.rs", PANICS, &frozen, &mut report);
    apply_panic_budgets(&frozen, &mut report);
    assert!(report.findings.iter().any(|f| f.message.contains("burned down")));
}
