//! Database-instance generation for the Table 4.1 experiments.
//!
//! Instances honor the table's two knobs — average class cardinality and
//! average relationship cardinality — and are *repaired* against the
//! generated constraints by a monotone forcing fixpoint, so the optimizer's
//! trust in the constraint set is justified by construction (and checked by
//! tests via `Database::check_constraint`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqo_catalog::{Catalog, Multiplicity, Value};
use sqo_storage::{Database, IntegrityOptions, ObjectId, StorageError};
use std::sync::Arc;

use crate::bench_schema::{DERIVED_ATTRS, FEATURE_ATTRS};
use crate::constraint_gen::{category_value, Forcing};

/// Size parameters of one database instance (one column of Table 4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataGenConfig {
    pub class_cardinality: u64,
    pub avg_rel_cardinality: u64,
    pub seed: u64,
    pub categories_per_class: usize,
}

impl DataGenConfig {
    pub fn new(class_cardinality: u64, avg_rel_cardinality: u64, seed: u64) -> Self {
        Self { class_cardinality, avg_rel_cardinality, seed, categories_per_class: 8 }
    }
}

/// The four instances of Table 4.1:
/// class cardinality 52 / 104 / 208 / 208, relationship cardinality
/// 77 / 154 / 308 / 616 ("66" in the published table read as the obvious
/// typo for 6 relationships).
pub fn table41_configs(seed: u64) -> [DataGenConfig; 4] {
    [
        DataGenConfig::new(52, 77, seed),
        DataGenConfig::new(104, 154, seed),
        DataGenConfig::new(208, 308, seed),
        DataGenConfig::new(208, 616, seed),
    ]
}

/// Generates a database over a benchmark-layout catalog, enforcing
/// `forcings` so every generated constraint holds.
pub fn generate_database(
    catalog: Arc<Catalog>,
    config: &DataGenConfig,
    forcings: &[Forcing],
) -> Result<Database, StorageError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.class_cardinality as usize;

    // ---- tuples ------------------------------------------------------------
    // Local representation first; forcing runs before loading.
    let mut extents: Vec<Vec<Vec<Value>>> = Vec::with_capacity(catalog.class_count());
    for (cid, cdef) in catalog.classes() {
        let mut extent = Vec::with_capacity(n);
        for i in 0..n {
            let mut tuple = Vec::with_capacity(cdef.attributes.len());
            for attr in &cdef.attributes {
                let v = match attr.name.as_str() {
                    "key" => Value::Int(i as i64),
                    a if a == FEATURE_ATTRS[0] => {
                        let k = rng.gen_range(0..config.categories_per_class);
                        category_value(&catalog, cid, k)
                    }
                    a if a == FEATURE_ATTRS[1] => Value::Int(rng.gen_range(0..100)),
                    a if a == FEATURE_ATTRS[2] => Value::Int(rng.gen_range(0..1000)),
                    a if a == DERIVED_ATTRS[0] => Value::str(format!("v{}", rng.gen_range(0..50))),
                    a if a == DERIVED_ATTRS[1] => Value::Int(rng.gen_range(0..500)),
                    a if a == DERIVED_ATTRS[2] => Value::str(format!("w{}", rng.gen_range(0..50))),
                    _ => default_value(attr.ty, &mut rng),
                };
                tuple.push(v);
            }
            extent.push(tuple);
        }
        extents.push(extent);
    }

    // ---- links -------------------------------------------------------------
    // Spine relationships (to-one + total from one side) link every object on
    // that side exactly once; fan relationships absorb the remaining link
    // budget implied by the average relationship cardinality.
    let rel_count = catalog.relationship_count();
    let spine: Vec<bool> = catalog
        .relationships()
        .map(|(_, def)| {
            (def.left.multiplicity == Multiplicity::One && def.left.total)
                || (def.right.multiplicity == Multiplicity::One && def.right.total)
        })
        .collect();
    let spine_links: u64 = spine.iter().filter(|&&s| s).count() as u64 * n as u64;
    let total_target = config.avg_rel_cardinality * rel_count as u64;
    let fan_count = spine.iter().filter(|&&s| !s).count() as u64;
    let fan_target = total_target.saturating_sub(spine_links).checked_div(fan_count).unwrap_or(0);

    let mut links: Vec<Vec<(ObjectId, ObjectId)>> = Vec::with_capacity(rel_count);
    for (rid, def) in catalog.relationships() {
        let ln = extents[def.left.class.index()].len();
        let rn = extents[def.right.class.index()].len();
        let mut pairs = Vec::new();
        if spine[rid.index()] {
            // The to-one+total side gets exactly one partner each.
            if def.left.multiplicity == Multiplicity::One && def.left.total {
                for l in 0..ln {
                    pairs.push((ObjectId(l as u32), ObjectId(rng.gen_range(0..rn) as u32)));
                }
            } else {
                for r in 0..rn {
                    pairs.push((ObjectId(rng.gen_range(0..ln) as u32), ObjectId(r as u32)));
                }
            }
        } else {
            let mut seen = std::collections::HashSet::new();
            let mut guard = 0;
            while (pairs.len() as u64) < fan_target && guard < fan_target * 20 + 100 {
                guard += 1;
                let l = rng.gen_range(0..ln) as u32;
                let r = rng.gen_range(0..rn) as u32;
                if seen.insert((l, r)) {
                    pairs.push((ObjectId(l), ObjectId(r)));
                }
            }
        }
        links.push(pairs);
    }

    // ---- forcing fixpoint ---------------------------------------------------
    // Monotone: attributes only ever move to their slot's forced value.
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 16 {
        changed = false;
        rounds += 1;
        for f in forcings {
            let (ac, aa, av) = (&f.antecedent.0, f.antecedent.1, &f.antecedent.2);
            let (cc, ca, cv) = (&f.consequent.0, f.consequent.1, &f.consequent.2);
            match f.rel {
                None => {
                    debug_assert_eq!(ac, cc, "intra forcing spans one class");
                    for tuple in extents[ac.index()].iter_mut() {
                        if &tuple[aa.index()] == av && &tuple[ca.index()] != cv {
                            tuple[ca.index()] = cv.clone();
                            changed = true;
                        }
                    }
                }
                Some(rel) => {
                    let def = catalog.relationship(rel).expect("generated rel");
                    let (lc, _) = def.classes();
                    for &(l, r) in &links[rel.index()] {
                        // Orient the pair to (antecedent object, consequent object).
                        let (ante_oid, cons_oid) = if *ac == lc { (l, r) } else { (r, l) };
                        let holds = {
                            let t = &extents[ac.index()][ante_oid.index()];
                            &t[aa.index()] == av
                        };
                        if holds {
                            let t = &mut extents[cc.index()][cons_oid.index()];
                            if &t[ca.index()] != cv {
                                t[ca.index()] = cv.clone();
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
    }

    // ---- load ---------------------------------------------------------------
    let mut b = Database::builder(Arc::clone(&catalog));
    for (cid, _) in catalog.classes() {
        for tuple in extents[cid.index()].drain(..) {
            b.insert(cid, tuple)?;
        }
    }
    for (rid, _) in catalog.relationships() {
        for &(l, r) in &links[rid.index()] {
            b.link(rid, l, r)?;
        }
    }
    b.finalize(IntegrityOptions::default())
}

fn default_value(ty: sqo_catalog::DataType, rng: &mut StdRng) -> Value {
    match ty {
        sqo_catalog::DataType::Int => Value::Int(rng.gen_range(0..1000)),
        sqo_catalog::DataType::Float => Value::float(rng.gen_range(0.0..1000.0)).expect("finite"),
        sqo_catalog::DataType::Str => Value::str(format!("s{}", rng.gen_range(0..100))),
        sqo_catalog::DataType::Bool => Value::Bool(rng.gen_bool(0.5)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_schema::bench_catalog;
    use crate::constraint_gen::{generate_constraints, ConstraintGenConfig};

    fn setup(
        card: u64,
        avg_rel: u64,
    ) -> (Arc<Catalog>, Database, crate::constraint_gen::GeneratedConstraints) {
        let catalog = Arc::new(bench_catalog().unwrap());
        let gen = generate_constraints(&catalog, ConstraintGenConfig::default()).unwrap();
        let db = generate_database(
            Arc::clone(&catalog),
            &DataGenConfig::new(card, avg_rel, 11),
            &gen.forcings,
        )
        .unwrap();
        (catalog, db, gen)
    }

    #[test]
    fn cardinalities_match_table41_config() {
        let (catalog, db, _) = setup(52, 77);
        for (cid, _) in catalog.classes() {
            assert_eq!(db.cardinality(cid), 52);
        }
        // Total links ≈ 6 × 77 (spine exact, fan bounded below by sampling).
        let total: u64 = catalog.relationships().map(|(rid, _)| db.links(rid).link_count()).sum();
        let target = 6 * 77;
        assert!(
            total as i64 >= target as i64 - 6 && total <= target + 6,
            "links {total} vs target {target}"
        );
    }

    #[test]
    fn generated_data_satisfies_generated_constraints() {
        let (_, db, gen) = setup(52, 77);
        for c in &gen.constraints {
            let v = db.check_constraint(c);
            assert!(v.is_empty(), "{} violated at {:?}", c.name, &v[..v.len().min(3)]);
        }
    }

    #[test]
    fn bigger_instances_also_satisfy_constraints() {
        let (_, db, gen) = setup(208, 616);
        for c in &gen.constraints {
            assert!(db.check_constraint(c).is_empty(), "{} violated", c.name);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (catalog, db1, gen) = setup(52, 77);
        let db2 =
            generate_database(Arc::clone(&catalog), &DataGenConfig::new(52, 77, 11), &gen.forcings)
                .unwrap();
        let key = catalog.attr_ref("cargo", "a2").unwrap();
        for i in 0..52u32 {
            assert_eq!(db1.value(key, ObjectId(i)).unwrap(), db2.value(key, ObjectId(i)).unwrap());
        }
    }

    #[test]
    fn integrity_declarations_hold() {
        // finalize() enforces total participation + multiplicity; reaching
        // here means the generator respected them. Spot-check fanout shape.
        let (catalog, db, _) = setup(52, 77);
        let supplies = catalog.rel_id("supplies").unwrap();
        let lk = db.links(supplies);
        assert_eq!(lk.link_count(), 52, "one link per cargo");
        assert_eq!(lk.max_left_fanout(), 1, "cargo side is to-one");
    }

    #[test]
    fn table41_configs_shape() {
        let cfgs = table41_configs(1);
        assert_eq!(cfgs[0].class_cardinality, 52);
        assert_eq!(cfgs[1].class_cardinality, 104);
        assert_eq!(cfgs[2].class_cardinality, 208);
        assert_eq!(cfgs[3].class_cardinality, 208);
        assert_eq!(cfgs[2].avg_rel_cardinality, 308);
        assert_eq!(cfgs[3].avg_rel_cardinality, 616);
    }
}
