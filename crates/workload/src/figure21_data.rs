//! A constructive data generator for the paper's Figure 2.1 schema that
//! satisfies the Figure 2.2 constraints c1–c5 by construction. Used by the
//! examples and the end-to-end tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqo_catalog::{Catalog, Value};
use sqo_storage::{Database, IntegrityOptions, ObjectId, StorageError};
use std::sync::Arc;

/// Size knobs for the logistics instance.
#[derive(Debug, Clone, Copy)]
pub struct LogisticsConfig {
    pub suppliers: usize,
    pub vehicles: usize,
    pub cargoes: usize,
    pub engines: usize,
    pub employees: usize,
    pub managers: usize,
    pub drivers: usize,
    pub departments: usize,
    pub seed: u64,
}

impl Default for LogisticsConfig {
    fn default() -> Self {
        Self {
            suppliers: 25,
            vehicles: 40,
            cargoes: 160,
            engines: 40,
            employees: 30,
            managers: 6,
            drivers: 12,
            departments: 5,
            seed: 91,
        }
    }
}

/// Builds a Figure 2.1 database honoring c1–c5:
/// 1. refrigerated trucks carry only frozen food;
/// 2. frozen food comes only from SFI (supplier 0);
/// 3. a driver's license class covers every vehicle they drive;
/// 4. managers hold the rank "research staff member";
/// 5. development-department employees are cleared "top secret".
pub fn logistics_database(
    catalog: Arc<Catalog>,
    config: &LogisticsConfig,
) -> Result<Database, StorageError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = Database::builder(Arc::clone(&catalog));
    let supplier = catalog.class_id("supplier").expect("figure21 catalog");
    let cargo = catalog.class_id("cargo").expect("figure21 catalog");
    let vehicle = catalog.class_id("vehicle").expect("figure21 catalog");
    let engine = catalog.class_id("engine").expect("figure21 catalog");
    let employee = catalog.class_id("employee").expect("figure21 catalog");
    let manager = catalog.class_id("manager").expect("figure21 catalog");
    let driver = catalog.class_id("driver").expect("figure21 catalog");
    let department = catalog.class_id("department").expect("figure21 catalog");

    // Suppliers: SFI first (constraint c2's witness).
    for i in 0..config.suppliers {
        let name = if i == 0 { "SFI".to_string() } else { format!("supplier{i}") };
        b.insert(supplier, vec![Value::str(name), Value::str(format!("{i} Market Rd"))])?;
    }

    // Drivers: license classes 1..=5.
    let mut driver_class = Vec::with_capacity(config.drivers);
    for i in 0..config.drivers {
        let lc = rng.gen_range(1..=5i64);
        driver_class.push(lc);
        b.insert(
            driver,
            vec![
                Value::str(format!("driver{i}")),
                Value::str("secret"),
                Value::str("staff"),
                Value::Int(10_000 + i as i64),
                Value::Int(lc),
                Value::Int(1990 - rng.gen_range(0..10i64)),
            ],
        )?;
    }

    // Vehicles: ~1/4 refrigerated trucks; class bounded by the driver's
    // license (c3).
    let mut vehicle_is_reefer = Vec::with_capacity(config.vehicles);
    let mut vehicle_driver = Vec::with_capacity(config.vehicles);
    for i in 0..config.vehicles {
        let reefer = i % 4 == 0;
        vehicle_is_reefer.push(reefer);
        let d = rng.gen_range(0..config.drivers);
        vehicle_driver.push(d);
        let class = rng.gen_range(1..=driver_class[d]);
        b.insert(
            vehicle,
            vec![
                Value::Int(i as i64),
                Value::str(if reefer { "refrigerated truck" } else { "flatbed" }),
                Value::Int(class),
            ],
        )?;
    }

    // Engines: one per vehicle (eng_comp is total on the vehicle side).
    for i in 0..config.engines.max(config.vehicles) {
        b.insert(engine, vec![Value::Int(i as i64), Value::Int(rng.gen_range(1000..4000))])?;
    }

    // Departments: development first (c5's witness).
    for i in 0..config.departments {
        let name = if i == 0 { "development".to_string() } else { format!("dept{i}") };
        b.insert(department, vec![Value::str(name), Value::str(format!("class{}", i % 3))])?;
    }

    // Employees: development members get top-secret clearance (c5). The
    // department choice is recorded so the `belongs_to` links agree with the
    // clearance rule.
    let mut emp_dept = Vec::with_capacity(config.employees);
    for i in 0..config.employees {
        let dept = rng.gen_range(0..config.departments);
        emp_dept.push(dept);
        let clearance = if dept == 0 { "top secret" } else { "secret" };
        b.insert(
            employee,
            vec![Value::str(format!("employee{i}")), Value::str(clearance), Value::str("staff")],
        )?;
    }

    // Managers: rank fixed by c4. (Subclass extents are independent.)
    for i in 0..config.managers {
        b.insert(
            manager,
            vec![
                Value::str(format!("manager{i}")),
                Value::str("secret"),
                Value::str("research staff member"),
            ],
        )?;
    }

    // Cargoes: cargo on a refrigerated truck is frozen food (c1), and frozen
    // food ships from SFI (c2).
    for i in 0..config.cargoes {
        let v = rng.gen_range(0..config.vehicles);
        let frozen = vehicle_is_reefer[v];
        let desc = if frozen {
            "frozen food".to_string()
        } else {
            ["dry goods", "furniture", "textiles"][rng.gen_range(0..3usize)].to_string()
        };
        let s = if frozen { 0 } else { rng.gen_range(1..config.suppliers) };
        let oid = b.insert(
            cargo,
            vec![Value::Int(i as i64), Value::str(desc), Value::Int(rng.gen_range(1..100))],
        )?;
        b.link(catalog.rel_id("supplies").expect("rel"), oid, ObjectId(s as u32))?;
        b.link(catalog.rel_id("collects").expect("rel"), oid, ObjectId(v as u32))?;
    }

    // Vehicle links: engine + driver.
    for (i, &driver) in vehicle_driver.iter().enumerate().take(config.vehicles) {
        b.link(catalog.rel_id("eng_comp").expect("rel"), ObjectId(i as u32), ObjectId(i as u32))?;
        b.link(
            catalog.rel_id("drives").expect("rel"),
            ObjectId(i as u32),
            ObjectId(driver as u32),
        )?;
    }

    // Employee department links, consistent with the recorded choices.
    let belongs = catalog.rel_id("belongs_to").expect("rel");
    for (i, &dept) in emp_dept.iter().enumerate() {
        b.link(belongs, ObjectId(i as u32), ObjectId(dept as u32))?;
    }
    b.finalize(IntegrityOptions {
        // employee/manager/driver share `belongs_to` declared on employee
        // only; subclass extents do not participate, so totality is checked
        // only for the employee extent.
        enforce_total_participation: false,
        enforce_multiplicity: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::example::figure21;
    use sqo_constraints::figure22;

    #[test]
    fn instance_satisfies_figure22() {
        let catalog = Arc::new(figure21().unwrap());
        let db = logistics_database(Arc::clone(&catalog), &LogisticsConfig::default()).unwrap();
        for c in figure22(&catalog).unwrap() {
            let v = db.check_constraint(&c);
            assert!(v.is_empty(), "{} violated: {:?}", c.name, &v[..v.len().min(3)]);
        }
    }

    #[test]
    fn cardinalities_follow_config() {
        let catalog = Arc::new(figure21().unwrap());
        let cfg = LogisticsConfig::default();
        let db = logistics_database(Arc::clone(&catalog), &cfg).unwrap();
        assert_eq!(db.cardinality(catalog.class_id("supplier").unwrap()), cfg.suppliers);
        assert_eq!(db.cardinality(catalog.class_id("cargo").unwrap()), cfg.cargoes);
        assert_eq!(db.cardinality(catalog.class_id("vehicle").unwrap()), cfg.vehicles);
    }

    #[test]
    fn every_cargo_linked() {
        let catalog = Arc::new(figure21().unwrap());
        let db = logistics_database(Arc::clone(&catalog), &LogisticsConfig::default()).unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        assert_eq!(db.links(supplies).link_count() as usize, 160);
        assert_eq!(db.links(collects).link_count() as usize, 160);
        assert_eq!(db.links(supplies).max_left_fanout(), 1);
    }
}
