//! Serving-layer workloads: multi-client repeated-query traffic.
//!
//! Real query traffic is not 40 fresh queries — it is a *small* set of
//! distinct queries issued over and over, with popularity following a
//! heavy-tailed (Zipf-like) law. This module turns a scenario's query pool
//! into such a request stream: `distinct` queries are drawn from the pool,
//! a [`Zipf`] sampler picks which query each request repeats, and (to keep
//! the serving layer honest) each request may arrive as a freshly
//! *shuffled spelling* — same query, different predicate/class order — so a
//! cache keyed on anything weaker than the canonical form misses.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sqo_query::Query;

/// Knobs for [`service_workload`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceWorkloadConfig {
    pub seed: u64,
    /// Number of distinct queries drawn from the pool.
    pub distinct: usize,
    /// Total requests in the stream.
    pub requests: usize,
    /// Zipf skew exponent `s` (popularity ∝ 1/rankˢ). `0` = uniform.
    pub zipf_s: f64,
    /// Emit each request as a shuffled spelling of its query (list parts
    /// permuted) instead of the verbatim pool query.
    pub shuffle_spellings: bool,
}

impl Default for ServiceWorkloadConfig {
    fn default() -> Self {
        Self { seed: 29, distinct: 16, requests: 1024, zipf_s: 1.1, shuffle_spellings: true }
    }
}

impl ServiceWorkloadConfig {
    /// The batch-tier stress profile: few distinct queries under a steep
    /// Zipf skew, so warm traffic is dominated by back-to-back duplicates
    /// — the stream a gather window can actually group. Spellings stay
    /// shuffled, so grouping has to happen on canonical fingerprints, not
    /// on request bytes.
    pub fn duplicate_heavy() -> Self {
        Self { distinct: 6, zipf_s: 1.6, ..Self::default() }
    }
}

/// A generated request stream over a fixed distinct-query set.
#[derive(Debug, Clone)]
pub struct ServiceWorkload {
    /// The distinct queries, by popularity rank (index 0 = hottest).
    pub distinct: Vec<Query>,
    /// The request stream (possibly respelled queries).
    pub requests: Vec<Query>,
    /// For each request, the index into `distinct` it repeats.
    pub indices: Vec<usize>,
}

impl ServiceWorkload {
    /// Requests per distinct query — the skew profile.
    pub fn frequencies(&self) -> Vec<usize> {
        let mut f = vec![0usize; self.distinct.len()];
        for &i in &self.indices {
            f[i] += 1;
        }
        f
    }
}

/// Zipf(n, s) sampler over ranks `0..n` via an inverse-CDF table.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Weights `1/(k+1)ˢ` for rank `k`, normalized. `n` must be ≥ 1.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf over an empty rank set");
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Self { cdf }
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A deterministic respelling: every list part of the query permuted.
/// Canonically identical to the input (the property the plan cache and the
/// `prop_canonical` suite both rely on).
pub fn respell(query: &Query, rng: &mut StdRng) -> Query {
    let mut q = query.clone();
    q.projections.shuffle(rng);
    q.join_predicates.shuffle(rng);
    q.selective_predicates.shuffle(rng);
    q.relationships.shuffle(rng);
    q.classes.shuffle(rng);
    q
}

/// Builds a Zipf-skewed repeated-query request stream from `pool`
/// (typically a [`crate::PaperScenario`]'s 40 path queries).
pub fn service_workload(pool: &[Query], config: &ServiceWorkloadConfig) -> ServiceWorkload {
    assert!(!pool.is_empty(), "service workload needs a non-empty query pool");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut distinct: Vec<Query> = pool.to_vec();
    distinct.shuffle(&mut rng);
    distinct.truncate(config.distinct.max(1));
    let zipf = Zipf::new(distinct.len(), config.zipf_s);
    let mut requests = Vec::with_capacity(config.requests);
    let mut indices = Vec::with_capacity(config.requests);
    for _ in 0..config.requests {
        let i = zipf.sample(&mut rng);
        indices.push(i);
        requests.push(if config.shuffle_spellings {
            respell(&distinct[i], &mut rng)
        } else {
            distinct[i].clone()
        });
    }
    ServiceWorkload { distinct, requests, indices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_schema::bench_catalog;
    use crate::constraint_gen::{generate_constraints, ConstraintGenConfig};
    use crate::query_gen::{paper_query_set, QueryGenConfig};

    fn pool() -> Vec<Query> {
        let catalog = bench_catalog().unwrap();
        let generated = generate_constraints(&catalog, ConstraintGenConfig::default()).unwrap();
        paper_query_set(&catalog, &generated.forcings, 40, &QueryGenConfig::default())
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let zipf = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0usize; 10];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4] && counts[4] > counts[9], "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0usize; 4];
        for _ in 0..8_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1600..2400).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn workload_is_deterministic_and_well_formed() {
        let pool = pool();
        let config = ServiceWorkloadConfig { requests: 200, ..Default::default() };
        let a = service_workload(&pool, &config);
        let b = service_workload(&pool, &config);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.indices, b.indices);
        assert_eq!(a.distinct.len(), 16);
        assert_eq!(a.requests.len(), 200);
        assert_eq!(a.frequencies().iter().sum::<usize>(), 200);
    }

    #[test]
    fn respelled_requests_canonicalize_to_their_distinct_query() {
        let pool = pool();
        let wl =
            service_workload(&pool, &ServiceWorkloadConfig { requests: 100, ..Default::default() });
        for (req, &i) in wl.requests.iter().zip(&wl.indices) {
            assert_eq!(req.canonical(), wl.distinct[i].canonical());
            assert_eq!(req.fingerprint(), wl.distinct[i].fingerprint());
        }
    }

    #[test]
    fn duplicate_heavy_profile_produces_adjacent_duplicates() {
        let pool = pool();
        let wl = service_workload(&pool, &ServiceWorkloadConfig::duplicate_heavy());
        assert_eq!(wl.distinct.len(), 6);
        // The point of the profile: consecutive gather windows of 8 hold
        // far fewer distinct queries than requests, so grouping pays.
        let mut groups = 0usize;
        for window in wl.indices.chunks(8) {
            let mut seen: Vec<usize> = window.to_vec();
            seen.sort_unstable();
            seen.dedup();
            groups += seen.len();
        }
        assert!(
            groups * 2 < wl.indices.len(),
            "windows of 8 should average <4 distinct queries: {groups} groups"
        );
    }

    #[test]
    fn skew_concentrates_traffic_on_hot_queries() {
        let pool = pool();
        let wl = service_workload(
            &pool,
            &ServiceWorkloadConfig { requests: 2000, zipf_s: 1.3, ..Default::default() },
        );
        let f = wl.frequencies();
        let hot: usize = f.iter().take(4).sum();
        assert!(hot * 2 > 2000, "top-4 of 16 queries should carry >50% of traffic: {f:?}");
    }
}
