//! The 5-class / 6-relationship benchmark schema (Table 4.1).
//!
//! Table 4.1 reports 5 object classes and 6 relationships but does not name
//! them (Figure 2.1 has 9 classes); DESIGN.md §3.5 documents the
//! reconstruction:
//!
//! ```text
//!   supplier --supplies-- cargo --collects-- vehicle --drives-- driver
//!                                   |                             |
//!                                   +---------- owns --------+    |
//!                                                            |    |
//!                                 department --belongs_to----+----+
//!                                      |
//!   supplier -------- contracts -------+
//! ```
//!
//! Four *spine* relationships are to-one + total from the many side (the
//! precondition for class elimination); `owns` and `contracts` are
//! many-to-many *fan* relationships whose link counts absorb the difference
//! between Table 4.1's class and relationship cardinalities.
//!
//! Every class carries the same attribute layout so generators can be
//! uniform:
//! * `key`   — int, hash-indexed (unique);
//! * `a1`    — str categorical, `a2` — int, `a3` — int, B-tree-indexed
//!   (the *feature* pool: constraint antecedents and query predicates);
//! * `b1`    — str, `b2` — int, `b3` — str, hash-indexed
//!   (the *derived* pool: constraint consequents — kept disjoint from the
//!   feature pool so forced values can never invalidate an antecedent).

use sqo_catalog::{AttributeDef, Catalog, CatalogError, DataType, IndexKind};

/// Names of the five classes, in id order.
pub const CLASSES: [&str; 5] = ["supplier", "cargo", "vehicle", "driver", "department"];

/// Spine relationships: (name, many side, one side). The many side is total.
pub const SPINE_RELS: [(&str, &str, &str); 4] = [
    ("supplies", "cargo", "supplier"),
    ("collects", "cargo", "vehicle"),
    ("drives", "vehicle", "driver"),
    ("belongs_to", "driver", "department"),
];

/// Fan relationships: (name, left, right), many-to-many, non-total.
pub const FAN_RELS: [(&str, &str, &str); 2] =
    [("owns", "department", "vehicle"), ("contracts", "supplier", "department")];

/// Feature-pool attribute names (constraint antecedents / query predicates).
pub const FEATURE_ATTRS: [&str; 3] = ["a1", "a2", "a3"];

/// Derived-pool attribute names (constraint consequents).
pub const DERIVED_ATTRS: [&str; 3] = ["b1", "b2", "b3"];

fn standard_attrs() -> Vec<AttributeDef> {
    vec![
        AttributeDef::indexed("key", DataType::Int, IndexKind::Hash),
        AttributeDef::new("a1", DataType::Str),
        AttributeDef::new("a2", DataType::Int),
        AttributeDef::indexed("a3", DataType::Int, IndexKind::BTree),
        AttributeDef::new("b1", DataType::Str),
        AttributeDef::new("b2", DataType::Int),
        AttributeDef::indexed("b3", DataType::Str, IndexKind::Hash),
    ]
}

/// Builds the benchmark catalog.
pub fn bench_catalog() -> Result<Catalog, CatalogError> {
    let mut b = Catalog::builder();
    for name in CLASSES {
        b.class(name, standard_attrs())?;
    }
    for (name, many, one) in SPINE_RELS {
        let many = b_class(&b, many)?;
        let one = b_class(&b, one)?;
        b.many_to_one(name, many, one)?;
    }
    for (name, left, right) in FAN_RELS {
        let left_id = b_class(&b, left)?;
        let right_id = b_class(&b, right)?;
        b.relationship(
            name,
            sqo_catalog::RelationshipEnd::new(left_id, sqo_catalog::Multiplicity::Many, false),
            sqo_catalog::RelationshipEnd::new(right_id, sqo_catalog::Multiplicity::Many, false),
        )?;
    }
    b.build()
}

// CatalogBuilder has no name lookup before build; resolve through a tiny
// helper that relies on insertion order matching `CLASSES`.
fn b_class(
    _b: &sqo_catalog::CatalogBuilder,
    name: &str,
) -> Result<sqo_catalog::ClassId, CatalogError> {
    CLASSES
        .iter()
        .position(|&c| c == name)
        .map(|i| sqo_catalog::ClassId(i as u32))
        .ok_or_else(|| CatalogError::UnknownClass(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table_41() {
        let cat = bench_catalog().unwrap();
        assert_eq!(cat.class_count(), 5);
        assert_eq!(cat.relationship_count(), 6);
    }

    #[test]
    fn spine_rels_are_total_to_one_from_many_side() {
        let cat = bench_catalog().unwrap();
        for (name, many, _) in SPINE_RELS {
            let rel = cat.rel_id(name).unwrap();
            let def = cat.relationship(rel).unwrap();
            let many_id = cat.class_id(many).unwrap();
            let end = def.end_for(many_id).unwrap();
            assert_eq!(end.multiplicity, sqo_catalog::Multiplicity::One, "{name}");
            assert!(end.total, "{name}");
        }
    }

    #[test]
    fn fan_rels_are_many_to_many() {
        let cat = bench_catalog().unwrap();
        for (name, _, _) in FAN_RELS {
            let def = cat.relationship(cat.rel_id(name).unwrap()).unwrap();
            assert_eq!(def.left.multiplicity, sqo_catalog::Multiplicity::Many);
            assert_eq!(def.right.multiplicity, sqo_catalog::Multiplicity::Many);
        }
    }

    #[test]
    fn every_class_has_the_standard_layout() {
        let cat = bench_catalog().unwrap();
        for class in CLASSES {
            for attr in ["key", "a1", "a2", "a3", "b1", "b2", "b3"] {
                assert!(cat.attr_ref(class, attr).is_ok(), "{class}.{attr}");
            }
            assert!(cat.is_indexed(cat.attr_ref(class, "a3").unwrap()));
            assert!(cat.is_indexed(cat.attr_ref(class, "b3").unwrap()));
            assert!(!cat.is_indexed(cat.attr_ref(class, "b1").unwrap()));
        }
    }

    #[test]
    fn schema_graph_is_connected_with_cycles() {
        // 5 nodes, 6 edges: at least two independent cycles through the fans.
        let cat = bench_catalog().unwrap();
        let n_edges = cat.relationship_count();
        let n_nodes = cat.class_count();
        assert!(n_edges > n_nodes - 1, "cycles required for rich path sets");
    }
}
