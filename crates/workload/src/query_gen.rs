//! Path-query generation (§4).
//!
//! One query per schema path, as in the paper; predicates are drawn so that
//! a controllable fraction line up with constraint antecedents (enabling
//! introductions) or antecedent+consequent pairs (enabling eliminations).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sqo_catalog::{AttrRef, Catalog, ClassId, Value};
use sqo_query::{CompOp, Projection, Query, SelPredicate};

use crate::bench_schema::FEATURE_ATTRS;
use crate::constraint_gen::Forcing;
use crate::path_enum::{enumerate_directed_paths, SchemaPath};

/// Query-generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct QueryGenConfig {
    pub seed: u64,
    /// Probability that a class on the path receives a selective predicate.
    pub pred_prob: f64,
    /// Given a predicate, probability it is a constraint antecedent.
    pub antecedent_prob: f64,
    /// Given an antecedent predicate, probability of also emitting the
    /// matching consequent (a restriction-elimination opportunity).
    pub consequent_pair_prob: f64,
    /// Given an antecedent predicate, probability of emitting a predicate
    /// *conflicting* with the forced consequent — a query the optimizer can
    /// prove empty (the paper's "output obtained without going to the
    /// database" case).
    pub contradiction_prob: f64,
    /// Maximum projected attributes.
    pub max_projections: usize,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        Self {
            seed: 13,
            pred_prob: 0.8,
            antecedent_prob: 0.6,
            consequent_pair_prob: 0.4,
            contradiction_prob: 0.12,
            max_projections: 3,
        }
    }
}

/// Generates the query for one schema path.
pub fn generate_query(
    catalog: &Catalog,
    path: &SchemaPath,
    forcings: &[Forcing],
    config: &QueryGenConfig,
    rng: &mut StdRng,
) -> Query {
    let mut q = Query::new();
    q.classes = path.classes.clone();
    q.relationships = path.relationships.clone();

    // Projections: feature attributes of random path classes. Derived
    // attributes are avoided so class elimination is not starved.
    let n_proj = rng.gen_range(1..=config.max_projections);
    for _ in 0..n_proj {
        let class = *path.classes.as_slice().choose(rng).expect("non-empty path");
        let attr_name = FEATURE_ATTRS[rng.gen_range(0..FEATURE_ATTRS.len())];
        if let Ok(attr) = catalog.attr_ref(catalog.class_name(class), attr_name) {
            let proj = Projection::plain(attr);
            if !q.projections.contains(&proj) {
                q.projections.push(proj);
            }
        }
    }
    if q.projections.is_empty() {
        // Guarantee at least one projection.
        let class = path.classes[0];
        if let Ok(attr) = catalog.attr_ref(catalog.class_name(class), "key") {
            q.projections.push(Projection::plain(attr));
        }
    }

    // Predicates per class.
    for &class in &path.classes {
        if !rng.gen_bool(config.pred_prob) {
            continue;
        }
        // Forcings applicable from this class within this path: intra, or
        // inter whose relationship lies on the path.
        let applicable: Vec<&Forcing> = forcings
            .iter()
            .filter(|f| f.antecedent.0 == class)
            .filter(|f| match f.rel {
                None => true,
                Some(r) => path.relationships.contains(&r),
            })
            .collect();
        if !applicable.is_empty() && rng.gen_bool(config.antecedent_prob) {
            let f = applicable.choose(rng).expect("non-empty");
            push_unique(
                &mut q.selective_predicates,
                SelPredicate::new(
                    AttrRef::new(f.antecedent.0, f.antecedent.1),
                    CompOp::Eq,
                    f.antecedent.2.clone(),
                ),
            );
            // Optionally pair with the consequent: the optimizer should
            // then classify it optional/redundant and possibly drop it —
            // or, with `contradiction_prob`, demand a *conflicting* value
            // so the optimizer can prove the answer empty.
            if path.classes.contains(&f.consequent.0) {
                if rng.gen_bool(config.contradiction_prob) {
                    let conflicting = match &f.consequent.2 {
                        Value::Int(i) => Value::Int(i + 1),
                        Value::Str(s) => Value::str(format!("not_{s}")),
                        other => other.clone(),
                    };
                    push_unique(
                        &mut q.selective_predicates,
                        SelPredicate::new(
                            AttrRef::new(f.consequent.0, f.consequent.1),
                            CompOp::Eq,
                            conflicting,
                        ),
                    );
                } else if rng.gen_bool(config.consequent_pair_prob) {
                    push_unique(
                        &mut q.selective_predicates,
                        SelPredicate::new(
                            AttrRef::new(f.consequent.0, f.consequent.1),
                            CompOp::Eq,
                            f.consequent.2.clone(),
                        ),
                    );
                }
            }
        } else {
            push_unique(&mut q.selective_predicates, random_predicate(catalog, class, rng));
        }
    }
    q
}

fn push_unique(preds: &mut Vec<SelPredicate>, p: SelPredicate) {
    // One predicate per attribute keeps generated queries satisfiable.
    if !preds.iter().any(|x| x.attr == p.attr) {
        preds.push(p);
    }
}

fn random_predicate(catalog: &Catalog, class: ClassId, rng: &mut StdRng) -> SelPredicate {
    let name = catalog.class_name(class).to_string();
    match rng.gen_range(0..3) {
        0 => SelPredicate::new(
            catalog.attr_ref(&name, "a2").expect("bench layout"),
            *[CompOp::Lt, CompOp::Le, CompOp::Gt, CompOp::Ge].choose(rng).expect("non-empty"),
            Value::Int(rng.gen_range(10..90)),
        ),
        1 => SelPredicate::new(
            catalog.attr_ref(&name, "a3").expect("bench layout"),
            *[CompOp::Lt, CompOp::Ge].choose(rng).expect("non-empty"),
            Value::Int(rng.gen_range(100..900)),
        ),
        _ => SelPredicate::new(
            catalog.attr_ref(&name, "key").expect("bench layout"),
            CompOp::Ge,
            Value::Int(rng.gen_range(0..40)),
        ),
    }
}

/// The §4 query population: one query per simple path (≥ 2 classes),
/// from which `n` are sampled ("40 test queries were randomly chosen").
pub fn paper_query_set(
    catalog: &Catalog,
    forcings: &[Forcing],
    n: usize,
    config: &QueryGenConfig,
) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut paths = enumerate_directed_paths(catalog, 2);
    paths.shuffle(&mut rng);
    paths
        .into_iter()
        .take(n)
        .map(|p| generate_query(catalog, &p, forcings, config, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_schema::bench_catalog;
    use crate::constraint_gen::{generate_constraints, ConstraintGenConfig};

    fn setup() -> (Catalog, Vec<Forcing>) {
        let catalog = bench_catalog().unwrap();
        let gen = generate_constraints(&catalog, ConstraintGenConfig::default()).unwrap();
        (catalog, gen.forcings)
    }

    #[test]
    fn forty_queries_all_validate() {
        let (catalog, forcings) = setup();
        let queries = paper_query_set(&catalog, &forcings, 40, &QueryGenConfig::default());
        assert_eq!(queries.len(), 40);
        for q in &queries {
            q.validate(&catalog).expect("generated query must validate");
            assert!(!q.has_contradiction());
            assert!(!q.projections.is_empty());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (catalog, forcings) = setup();
        let a = paper_query_set(&catalog, &forcings, 10, &QueryGenConfig::default());
        let b = paper_query_set(&catalog, &forcings, 10, &QueryGenConfig::default());
        assert_eq!(a, b);
        let c = paper_query_set(
            &catalog,
            &forcings,
            10,
            &QueryGenConfig { seed: 999, ..Default::default() },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn some_queries_match_constraint_antecedents() {
        let (catalog, forcings) = setup();
        let queries = paper_query_set(&catalog, &forcings, 40, &QueryGenConfig::default());
        let hits = queries
            .iter()
            .filter(|q| {
                q.selective_predicates.iter().any(|p| {
                    forcings.iter().any(|f| {
                        f.antecedent.0 == p.attr.class
                            && f.antecedent.1 == p.attr.attr
                            && f.antecedent.2 == p.value
                    })
                })
            })
            .count();
        assert!(hits >= 10, "only {hits}/40 queries hit a constraint antecedent");
    }

    #[test]
    fn query_sizes_span_the_path_lengths() {
        let (catalog, forcings) = setup();
        let queries = paper_query_set(&catalog, &forcings, 40, &QueryGenConfig::default());
        let min = queries.iter().map(|q| q.classes.len()).min().unwrap();
        let max = queries.iter().map(|q| q.classes.len()).max().unwrap();
        assert!(min >= 2);
        assert!(max >= 4, "need multi-class queries for Figure 4.1's x-axis");
    }
}
