//! Simple-path enumeration over a schema graph (§4).
//!
//! > "All possible paths in this schema were identified, where a path
//! > consists of a series of interconnecting object classes and
//! > relationships, and no object class or relationship appears more than
//! > once. A query was formulated for each such path."

use sqo_catalog::{Catalog, ClassId, RelId};

/// A simple path: alternating classes and relationships.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaPath {
    pub classes: Vec<ClassId>,
    pub relationships: Vec<RelId>,
}

impl SchemaPath {
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Canonical key for dedup: a path and its reverse are the same query.
    fn canonical_key(&self) -> (Vec<u32>, Vec<u32>) {
        let fwd: Vec<u32> = self.classes.iter().map(|c| c.0).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        let rels: Vec<u32> = self.relationships.iter().map(|r| r.0).collect();
        let mut rrels = rels.clone();
        rrels.reverse();
        if (&fwd, &rels) <= (&rev, &rrels) {
            (fwd, rels)
        } else {
            (rev, rrels)
        }
    }
}

/// Enumerates every simple path of `catalog`'s schema graph with at least
/// `min_classes` classes (1 yields the single-class "paths" too). Paths that
/// are reverses of one another are reported once.
pub fn enumerate_paths(catalog: &Catalog, min_classes: usize) -> Vec<SchemaPath> {
    enumerate_paths_inner(catalog, min_classes, true)
}

/// Directed variant: a path and its reverse are both reported (the paper
/// enumerates paths from every starting class, so `a-b-c` and `c-b-a` are
/// distinct members of its query population).
pub fn enumerate_directed_paths(catalog: &Catalog, min_classes: usize) -> Vec<SchemaPath> {
    enumerate_paths_inner(catalog, min_classes, false)
}

fn enumerate_paths_inner(
    catalog: &Catalog,
    min_classes: usize,
    dedup_reversals: bool,
) -> Vec<SchemaPath> {
    let mut out: Vec<SchemaPath> = Vec::new();
    let mut seen: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();

    // Adjacency: class -> (rel, neighbour).
    let adjacency: Vec<Vec<(RelId, ClassId)>> = catalog
        .classes()
        .map(|(cid, _)| {
            let mut edges = Vec::new();
            for (rid, def) in catalog.relationships() {
                if def.left.class == cid {
                    edges.push((rid, def.right.class));
                }
                if def.right.class == cid && def.left.class != cid {
                    edges.push((rid, def.left.class));
                }
            }
            edges
        })
        .collect();

    let record =
        |path: &SchemaPath, seen: &mut Vec<(Vec<u32>, Vec<u32>)>, out: &mut Vec<SchemaPath>| {
            if path.len() < min_classes {
                return;
            }
            let key = if dedup_reversals {
                path.canonical_key()
            } else {
                (
                    path.classes.iter().map(|c| c.0).collect(),
                    path.relationships.iter().map(|r| r.0).collect(),
                )
            };
            if !seen.contains(&key) {
                seen.push(key);
                out.push(path.clone());
            }
        };

    fn dfs(
        adjacency: &[Vec<(RelId, ClassId)>],
        path: &mut SchemaPath,
        record: &mut impl FnMut(&SchemaPath),
    ) {
        record(path);
        let last = *path.classes.last().expect("non-empty path");
        for &(rel, next) in &adjacency[last.index()] {
            if path.classes.contains(&next) || path.relationships.contains(&rel) {
                continue;
            }
            path.classes.push(next);
            path.relationships.push(rel);
            dfs(adjacency, path, record);
            path.classes.pop();
            path.relationships.pop();
        }
    }

    for (cid, _) in catalog.classes() {
        let mut path = SchemaPath { classes: vec![cid], relationships: vec![] };
        dfs(&adjacency, &mut path, &mut |p| record(p, &mut seen, &mut out));
    }
    // Stable order: by length, then class sequence.
    out.sort_by_key(|p| (p.len(), p.classes.iter().map(|c| c.0).collect::<Vec<_>>()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_schema::bench_catalog;
    use sqo_catalog::example::figure21;

    #[test]
    fn chain_paths_on_figure21() {
        let cat = figure21().unwrap();
        let paths = enumerate_paths(&cat, 2);
        // supplier-cargo-vehicle must appear exactly once (not also reversed).
        let supplier = cat.class_id("supplier").unwrap();
        let vehicle = cat.class_id("vehicle").unwrap();
        let matching: Vec<&SchemaPath> = paths
            .iter()
            .filter(|p| {
                p.len() == 3
                    && (p.classes.first() == Some(&supplier) && p.classes.last() == Some(&vehicle)
                        || p.classes.first() == Some(&vehicle)
                            && p.classes.last() == Some(&supplier))
            })
            .collect();
        assert_eq!(matching.len(), 1, "{matching:?}");
    }

    #[test]
    fn single_class_paths_included_at_min_one() {
        let cat = figure21().unwrap();
        let paths = enumerate_paths(&cat, 1);
        let singles = paths.iter().filter(|p| p.len() == 1).count();
        assert_eq!(singles, cat.class_count());
    }

    #[test]
    fn no_repeated_classes_or_rels() {
        let cat = bench_catalog().unwrap();
        for p in enumerate_paths(&cat, 2) {
            let mut cs = p.classes.clone();
            cs.sort_unstable();
            cs.dedup();
            assert_eq!(cs.len(), p.classes.len(), "repeated class in {p:?}");
            let mut rs = p.relationships.clone();
            rs.sort_unstable();
            rs.dedup();
            assert_eq!(rs.len(), p.relationships.len(), "repeated rel in {p:?}");
            assert_eq!(p.relationships.len(), p.classes.len() - 1);
        }
    }

    #[test]
    fn bench_schema_has_a_rich_path_population() {
        let cat = bench_catalog().unwrap();
        // The paper enumerates from every starting class: directions count.
        let directed = enumerate_directed_paths(&cat, 2);
        assert!(directed.len() >= 40, "only {} directed paths", directed.len());
        let undirected = enumerate_paths(&cat, 2);
        assert_eq!(directed.len(), undirected.len() * 2);
        // And full-length 5-class paths exist.
        assert!(undirected.iter().any(|p| p.len() == 5));
    }

    #[test]
    fn reverse_paths_deduplicated() {
        let cat = bench_catalog().unwrap();
        let paths = enumerate_paths(&cat, 2);
        for (i, a) in paths.iter().enumerate() {
            for b in &paths[i + 1..] {
                let mut rev = b.clone();
                rev.classes.reverse();
                rev.relationships.reverse();
                assert!(
                    !(a.classes == rev.classes && a.relationships == rev.relationships),
                    "reverse duplicate: {a:?} / {b:?}"
                );
            }
        }
    }
}
