//! Mixed read/write serving workloads.
//!
//! Extends the Zipf-skewed repeated-query stream of
//! [`crate::service_workload`] with **data writes** for the mutable-data
//! serving experiments (E11): a configurable fraction of requests become
//! write operations, themselves Zipf-skewed across the writable classes.
//!
//! Writes must not silently break the semantic world the optimizer trusts,
//! so the generator only emits two provably safe shapes:
//!
//! * **Insert-duplicate** — clone a live instance of a class together with
//!   the link edges whose opposite end is declared `Many`. Every Horn
//!   constraint binding that involves the duplicate mirrors a binding of
//!   its source with identical attribute values (bindings needing links the
//!   duplicate lacks are vacuous), so constraints that held keep holding;
//!   copying exactly the `Many`-opposite edges also preserves the to-one
//!   and total-participation declarations (see [`dup_safe_classes`]).
//! * **Delete-duplicate** — remove *any* live duplicate of a class (the
//!   stream picks one pseudo-randomly). Duplicates only ever *added* edges,
//!   so removing one restores a previously valid state. Deleting a
//!   non-newest duplicate swap-renumbers the extent's last object — always
//!   itself a duplicate while any duplicate is live, so the base rows that
//!   `source_rank` indexes are never renumbered — and the applier re-maps
//!   its tracked ids from the batch's
//!   [`WriteReceipt`](sqo_storage::WriteReceipt) instead of relying on a
//!   LIFO-only convention.
//!
//! The [`MixedApplier`] resolves these logical writes into concrete
//! [`DataWrite`] batches against the current snapshot and tracks the live
//! duplicates per class.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqo_catalog::{Catalog, ClassId, Multiplicity, RelId};
use sqo_query::Query;
use sqo_storage::{DataWrite, Database, ObjectId, WriteReceipt};

use crate::service_workload::{respell, service_workload, ServiceWorkloadConfig, Zipf};

/// One logical write of a mixed workload, resolved against a live snapshot
/// by [`MixedApplier::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Duplicate (tuple + safe links) the instance of `class` at
    /// `source_rank % original cardinality`. Ranks index the *original*
    /// population, which duplicate-only deletion never renumbers.
    InsertDup { class: ClassId, source_rank: u32 },
    /// Delete the live duplicate of `class` at position `pick % live
    /// count` — any duplicate, not just the newest; falls back to an insert
    /// when none is live.
    DeleteDup { class: ClassId, pick: u32 },
}

/// One request of a mixed read/write stream.
#[derive(Debug, Clone)]
pub enum MixedOp {
    /// A query request: `index` names the distinct query it repeats.
    Read { index: usize, query: Query },
    /// A write request.
    Write(WriteKind),
}

/// Knobs for [`mixed_workload`].
#[derive(Debug, Clone, Copy)]
pub struct MixedWorkloadConfig {
    pub seed: u64,
    /// Number of distinct queries drawn from the pool.
    pub distinct: usize,
    /// Total requests (reads + writes) in the stream.
    pub requests: usize,
    /// Zipf skew of query popularity (see [`ServiceWorkloadConfig`]).
    pub zipf_s: f64,
    /// Emit each read as a shuffled spelling of its query.
    pub shuffle_spellings: bool,
    /// Fraction of requests that are writes, in `[0, 1]`.
    pub write_ratio: f64,
    /// Zipf skew of writes across the writable classes (`0` = uniform).
    pub write_zipf_s: f64,
    /// Fraction of writes that are deletions (of earlier duplicates).
    pub delete_fraction: f64,
}

impl Default for MixedWorkloadConfig {
    fn default() -> Self {
        Self {
            seed: 31,
            distinct: 16,
            requests: 1024,
            zipf_s: 1.1,
            shuffle_spellings: true,
            write_ratio: 0.05,
            write_zipf_s: 0.8,
            delete_fraction: 0.4,
        }
    }
}

/// A generated mixed read/write request stream.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    /// The distinct queries, by popularity rank (index 0 = hottest).
    pub distinct: Vec<Query>,
    /// The request stream.
    pub ops: Vec<MixedOp>,
    pub reads: usize,
    pub writes: usize,
}

/// Classes that can safely receive insert-duplicate writes: every incident
/// relationship end of the class that is declared `total` must face a
/// `Many` opposite end (so the duplicated edge set satisfies totality
/// without overflowing anyone's to-one side). Self-relationships with a
/// total end disqualify a class (conservatively — edges to oneself cannot
/// be copied soundly).
pub fn dup_safe_classes(catalog: &Catalog) -> Vec<ClassId> {
    catalog
        .classes()
        .map(|(cid, _)| cid)
        .filter(|&cid| {
            let copyable = copyable_rels(catalog, cid);
            catalog.relationships().all(|(rid, def)| {
                let (a, b) = def.classes();
                if a != cid && b != cid {
                    return true;
                }
                if a == b {
                    // Self-relationship: safe only if neither end is total.
                    return !def.left.total && !def.right.total;
                }
                let (own, _) =
                    if a == cid { (&def.left, &def.right) } else { (&def.right, &def.left) };
                !own.total || copyable.contains(&rid)
            })
        })
        .collect()
}

/// The relationships whose edges an insert-duplicate of `class` copies:
/// exactly those whose opposite end is declared `Many` (the opposite object
/// may gain a link without violating its to-one declaration).
pub fn copyable_rels(catalog: &Catalog, class: ClassId) -> Vec<RelId> {
    catalog
        .relationships()
        .filter(|(_, def)| {
            let (a, b) = def.classes();
            if a == b {
                return false; // never copy self-relationship edges
            }
            let other = if a == class {
                &def.right
            } else if b == class {
                &def.left
            } else {
                return false;
            };
            other.multiplicity == Multiplicity::Many
        })
        .map(|(rid, _)| rid)
        .collect()
}

/// The constraint- and integrity-preserving duplicate insert: clones the
/// tuple of `class`'s instance at `source_rank % cardinality` together with
/// exactly the edges of `rels` — normally [`copyable_rels`]`(catalog,
/// class)`, the shape [`dup_safe_classes`] proves safe. Single source of
/// truth for every driver that fabricates safe writes ([`MixedApplier`],
/// the E12 experiment, `benches/writepath.rs`).
pub fn dup_insert(db: &Database, class: ClassId, source_rank: u32, rels: &[RelId]) -> DataWrite {
    let source = ObjectId(source_rank % db.cardinality(class).max(1) as u32);
    // invariant: the modulo keeps `source` under the cardinality, and
    // dup-safe classes are generated non-empty.
    let tuple = db.tuple(class, source).expect("source rank in range").to_vec();
    let links: Vec<(RelId, ObjectId)> = rels
        .iter()
        .flat_map(|&rel| {
            // invariant: `rels` comes from copyable_rels(catalog, class),
            // every member of which has `class` as an endpoint.
            db.traverse(rel, class, source)
                .expect("copyable rel touches class") // invariant: see above
                .iter()
                .map(move |&other| (rel, other))
        })
        .collect();
    DataWrite::Insert { class, tuple, links }
}

/// Builds a mixed stream: reads follow the same Zipf-over-distinct-queries
/// law as [`service_workload`]; a `write_ratio` fraction of slots become
/// writes over the catalog's [`dup_safe_classes`], themselves Zipf-skewed
/// by `write_zipf_s`.
pub fn mixed_workload(
    pool: &[Query],
    catalog: &Catalog,
    config: &MixedWorkloadConfig,
) -> MixedWorkload {
    assert!((0.0..=1.0).contains(&config.write_ratio), "write_ratio must be a fraction");
    let writable = dup_safe_classes(catalog);
    assert!(!writable.is_empty(), "no class admits safe duplicate writes");
    // Reuse the read-stream generator for distinct-query selection and
    // popularity ranks, so E9 and E11 sample queries identically.
    let reads = service_workload(
        pool,
        &ServiceWorkloadConfig {
            seed: config.seed,
            distinct: config.distinct,
            requests: config.requests,
            zipf_s: config.zipf_s,
            shuffle_spellings: false, // respelled below with our own rng
        },
    );
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(7));
    let class_zipf = Zipf::new(writable.len(), config.write_zipf_s);
    let mut ops = Vec::with_capacity(config.requests);
    let (mut n_reads, mut n_writes) = (0usize, 0usize);
    for (query, &index) in reads.requests.iter().zip(&reads.indices) {
        let is_write = rng.gen_range(0.0..1.0) < config.write_ratio;
        if is_write {
            let class = writable[class_zipf.sample(&mut rng)];
            let kind = if rng.gen_range(0.0..1.0) < config.delete_fraction {
                WriteKind::DeleteDup { class, pick: rng.gen_range(0..u32::MAX) }
            } else {
                WriteKind::InsertDup { class, source_rank: rng.gen_range(0..u32::MAX) }
            };
            ops.push(MixedOp::Write(kind));
            n_writes += 1;
        } else {
            let query =
                if config.shuffle_spellings { respell(query, &mut rng) } else { query.clone() };
            ops.push(MixedOp::Read { index, query });
            n_reads += 1;
        }
    }
    MixedWorkload { distinct: reads.distinct, ops, reads: n_reads, writes: n_writes }
}

/// Resolves [`WriteKind`]s into concrete [`DataWrite`] batches and tracks
/// the live duplicates per class.
///
/// Deletion is **not** restricted to the newest duplicate: the applier
/// consumes each committed batch's [`WriteReceipt`] and re-maps every
/// tracked id through the reported swap-remove moves, so any live duplicate
/// may be deleted at any time.
///
/// Concurrent drivers must serialize `resolve` + submit + `confirm` (e.g.
/// behind one mutex): resolution reads the snapshot the batch will apply
/// to, and the live sets must observe commits in order.
#[derive(Debug)]
pub struct MixedApplier {
    /// Original per-class cardinalities; ranks index into these rows, which
    /// duplicate-only deletion never renumbers (the renumbered last object
    /// is always itself a duplicate while any duplicate is live).
    base_cards: Vec<usize>,
    copy_rels: Vec<Vec<RelId>>,
    /// Live duplicate ids per class, in insertion order.
    live: Vec<Vec<ObjectId>>,
}

impl MixedApplier {
    pub fn new(db: &Database) -> Self {
        let catalog = db.catalog();
        let classes = catalog.class_count();
        Self {
            base_cards: (0..classes).map(|c| db.cardinality(ClassId(c as u32))).collect(),
            copy_rels: (0..classes).map(|c| copyable_rels(catalog, ClassId(c as u32))).collect(),
            live: vec![Vec::new(); classes],
        }
    }

    /// Number of live (not yet deleted) duplicates of `class`.
    pub fn live_dups(&self, class: ClassId) -> usize {
        self.live[class.index()].len()
    }

    /// Resolves `kind` against the current snapshot into the batch to
    /// submit. Returns `(class, victim, batch)` where `victim` names the
    /// duplicate a delete will remove (`None` for inserts); pass the
    /// committed outcome's receipt to [`MixedApplier::confirm`].
    pub fn resolve(
        &self,
        db: &Database,
        kind: &WriteKind,
    ) -> (ClassId, Option<ObjectId>, Vec<DataWrite>) {
        match *kind {
            WriteKind::DeleteDup { class, pick } => {
                let live = &self.live[class.index()];
                if !live.is_empty() {
                    let victim = live[pick as usize % live.len()];
                    return (
                        class,
                        Some(victim),
                        vec![DataWrite::Delete { class, object: victim }],
                    );
                }
                // Nothing to delete yet: degrade to an insert so the write
                // ratio holds.
                self.resolve(db, &WriteKind::InsertDup { class, source_rank: pick })
            }
            WriteKind::InsertDup { class, source_rank } => {
                // Ranks index the original population (never renumbered), so
                // wrap by the *base* cardinality, not the live one.
                let base = self.base_cards[class.index()].max(1);
                let write = dup_insert(
                    db,
                    class,
                    source_rank % base as u32,
                    &self.copy_rels[class.index()],
                );
                (class, None, vec![write])
            }
        }
    }

    /// Records a committed batch: registers the inserted duplicate or
    /// retires the deleted one, then re-maps every tracked id through the
    /// receipt's swap-remove moves (in order).
    pub fn confirm(&mut self, class: ClassId, victim: Option<ObjectId>, receipt: &WriteReceipt) {
        match victim {
            // invariant: the applier submits single-insert batches only,
            // so a no-victim receipt carries exactly one inserted id.
            None => self.live[class.index()]
                .push(*receipt.inserted.first().expect("insert batches insert exactly one object")), // invariant: see above
            Some(v) => {
                let live = &mut self.live[class.index()];
                // invariant: victims are drawn from `self.live` and each
                // is deleted (and thus retired here) at most once.
                let at = live.iter().position(|&o| o == v).expect("victim was a live duplicate");
                live.remove(at);
            }
        }
        for &(mclass, from, to) in &receipt.moves {
            for id in self.live[mclass.index()].iter_mut() {
                if *id == from {
                    *id = to;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_schema::bench_catalog;
    use crate::scenarios::{paper_scenario, DbSize};
    use sqo_constraints::Origin;
    use sqo_storage::{IntegrityOptions, VersionedDatabase};
    use std::sync::Arc;

    #[test]
    fn every_bench_class_is_dup_safe_with_the_right_edges() {
        let catalog = bench_catalog().unwrap();
        let safe = dup_safe_classes(&catalog);
        assert_eq!(safe.len(), 5, "all bench classes admit duplicate writes: {safe:?}");
        // Cargo copies its two total spine edges; supplier must *not* copy
        // `supplies` (the cargo side is to-one) but copies the fan.
        let cargo = catalog.class_id("cargo").unwrap();
        let supplier = catalog.class_id("supplier").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        let contracts = catalog.rel_id("contracts").unwrap();
        let cargo_rels = copyable_rels(&catalog, cargo);
        assert!(cargo_rels.contains(&supplies) && cargo_rels.contains(&collects));
        let supplier_rels = copyable_rels(&catalog, supplier);
        assert!(!supplier_rels.contains(&supplies), "{supplier_rels:?}");
        assert!(supplier_rels.contains(&contracts), "{supplier_rels:?}");
    }

    #[test]
    fn mixed_workload_is_deterministic_and_honors_the_ratio() {
        let s = paper_scenario(DbSize::Db1, 42);
        let config = MixedWorkloadConfig { requests: 600, write_ratio: 0.2, ..Default::default() };
        let a = mixed_workload(&s.queries, &s.catalog, &config);
        let b = mixed_workload(&s.queries, &s.catalog, &config);
        assert_eq!(a.ops.len(), b.ops.len());
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.writes, b.writes);
        assert_eq!(a.reads + a.writes, 600);
        let ratio = a.writes as f64 / 600.0;
        assert!((0.12..0.28).contains(&ratio), "write ratio ~0.2, got {ratio}");
        for (x, y) in a.ops.iter().zip(&b.ops) {
            match (x, y) {
                (MixedOp::Read { index: i, query: q }, MixedOp::Read { index: j, query: p }) => {
                    assert_eq!(i, j);
                    assert_eq!(q, p);
                }
                (MixedOp::Write(k), MixedOp::Write(l)) => assert_eq!(k, l),
                _ => panic!("streams diverged"),
            }
        }
    }

    #[test]
    fn zero_ratio_degenerates_to_a_pure_read_stream() {
        let s = paper_scenario(DbSize::Db1, 7);
        let wl = mixed_workload(
            &s.queries,
            &s.catalog,
            &MixedWorkloadConfig { requests: 100, write_ratio: 0.0, ..Default::default() },
        );
        assert_eq!(wl.writes, 0);
        assert_eq!(wl.reads, 100);
    }

    #[test]
    fn non_lifo_deletes_remap_tracked_ids_from_the_receipt() {
        let s = paper_scenario(DbSize::Db1, 42);
        let catalog = Arc::clone(&s.catalog);
        let handle = VersionedDatabase::with_integrity(Arc::new(s.db), IntegrityOptions::default());
        let cargo = catalog.class_id("cargo").unwrap();
        let base = handle.snapshot().cardinality(cargo);
        let mut applier = MixedApplier::new(&handle.snapshot());
        // Three duplicates, then delete the *oldest* (pick 0 of 3): the
        // newest duplicate is swap-renumbered onto the victim's id and the
        // applier must keep tracking it through the receipt.
        for rank in 0..3 {
            let (class, victim, batch) = applier.resolve(
                &handle.snapshot(),
                &WriteKind::InsertDup { class: cargo, source_rank: rank },
            );
            let outcome = handle.write(&batch).unwrap();
            applier.confirm(class, victim, &outcome.receipt);
        }
        assert_eq!(applier.live_dups(cargo), 3);
        let (class, victim, batch) =
            applier.resolve(&handle.snapshot(), &WriteKind::DeleteDup { class: cargo, pick: 0 });
        assert_eq!(victim, Some(ObjectId(base as u32)), "oldest duplicate chosen");
        let outcome = handle.write(&batch).unwrap();
        assert_eq!(
            outcome.receipt.moves,
            vec![(cargo, ObjectId(base as u32 + 2), ObjectId(base as u32))],
            "the newest duplicate moved onto the victim's id"
        );
        applier.confirm(class, victim, &outcome.receipt);
        assert_eq!(applier.live_dups(cargo), 2);
        // Both remaining tracked ids are live and deletable in any order.
        for pick in [1u32, 0] {
            let (class, victim, batch) =
                applier.resolve(&handle.snapshot(), &WriteKind::DeleteDup { class: cargo, pick });
            let outcome = handle.write(&batch).unwrap();
            applier.confirm(class, victim, &outcome.receipt);
        }
        assert_eq!(applier.live_dups(cargo), 0);
        assert_eq!(handle.snapshot().cardinality(cargo), base, "all duplicates retired");
    }

    #[test]
    fn applying_a_whole_write_stream_preserves_constraints_and_integrity() {
        let s = paper_scenario(DbSize::Db1, 42);
        let catalog = Arc::clone(&s.catalog);
        let store = s.store;
        let handle = VersionedDatabase::with_integrity(Arc::new(s.db), IntegrityOptions::default());
        let wl = mixed_workload(
            &s.queries,
            &catalog,
            &MixedWorkloadConfig { requests: 300, write_ratio: 0.5, ..Default::default() },
        );
        let mut applier = MixedApplier::new(&handle.snapshot());
        let (mut inserts, mut deletes) = (0usize, 0usize);
        for op in &wl.ops {
            let MixedOp::Write(kind) = op else { continue };
            let snapshot = handle.snapshot();
            let (class, victim, batch) = applier.resolve(&snapshot, kind);
            // Integrity is enforced on every batch by the handle itself.
            let outcome = handle.write(&batch).expect("safe write rejected");
            applier.confirm(class, victim, &outcome.receipt);
            if victim.is_none() {
                inserts += 1;
            } else {
                deletes += 1;
            }
        }
        assert_eq!(inserts + deletes, wl.writes);
        assert!(deletes >= 1, "the stream exercises deletion");
        let final_db = handle.snapshot();
        assert_eq!(final_db.data_version(), wl.writes as u64);
        // Net growth accounting holds per class.
        for (cid, _) in catalog.classes() {
            assert_eq!(
                final_db.cardinality(cid),
                52 + applier.live_dups(cid),
                "{}",
                catalog.class_name(cid)
            );
        }
        // Every declared (and derived) constraint still holds on the final
        // instance — the write stream never left the semantic world the
        // optimizer trusts.
        for (_, c) in store.constraints() {
            if c.origin == Origin::Declared || c.origin == Origin::Derived {
                assert!(final_db.check_constraint(c).is_empty(), "{} violated", c.name);
            }
        }
    }
}
