//! Packaged experiment scenarios: everything §4's evaluation needs, built
//! from one seed.

use sqo_catalog::Catalog;
use sqo_constraints::{ConstraintStore, StoreOptions};
use sqo_query::Query;
use sqo_storage::Database;
use std::sync::Arc;

use crate::bench_schema::bench_catalog;
use crate::constraint_gen::{generate_constraints, ConstraintGenConfig, Forcing};
use crate::data_gen::{generate_database, table41_configs, DataGenConfig};
use crate::query_gen::{paper_query_set, QueryGenConfig};

/// The four database instances of Table 4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbSize {
    Db1,
    Db2,
    Db3,
    Db4,
}

impl DbSize {
    pub const ALL: [DbSize; 4] = [DbSize::Db1, DbSize::Db2, DbSize::Db3, DbSize::Db4];

    pub fn name(self) -> &'static str {
        match self {
            DbSize::Db1 => "DB1",
            DbSize::Db2 => "DB2",
            DbSize::Db3 => "DB3",
            DbSize::Db4 => "DB4",
        }
    }

    pub fn config(self, seed: u64) -> DataGenConfig {
        table41_configs(seed)[match self {
            DbSize::Db1 => 0,
            DbSize::Db2 => 1,
            DbSize::Db3 => 2,
            DbSize::Db4 => 3,
        }]
    }
}

/// One fully-provisioned experiment environment.
#[derive(Debug)]
pub struct PaperScenario {
    pub catalog: Arc<Catalog>,
    pub store: ConstraintStore,
    pub db: Database,
    pub queries: Vec<Query>,
    pub forcings: Vec<Forcing>,
    pub db_size: DbSize,
}

/// Builds the §4 environment for one Table 4.1 instance: benchmark schema,
/// ~3 constraints per class (closure materialized, LFA grouping), a
/// constraint-satisfying database, and 40 random path queries.
pub fn paper_scenario(size: DbSize, seed: u64) -> PaperScenario {
    paper_scenario_with(
        size,
        seed,
        ConstraintGenConfig { seed, ..Default::default() },
        QueryGenConfig { seed: seed.wrapping_add(1), ..Default::default() },
        StoreOptions::paper_defaults(),
    )
}

/// Fully parameterized scenario constructor (used by the ablations).
pub fn paper_scenario_with(
    size: DbSize,
    seed: u64,
    cgen: ConstraintGenConfig,
    qgen: QueryGenConfig,
    store_options: StoreOptions,
) -> PaperScenario {
    let catalog = Arc::new(bench_catalog().expect("benchmark schema builds"));
    let generated = generate_constraints(&catalog, cgen).expect("constraint generation succeeds");
    let db = generate_database(Arc::clone(&catalog), &size.config(seed), &generated.forcings)
        .expect("database generation succeeds");
    let store = ConstraintStore::build(Arc::clone(&catalog), generated.constraints, store_options)
        .expect("store builds");
    let queries = paper_query_set(&catalog, &generated.forcings, 40, &qgen);
    PaperScenario { catalog, store, db, queries, forcings: generated.forcings, db_size: size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db1_scenario_is_complete() {
        let s = paper_scenario(DbSize::Db1, 42);
        assert_eq!(s.queries.len(), 40);
        assert!(s.store.len() >= 12, "constraints + derived closure");
        for (cid, _) in s.catalog.classes() {
            assert_eq!(s.db.cardinality(cid), 52);
        }
    }

    #[test]
    fn scenario_data_satisfies_declared_constraints() {
        let s = paper_scenario(DbSize::Db1, 7);
        for (_, c) in s.store.constraints() {
            if c.origin == sqo_constraints::Origin::Declared {
                assert!(s.db.check_constraint(c).is_empty(), "{} violated", c.name);
            }
        }
    }

    #[test]
    fn derived_constraints_also_hold() {
        // Soundness of the closure: derived constraints must hold on any
        // instance satisfying the declared ones.
        let s = paper_scenario(DbSize::Db1, 7);
        for (_, c) in s.store.constraints() {
            if c.origin == sqo_constraints::Origin::Derived {
                assert!(s.db.check_constraint(c).is_empty(), "derived {} violated", c.name);
            }
        }
    }

    #[test]
    fn all_sizes_build() {
        for size in DbSize::ALL {
            let s = paper_scenario(size, 3);
            let expected = size.config(3).class_cardinality as usize;
            let cargo = s.catalog.class_id("cargo").unwrap();
            assert_eq!(s.db.cardinality(cargo), expected, "{}", size.name());
        }
    }
}
