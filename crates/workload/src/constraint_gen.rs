//! Random semantic-constraint generation over the benchmark schema.
//!
//! The paper attaches "an average of 3 semantic constraints" to each object
//! class. Generated constraints follow the Figure 2.2 shapes:
//!
//! * **intra**: `C.a1 = cat → C.b = forced` (c4-style);
//! * **inter**: `L.a1 = cat ∧ ⟨rel⟩ → R.b = forced` (c1/c2/c5-style);
//! * **chains**: with some probability the antecedent reads another
//!   constraint's *consequent* slot, giving the transitive-closure machinery
//!   something to precompute.
//!
//! Crucially, each consequent slot `(class, b-attr)` always forces the *same
//! value*, and antecedents read only the feature pool (or a forced slot's
//! exact value). This makes the data generator's forcing pass a monotone
//! fixpoint, so generated instances provably satisfy every generated
//! constraint (verified by `Database::check_constraint` in tests).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sqo_catalog::{AttrId, AttrRef, Catalog, ClassId, RelId, Value};
use sqo_constraints::{ConstraintError, HornConstraint, Origin};
use sqo_query::{CompOp, Predicate};

use crate::bench_schema::{DERIVED_ATTRS, FEATURE_ATTRS};

/// Configuration for constraint generation.
#[derive(Debug, Clone, Copy)]
pub struct ConstraintGenConfig {
    /// Average constraints per class (the paper used 3).
    pub per_class: usize,
    pub seed: u64,
    /// Fraction of intra-class constraints (Figure 2.2 has 1 of 5).
    pub intra_fraction: f64,
    /// Fraction of consequents on the indexed derived attribute (`b3`),
    /// creating index-introduction opportunities.
    pub indexed_consequent_fraction: f64,
    /// Fraction of constraints whose antecedent chains on another
    /// constraint's consequent slot.
    pub chain_fraction: f64,
    /// Size of each class's `a1` category vocabulary (shared with the data
    /// and query generators).
    pub categories_per_class: usize,
}

impl Default for ConstraintGenConfig {
    fn default() -> Self {
        Self {
            per_class: 3,
            seed: 7,
            intra_fraction: 0.2,
            indexed_consequent_fraction: 0.3,
            chain_fraction: 0.15,
            categories_per_class: 8,
        }
    }
}

/// The category vocabulary for `class.a1`, shared by all generators.
pub fn category_value(catalog: &Catalog, class: ClassId, k: usize) -> Value {
    Value::str(format!("{}_cat{k}", catalog.class_name(class)))
}

/// The forced value for a consequent slot `(class, attr)`. One value per
/// slot, so concurrent forcings can never conflict.
pub fn forced_value(
    catalog: &Catalog,
    class: ClassId,
    attr: AttrId,
    ty: sqo_catalog::DataType,
) -> Value {
    match ty {
        sqo_catalog::DataType::Int => Value::Int(900_000 + class.0 as i64 * 100 + attr.0 as i64),
        _ => Value::str(format!("forced_{}_{}", catalog.class_name(class), attr.0)),
    }
}

/// One enforcement instruction for the data generator.
#[derive(Debug, Clone, PartialEq)]
pub struct Forcing {
    /// `(class, attr, value)` equality that triggers the rule.
    pub antecedent: (ClassId, AttrId, Value),
    /// The correlating relationship (`None` for intra-class rules).
    pub rel: Option<RelId>,
    /// `(class, attr, value)` equality enforced when the antecedent holds.
    pub consequent: (ClassId, AttrId, Value),
}

/// Generated constraints plus their enforcement plan.
#[derive(Debug)]
pub struct GeneratedConstraints {
    pub constraints: Vec<HornConstraint>,
    pub forcings: Vec<Forcing>,
    pub config: ConstraintGenConfig,
}

/// Generates `per_class × #classes` constraints over `catalog` (which must
/// follow the benchmark layout: `a1..a3` feature and `b1..b3` derived
/// attributes on every class).
pub fn generate_constraints(
    catalog: &Catalog,
    config: ConstraintGenConfig,
) -> Result<GeneratedConstraints, ConstraintError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let classes: Vec<ClassId> = catalog.classes().map(|(id, _)| id).collect();
    let total = config.per_class * classes.len();

    let mut constraints = Vec::with_capacity(total);
    let mut forcings = Vec::with_capacity(total);

    for i in 0..total {
        let home = classes[i % classes.len()];
        let intra = rng.gen_bool(config.intra_fraction);
        // Pick the consequent's class: home (intra) or a neighbour via a
        // relationship (inter).
        let (cons_class, rel) = if intra {
            (home, None)
        } else {
            let rels = catalog.relationships_of(home);
            match rels.as_slice().choose(&mut rng) {
                Some(&r) => {
                    let def = catalog.relationship(r)?;
                    (def.other_end(home).expect("incident rel"), Some(r))
                }
                None => (home, None),
            }
        };

        // Antecedent: feature category, or a chain on a previously forced
        // slot of the home class.
        let chain_candidates: Vec<&Forcing> =
            forcings.iter().filter(|f: &&Forcing| f.consequent.0 == home).collect();
        let antecedent = if !chain_candidates.is_empty() && rng.gen_bool(config.chain_fraction) {
            let f = chain_candidates.choose(&mut rng).expect("non-empty");
            (f.consequent.0, f.consequent.1, f.consequent.2.clone())
        } else {
            let cat = rng.gen_range(0..config.categories_per_class);
            let a1 = catalog.attr_id(home, FEATURE_ATTRS[0])?;
            (home, a1, category_value(catalog, home, cat))
        };

        // Consequent slot: derived attr; `b3` (indexed) with the configured
        // probability.
        let cons_attr_name = if rng.gen_bool(config.indexed_consequent_fraction) {
            DERIVED_ATTRS[2]
        } else if rng.gen_bool(0.5) {
            DERIVED_ATTRS[0]
        } else {
            DERIVED_ATTRS[1]
        };
        let cons_attr = catalog.attr_id(cons_class, cons_attr_name)?;
        let cons_ty = catalog.attr_type(AttrRef::new(cons_class, cons_attr))?;
        let cons_value = forced_value(catalog, cons_class, cons_attr, cons_ty);

        // Skip degenerate chains (antecedent slot == consequent slot).
        if antecedent.0 == cons_class && antecedent.1 == cons_attr {
            continue;
        }

        let ante_pred = Predicate::sel(
            AttrRef::new(antecedent.0, antecedent.1),
            CompOp::Eq,
            antecedent.2.clone(),
        );
        let cons_pred =
            Predicate::sel(AttrRef::new(cons_class, cons_attr), CompOp::Eq, cons_value.clone());
        let constraint = HornConstraint::new(
            catalog,
            format!("g{i}"),
            vec![ante_pred],
            rel.into_iter().collect(),
            cons_pred,
            vec![],
            Origin::Declared,
        )?;
        constraints.push(constraint);
        forcings.push(Forcing { antecedent, rel, consequent: (cons_class, cons_attr, cons_value) });
    }
    Ok(GeneratedConstraints { constraints, forcings, config })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_schema::bench_catalog;
    use sqo_constraints::ConstraintClass;

    #[test]
    fn generates_about_per_class_times_classes() {
        let cat = bench_catalog().unwrap();
        let g = generate_constraints(&cat, ConstraintGenConfig::default()).unwrap();
        assert!(g.constraints.len() >= 12, "{}", g.constraints.len());
        assert!(g.constraints.len() <= 15);
        assert_eq!(g.constraints.len(), g.forcings.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let cat = bench_catalog().unwrap();
        let a = generate_constraints(&cat, ConstraintGenConfig::default()).unwrap();
        let b = generate_constraints(&cat, ConstraintGenConfig::default()).unwrap();
        assert_eq!(a.constraints, b.constraints);
        assert_eq!(a.forcings, b.forcings);
        let c = generate_constraints(&cat, ConstraintGenConfig { seed: 99, ..Default::default() })
            .unwrap();
        assert_ne!(a.constraints, c.constraints);
    }

    #[test]
    fn mix_of_intra_and_inter() {
        let cat = bench_catalog().unwrap();
        let g =
            generate_constraints(&cat, ConstraintGenConfig { per_class: 8, ..Default::default() })
                .unwrap();
        let intra =
            g.constraints.iter().filter(|c| c.classification() == ConstraintClass::Intra).count();
        let inter = g.constraints.len() - intra;
        assert!(intra > 0, "expected some intra-class constraints");
        assert!(inter > intra, "inter-class should dominate (Figure 2.2 ratio)");
    }

    #[test]
    fn inter_constraints_carry_their_relationship() {
        let cat = bench_catalog().unwrap();
        let g = generate_constraints(&cat, ConstraintGenConfig::default()).unwrap();
        for (c, f) in g.constraints.iter().zip(&g.forcings) {
            match f.rel {
                Some(r) => assert_eq!(c.relationships, vec![r], "{}", c.name),
                None => assert!(c.relationships.is_empty(), "{}", c.name),
            }
        }
    }

    #[test]
    fn consequent_slots_force_consistent_values() {
        // Two constraints sharing a consequent slot must force the same
        // value — the no-conflict invariant of the forcing pass.
        let cat = bench_catalog().unwrap();
        let g =
            generate_constraints(&cat, ConstraintGenConfig { per_class: 10, ..Default::default() })
                .unwrap();
        use std::collections::HashMap;
        let mut slot_values: HashMap<(ClassId, AttrId), &Value> = HashMap::new();
        for f in &g.forcings {
            let (c, a, v) = (&f.consequent.0, &f.consequent.1, &f.consequent.2);
            if let Some(prev) = slot_values.insert((*c, *a), v) {
                assert_eq!(prev, v, "conflicting forced values for slot");
            }
        }
    }
}
