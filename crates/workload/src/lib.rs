//! # sqo-workload
//!
//! Workload generation for the `sqo` experiments — the paper's evaluation
//! environment rebuilt procedurally (§4):
//!
//! * the **benchmark schema** (5 classes / 6 relationships, Table 4.1);
//! * **constraint generation** (~3 per class, Figure 2.2 shapes) together
//!   with an enforcement plan;
//! * **database generation** honoring Table 4.1's cardinalities, with a
//!   monotone forcing fixpoint so instances provably satisfy the generated
//!   constraints;
//! * **simple-path enumeration** and **path-query generation** ("a query was
//!   formulated for each such path … 40 test queries were randomly chosen");
//! * a constructive **Figure 2.1 logistics instance** satisfying c1–c5 for
//!   the examples;
//! * packaged [`PaperScenario`]s tying it all together per DB size;
//! * **service workloads**: Zipf-skewed repeated-query request streams with
//!   shuffled spellings, for the serving-layer experiments (E9);
//! * **mixed read/write workloads**: the same streams with a configurable
//!   write ratio of constraint- and integrity-preserving duplicate
//!   inserts/deletes, for the mutable-data serving experiment (E11).

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod bench_schema;
mod constraint_gen;
mod data_gen;
mod figure21_data;
mod mixed;
mod open_loop;
mod path_enum;
mod query_gen;
mod scenarios;
mod service_workload;

pub use constraint_gen::{
    category_value, forced_value, generate_constraints, ConstraintGenConfig, Forcing,
    GeneratedConstraints,
};
pub use data_gen::{generate_database, table41_configs, DataGenConfig};
pub use figure21_data::{logistics_database, LogisticsConfig};
pub use mixed::{
    copyable_rels, dup_insert, dup_safe_classes, mixed_workload, MixedApplier, MixedOp,
    MixedWorkload, MixedWorkloadConfig, WriteKind,
};
pub use open_loop::{open_loop_schedule, Arrival, OpenLoopConfig, OpenLoopSchedule};
pub use path_enum::{enumerate_directed_paths, enumerate_paths, SchemaPath};
pub use query_gen::{generate_query, paper_query_set, QueryGenConfig};
pub use scenarios::{paper_scenario, paper_scenario_with, DbSize, PaperScenario};
pub use service_workload::{
    respell, service_workload, ServiceWorkload, ServiceWorkloadConfig, Zipf,
};
