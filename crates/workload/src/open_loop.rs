//! Open-loop arrival schedules for frontend experiments.
//!
//! Closed-loop drivers ([`crate::service_workload`] behind
//! `QueryService::run_batch`) measure *capacity*: N threads, each issuing
//! its next request only after the previous one answers, so offered load
//! can never exceed service rate. An **open-loop** driver instead fixes
//! the *arrival process* — requests arrive per a schedule whether or not
//! earlier ones finished — which is the regime where queues grow, latency
//! tails matter, and load shedding earns its keep.
//!
//! Arrivals here are Poisson-ish: exponential interarrival gaps drawn
//! from the workspace's seeded RNG via inverse-CDF (`-ln(1-u)/λ`), so a
//! schedule is fully deterministic for a given seed while still
//! exhibiting the bursts-and-lulls character of memoryless traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqo_query::Query;

use crate::service_workload::{respell, Zipf};

/// Knobs for [`open_loop_schedule`].
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// RNG seed: same seed, same arrivals, same query choices.
    pub seed: u64,
    /// Total arrivals in the schedule.
    pub arrivals: usize,
    /// Mean arrival rate λ, in arrivals per second of schedule time.
    pub rate_per_sec: f64,
    /// Number of distinct queries drawn from the pool.
    pub distinct: usize,
    /// Zipf skew exponent over the distinct set (`0` = uniform).
    pub zipf_s: f64,
    /// Emit each arrival as a freshly shuffled spelling of its query.
    pub shuffle_spellings: bool,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            seed: 31,
            arrivals: 4096,
            rate_per_sec: 50_000.0,
            distinct: 16,
            zipf_s: 1.1,
            shuffle_spellings: true,
        }
    }
}

/// One scheduled arrival.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Offset from schedule start, in microseconds.
    pub at_us: u64,
    /// The request to submit (possibly a respelled duplicate).
    pub query: Query,
    /// Index into the schedule's distinct set.
    pub distinct_index: usize,
}

/// A deterministic open-loop arrival schedule.
#[derive(Debug, Clone)]
pub struct OpenLoopSchedule {
    /// The distinct queries, by popularity rank (index 0 = hottest).
    pub distinct: Vec<Query>,
    /// Arrivals ordered by non-decreasing `at_us`.
    pub arrivals: Vec<Arrival>,
}

impl OpenLoopSchedule {
    /// Total schedule span in microseconds (last arrival's offset).
    pub fn span_us(&self) -> u64 {
        self.arrivals.last().map_or(0, |a| a.at_us)
    }

    /// The offered rate realized by the schedule, in arrivals per second.
    pub fn offered_per_sec(&self) -> f64 {
        let span = self.span_us();
        if span == 0 {
            return 0.0;
        }
        self.arrivals.len() as f64 / (span as f64 / 1e6)
    }
}

/// Builds a Poisson-ish Zipf-skewed arrival schedule from `pool`.
///
/// Deterministic: interarrival gaps are `-ln(1-u)/λ` with `u` from the
/// seeded [`StdRng`] stream, truncated to whole microseconds.
pub fn open_loop_schedule(pool: &[Query], config: &OpenLoopConfig) -> OpenLoopSchedule {
    assert!(!pool.is_empty(), "open-loop schedule needs a non-empty query pool");
    assert!(config.rate_per_sec > 0.0, "arrival rate must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut distinct: Vec<Query> = pool.to_vec();
    use rand::seq::SliceRandom;
    distinct.shuffle(&mut rng);
    distinct.truncate(config.distinct.max(1));
    let zipf = Zipf::new(distinct.len(), config.zipf_s);
    let mean_gap_us = 1e6 / config.rate_per_sec;
    let mut at = 0.0f64;
    let mut arrivals = Vec::with_capacity(config.arrivals);
    for _ in 0..config.arrivals {
        let u: f64 = rng.gen_range(0.0..1.0);
        at += -(1.0 - u).ln() * mean_gap_us;
        let i = zipf.sample(&mut rng);
        let query = if config.shuffle_spellings {
            respell(&distinct[i], &mut rng)
        } else {
            distinct[i].clone()
        };
        arrivals.push(Arrival { at_us: at as u64, query, distinct_index: i });
    }
    OpenLoopSchedule { distinct, arrivals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_schema::bench_catalog;
    use crate::constraint_gen::{generate_constraints, ConstraintGenConfig};
    use crate::query_gen::{paper_query_set, QueryGenConfig};

    fn pool() -> Vec<Query> {
        let catalog = bench_catalog().unwrap();
        let generated = generate_constraints(&catalog, ConstraintGenConfig::default()).unwrap();
        paper_query_set(&catalog, &generated.forcings, 40, &QueryGenConfig::default())
    }

    #[test]
    fn schedule_is_deterministic_and_ordered() {
        let pool = pool();
        let config = OpenLoopConfig { arrivals: 500, ..Default::default() };
        let a = open_loop_schedule(&pool, &config);
        let b = open_loop_schedule(&pool, &config);
        assert_eq!(a.arrivals.len(), 500);
        for (x, y) in a.arrivals.iter().zip(&b.arrivals) {
            assert_eq!(x.at_us, y.at_us);
            assert_eq!(x.query, y.query);
            assert_eq!(x.distinct_index, y.distinct_index);
        }
        for pair in a.arrivals.windows(2) {
            assert!(pair[0].at_us <= pair[1].at_us, "arrivals must be time-ordered");
        }
    }

    #[test]
    fn realized_rate_tracks_the_configured_rate() {
        let pool = pool();
        let schedule = open_loop_schedule(
            &pool,
            &OpenLoopConfig { arrivals: 8000, rate_per_sec: 10_000.0, ..Default::default() },
        );
        let realized = schedule.offered_per_sec();
        assert!(
            (7_000.0..13_000.0).contains(&realized),
            "realized {realized}/s should approximate the configured 10k/s"
        );
    }

    #[test]
    fn arrivals_canonicalize_to_their_distinct_query() {
        let pool = pool();
        let schedule =
            open_loop_schedule(&pool, &OpenLoopConfig { arrivals: 200, ..Default::default() });
        for arrival in &schedule.arrivals {
            assert_eq!(
                arrival.query.canonical(),
                schedule.distinct[arrival.distinct_index].canonical()
            );
        }
    }
}
