//! The query graph: classes as nodes, relationships as edges.
//!
//! Class elimination (King's rule, paper §3.4) needs exactly the structural
//! questions answered here: which classes are *dangling* (linked to just one
//! other class) and whether removing a class keeps the rest connected.

use std::collections::HashMap;

use sqo_catalog::{Catalog, ClassId, RelId};

use crate::ast::Query;
use crate::error::QueryError;

/// Adjacency view of a query's classes and relationship edges.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    nodes: Vec<ClassId>,
    /// node -> list of (edge, neighbour)
    adjacency: HashMap<ClassId, Vec<(RelId, ClassId)>>,
}

impl QueryGraph {
    /// Builds the graph; relationship endpoints must be classes of the query
    /// (checked, so `Query::validate` can rely on it).
    pub fn build(query: &Query, catalog: &Catalog) -> Result<Self, QueryError> {
        let mut adjacency: HashMap<ClassId, Vec<(RelId, ClassId)>> = HashMap::new();
        for &c in &query.classes {
            adjacency.entry(c).or_default();
        }
        for &rel in &query.relationships {
            let def = catalog.relationship(rel)?;
            let (a, b) = def.classes();
            for end in [a, b] {
                if !query.has_class(end) {
                    return Err(QueryError::RelationshipEndpointMissing { rel, class: end });
                }
            }
            adjacency.get_mut(&a).expect("endpoint present").push((rel, b));
            if a != b {
                adjacency.get_mut(&b).expect("endpoint present").push((rel, a));
            }
        }
        Ok(Self { nodes: query.classes.clone(), adjacency })
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn nodes(&self) -> &[ClassId] {
        &self.nodes
    }

    /// Degree = number of incident relationship edges.
    pub fn degree(&self, class: ClassId) -> usize {
        self.adjacency.get(&class).map(|v| v.len()).unwrap_or(0)
    }

    pub fn neighbours(&self, class: ClassId) -> &[(RelId, ClassId)] {
        self.adjacency.get(&class).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Connected in the undirected sense; the empty graph counts as
    /// connected, a single node always is.
    pub fn is_connected(&self) -> bool {
        let Some(&start) = self.nodes.first() else {
            return true;
        };
        let reached = self.reachable_from(start, None);
        reached.len() == self.nodes.len()
    }

    /// Classes linked to exactly one other class — *candidates* for class
    /// elimination ("linked to just one object class", King's rule). The
    /// remaining conditions (no projections, no imperative predicates, total
    /// participation) are checked by the formulation step.
    pub fn dangling_classes(&self) -> Vec<ClassId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&c| {
                let n = self.neighbours(c);
                n.len() == 1 && n[0].1 != c && self.node_count() > 1
            })
            .collect()
    }

    /// Whether removing `class` (and its incident edges) leaves the remaining
    /// nodes connected. Dangling nodes always satisfy this.
    pub fn connected_without(&self, class: ClassId) -> bool {
        let remaining: Vec<ClassId> = self.nodes.iter().copied().filter(|&c| c != class).collect();
        let Some(&start) = remaining.first() else {
            return true;
        };
        let reached = self.reachable_from(start, Some(class));
        reached.len() == remaining.len()
    }

    fn reachable_from(&self, start: ClassId, skip: Option<ClassId>) -> Vec<ClassId> {
        let mut stack = vec![start];
        let mut seen = vec![start];
        while let Some(cur) = stack.pop() {
            for &(_, next) in self.neighbours(cur) {
                if Some(next) == skip || Some(cur) == skip {
                    continue;
                }
                if !seen.contains(&next) {
                    seen.push(next);
                    stack.push(next);
                }
            }
        }
        seen.retain(|&c| Some(c) != skip);
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::example::figure21;

    fn chain_query(catalog: &Catalog) -> Query {
        // supplier - supplies - cargo - collects - vehicle
        let mut q = Query::new();
        q.classes = vec![
            catalog.class_id("supplier").unwrap(),
            catalog.class_id("cargo").unwrap(),
            catalog.class_id("vehicle").unwrap(),
        ];
        q.relationships =
            vec![catalog.rel_id("supplies").unwrap(), catalog.rel_id("collects").unwrap()];
        q
    }

    #[test]
    fn chain_is_connected_with_two_dangling_ends() {
        let cat = figure21().unwrap();
        let q = chain_query(&cat);
        let g = q.graph(&cat).unwrap();
        assert!(g.is_connected());
        let supplier = cat.class_id("supplier").unwrap();
        let cargo = cat.class_id("cargo").unwrap();
        let vehicle = cat.class_id("vehicle").unwrap();
        let mut dangling = g.dangling_classes();
        dangling.sort_unstable();
        let mut expect = vec![supplier, vehicle];
        expect.sort_unstable();
        assert_eq!(dangling, expect);
        assert_eq!(g.degree(cargo), 2);
        assert!(g.connected_without(supplier));
        assert!(g.connected_without(vehicle));
        // Removing the middle disconnects the ends.
        assert!(!g.connected_without(cargo));
    }

    #[test]
    fn single_class_graph() {
        let cat = figure21().unwrap();
        let mut q = Query::new();
        q.classes = vec![cat.class_id("cargo").unwrap()];
        let g = q.graph(&cat).unwrap();
        assert!(g.is_connected());
        assert!(g.dangling_classes().is_empty());
        assert_eq!(g.degree(cat.class_id("cargo").unwrap()), 0);
    }

    #[test]
    fn disconnected_graph_detected() {
        let cat = figure21().unwrap();
        let mut q = chain_query(&cat);
        q.classes.push(cat.class_id("engine").unwrap());
        let g = q.graph(&cat).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn endpoint_missing_is_error() {
        let cat = figure21().unwrap();
        let mut q = chain_query(&cat);
        q.classes.retain(|&c| c != cat.class_id("supplier").unwrap());
        assert!(matches!(
            QueryGraph::build(&q, &cat),
            Err(QueryError::RelationshipEndpointMissing { .. })
        ));
    }
}
